//! Integration test of the full downstream loop: simulate → infer with
//! TENDS → run influence maximization / immunization on the *inferred*
//! topology → verify the decisions transfer to the true network.

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hidden_network() -> (DiGraph, EdgeProbs, StdRng) {
    let truth = netsci_like(99);
    let mut rng = StdRng::seed_from_u64(7070);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    (truth, probs, rng)
}

#[test]
fn influence_maximization_on_inferred_graph_transfers() {
    let (truth, probs, mut rng) = hidden_network();
    let obs = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.1,
            num_processes: 200,
        },
        &mut rng,
    );
    let inferred = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits")
        .graph;

    // Pick seeds with CELF on the inferred graph...
    let inferred_probs = EdgeProbs::constant(&inferred, 0.3);
    let est = SpreadEstimator::new(&inferred, &inferred_probs, 20);
    let (seeds, _) = celf_influence_maximization(&est, 10, &mut rng);
    assert_eq!(seeds.len(), 10);

    // ...and evaluate them on the true dynamics against random seeds.
    let informed = estimate_spread(&truth, &probs, &seeds, 300, &mut rng);
    let random_seeds: Vec<NodeId> = (0..10).collect();
    let random = estimate_spread(&truth, &probs, &random_seeds, 300, &mut rng);
    assert!(
        informed > 1.3 * random,
        "inferred-graph seeding ({informed:.1}) should clearly beat random ({random:.1})"
    );
}

#[test]
fn immunization_on_inferred_graph_transfers() {
    let (truth, probs, mut rng) = hidden_network();
    let obs = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.05,
            num_processes: 200,
        },
        &mut rng,
    );
    let inferred = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits")
        .graph;

    let inferred_probs = EdgeProbs::constant(&inferred, 0.3);
    let plan = greedy_immunization(&inferred, &inferred_probs, 10, 19, 30, 8, &mut rng);
    assert_eq!(plan.len(), 10);

    // Strip the plan out of the TRUE network and compare spreads.
    let blocked: Vec<bool> = {
        let mut b = vec![false; truth.node_count()];
        for &v in &plan {
            b[v as usize] = true;
        }
        b
    };
    let mut builder = GraphBuilder::new(truth.node_count());
    let mut kept = Vec::new();
    for (u, v) in truth.edges() {
        if !blocked[u as usize] && !blocked[v as usize] {
            builder.add_edge(u, v);
            kept.push(probs.get(&truth, u, v).expect("edge"));
        }
    }
    let stripped = builder.build();
    let stripped_probs = EdgeProbs::from_vec(&stripped, kept);

    let seeds: Vec<NodeId> = (100..119).collect();
    let before = estimate_spread(&truth, &probs, &seeds, 300, &mut rng);
    let after = estimate_spread(&stripped, &stripped_probs, &seeds, 300, &mut rng);
    assert!(
        after < before,
        "immunization from the inferred graph must reduce true spread: {after:.1} vs {before:.1}"
    );
}
