//! Cross-crate property-based tests (proptest) for the invariants the
//! paper's theory relies on, exercised on randomized status matrices and
//! graphs rather than hand-picked cases.

use diffnet::prelude::*;
use diffnet::tends::score;
use proptest::prelude::*;

/// Strategy: a random status matrix with β processes over n nodes.
fn status_matrix(
    beta: std::ops::Range<usize>,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = StatusMatrix> {
    (beta, n).prop_flat_map(|(b, n)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), b)
            .prop_map(|rows| StatusMatrix::from_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Eq. (3) bookkeeping: for any parent set, Σ_j N_ij = β.
    #[test]
    fn combo_counts_partition_the_processes(
        m in status_matrix(1..40, 2..10),
        parents_mask in 0u32..32,
    ) {
        let n = m.num_nodes() as u32;
        let child = 0u32;
        let parents: Vec<NodeId> =
            (1..n).filter(|p| parents_mask & (1 << (p % 5)) != 0).take(4).collect();
        let counts = m.columns().combo_counts(child, &parents).expect("small combo");
        let total: u64 = counts.iter().map(|c| c[0] + c[1]).sum();
        prop_assert_eq!(total, m.num_processes() as u64);
    }

    // The two N_ijk kernels agree everywhere.
    #[test]
    fn counting_kernels_agree(m in status_matrix(1..80, 2..12)) {
        let n = m.num_nodes() as u32;
        let cols = m.columns();
        let parents: Vec<NodeId> = (1..n.min(5)).collect();
        prop_assert_eq!(
            cols.combo_counts(0, &parents).expect("small combo"),
            m.combo_counts(0, &parents).expect("small combo")
        );
    }

    // The incremental workspace kernel agrees with the naive row-scan
    // kernel for every split of a random parent set into a cached base and
    // a refinement extension.
    #[test]
    fn workspace_counts_match_naive_kernel(
        m in status_matrix(1..80, 3..12),
        base_mask in 0u32..256,
        extra_mask in 0u32..256,
    ) {
        let n = m.num_nodes() as u32;
        let child = 0u32;
        let base: Vec<NodeId> =
            (1..n).filter(|p| base_mask & (1 << (p % 8)) != 0).take(3).collect();
        let extra: Vec<NodeId> = (1..n)
            .filter(|p| extra_mask & (1 << (p % 8)) != 0)
            .filter(|p| !base.contains(p))
            .take(3)
            .collect();
        let mut union: Vec<NodeId> = base.iter().chain(&extra).copied().collect();
        union.sort_unstable();

        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        ws.set_base(&cols, &base).expect("small base");
        let counts = ws.refined_counts(&cols, child, &extra).expect("small combo").to_vec();
        prop_assert_eq!(counts, m.combo_counts(child, &union).expect("small combo"));
    }

    // The tiled pairwise kernel is bit-identical to the per-pair column
    // walk for every pair and every block shape, across random β —
    // including β not a multiple of 64, where tail-word masking bugs live
    // — and with whatever degenerate (never/always-infected) columns the
    // random matrix happens to contain.
    #[test]
    fn tiled_pair_counts_match_naive(m in status_matrix(1..200, 2..24)) {
        let n = m.num_nodes();
        let cols = m.columns();
        let ones = cols.ones_counts();
        // Several block shapes, not just the tuned pair_tile_size().
        for tile in [1usize, 3, 7, 64] {
            let nb = n.div_ceil(tile);
            let mut seen = 0usize;
            for bi in 0..nb {
                let rows = bi * tile..((bi + 1) * tile).min(n);
                for bj in bi..nb {
                    let jc = bj * tile..((bj + 1) * tile).min(n);
                    cols.pair_counts_block(rows.clone(), jc, &ones, &mut |i, j, pc| {
                        seen += 1;
                        assert_eq!(
                            pc,
                            cols.pair_counts(i, j),
                            "pair ({i},{j}) diverges at tile {tile}, β {}",
                            m.num_processes()
                        );
                    });
                }
            }
            prop_assert_eq!(seen, n * (n - 1) / 2, "tile {} missed pairs", tile);
        }
    }

    // The parallel correlation matrix is bit-identical at every thread
    // count (1, 4, and all-cores).
    #[test]
    fn correlation_matrix_thread_count_invariant(m in status_matrix(2..50, 2..14)) {
        use diffnet::tends::CorrelationMatrix;
        let cols = m.columns();
        let n = m.num_nodes() as u32;
        let seq = CorrelationMatrix::compute_parallel(&cols, CorrelationMeasure::Imi, 1);
        for threads in [4usize, 0] {
            let par =
                CorrelationMatrix::compute_parallel(&cols, CorrelationMeasure::Imi, threads);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        seq.get(i, j).to_bits(), par.get(i, j).to_bits(),
                        "cell ({},{}) differs at {} threads", i, j, threads);
                }
            }
        }
    }

    // The observability run report is deterministic: for the same status
    // matrix the counters, values, histograms, and phase list are identical
    // at 1 and 4 worker threads once the `runtime` section (wall-clock
    // times, per-worker chunk counts) is stripped.
    #[test]
    fn run_report_thread_count_invariant(m in status_matrix(5..40, 3..10)) {
        let report_at = |threads: usize| {
            let rec = Recorder::new();
            let cfg = TendsConfig { threads, ..Default::default() };
            let result = Tends::with_config(cfg)
                .reconstruct_observed(&m, &rec)
                .expect("default search fits");
            (result, RunReport::new("tends", rec.snapshot(), threads))
        };
        let (res_1, rep_1) = report_at(1);
        let (res_4, rep_4) = report_at(4);
        prop_assert_eq!(res_1.graph.edge_vec(), res_4.graph.edge_vec());
        prop_assert_eq!(
            rep_1.deterministic_json(),
            rep_4.deterministic_json(),
            "deterministic report sections must not depend on thread count"
        );
        // But the full report differs structurally: runtime carries the
        // thread count itself.
        prop_assert!(rep_1.to_json().to_pretty() != rep_4.to_json().to_pretty());
    }

    // Theorem 1: adding any parent never decreases the log-likelihood.
    #[test]
    fn theorem1_likelihood_monotone(m in status_matrix(2..60, 3..10)) {
        let cols = m.columns();
        let n = m.num_nodes() as u32;
        let child = 0u32;
        let base: Vec<NodeId> = vec![1];
        let extended: Vec<NodeId> = vec![1, 2.min(n - 1)];
        if extended[1] == extended[0] || extended[1] == child {
            return Ok(());
        }
        let ll_base = score::log_likelihood(&cols.combo_counts(child, &base).expect("small combo"));
        let ll_ext = score::log_likelihood(&cols.combo_counts(child, &extended).expect("small combo"));
        prop_assert!(ll_ext >= ll_base - 1e-9,
            "L decreased from {} to {}", ll_base, ll_ext);
    }

    // g(T) decomposability: the result's global score is the sum of its
    // per-node local scores recomputed from scratch.
    #[test]
    fn global_score_decomposes(m in status_matrix(5..40, 3..9)) {
        let result = Tends::new().reconstruct(&m).expect("default search fits");
        let cols = m.columns();
        let recomputed: f64 = (0..m.num_nodes() as u32)
            .map(|i| score::local_score(
                &cols.combo_counts(i, &result.node_results[i as usize].parents)
                    .expect("small combo")))
            .sum();
        prop_assert!((result.global_score - recomputed).abs() < 1e-6);
    }

    // IMI symmetry on real matrices.
    #[test]
    fn imi_matrix_is_symmetric(m in status_matrix(2..40, 2..10)) {
        let corr = diffnet::tends::CorrelationMatrix::compute(
            &m.columns(), CorrelationMeasure::Imi);
        let n = m.num_nodes() as u32;
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(corr.get(i, j), corr.get(j, i));
            }
        }
    }

    // The pinned K-means threshold always separates its clusters: every
    // retained candidate pair is strictly above τ, and τ is attained by a
    // pinned-cluster member (or zero).
    #[test]
    fn kmeans_tau_is_a_separator(values in proptest::collection::vec(0.0f64..1.0, 0..200)) {
        let r = diffnet::tends::pinned_two_means(&values);
        let above = values.iter().filter(|&&v| v > r.tau).count();
        prop_assert_eq!(above, r.free_count);
        if r.pinned_count > 0 && !values.is_empty() {
            prop_assert!(values.iter().any(|&v| (v - r.tau).abs() < 1e-15) || r.tau == 0.0);
        }
    }

    // Simulator invariants on random graphs: seeds stay infected and every
    // infected non-seed has a time-(t−1) in-neighbor.
    #[test]
    fn ic_infection_closure(seed in 0u64..1000, p in 0.1f64..0.9) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = diffnet::graph::generators::erdos_renyi_gnm(30, 120, &mut rng);
        let probs = EdgeProbs::constant(&truth, p);
        let obs = IndependentCascade::new(&truth, &probs)
            .observe(IcConfig { initial_ratio: 0.1, num_processes: 5 }, &mut rng);
        for rec in &obs.records {
            for &s in &rec.sources {
                prop_assert_eq!(rec.times[s as usize], 0);
            }
            for i in 0..30u32 {
                let t = rec.times[i as usize];
                if t == diffnet::simulate::UNINFECTED || t == 0 { continue; }
                let ok = truth.in_neighbors(i).iter()
                    .any(|&j| rec.times[j as usize] == t - 1);
                prop_assert!(ok, "node {} infected at {} has no parent at {}", i, t, t - 1);
            }
        }
    }

    // Graph round-trip: any edge set survives CSR construction intact.
    #[test]
    fn graph_edge_round_trip(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)
    ) {
        let g = DiGraph::from_edges(20, &edges);
        let mut expected: Vec<(NodeId, NodeId)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(g.edge_vec(), expected);
    }

    // F-score identities hold for arbitrary graph pairs.
    #[test]
    fn fscore_identities(
        t_edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        i_edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
    ) {
        let truth = DiGraph::from_edges(12, &t_edges);
        let inferred = DiGraph::from_edges(12, &i_edges);
        let cmp = EdgeSetComparison::against_truth(&truth, &inferred);
        prop_assert_eq!(cmp.true_positives + cmp.false_positives, inferred.edge_count());
        prop_assert_eq!(cmp.true_positives + cmp.false_negatives, truth.edge_count());
        let f = cmp.f_score();
        prop_assert!((0.0..=1.0).contains(&f));
        let (p, r) = (cmp.precision(), cmp.recall());
        if p + r > 0.0 {
            prop_assert!((f - 2.0 * p * r / (p + r)).abs() < 1e-9);
        }
    }
}
