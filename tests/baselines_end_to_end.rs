//! End-to-end comparison tests: every algorithm in the paper's benchmark
//! runs on a shared workload and produces sane output.

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> (DiGraph, ObservationSet) {
    let truth = lfr_suite()[0].generate(123); // LFR1: n = 100, K = 4
    let mut rng = StdRng::seed_from_u64(321);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    let obs = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.15,
            num_processes: 150,
        },
        &mut rng,
    );
    (truth, obs)
}

#[test]
fn all_five_algorithms_produce_graphs() {
    let (truth, obs) = workload();
    let m = truth.edge_count();
    let n = truth.node_count();

    let tends = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits")
        .graph;
    let (netrate, _) = NetRate::new().infer(&obs).best_fscore_graph(&truth);
    let multree = MulTree::new().infer(&obs, m);
    let lift = Lift::new().infer(&obs, m);
    let netinf = NetInf::new().infer(&obs, m);
    let path = PathReconstruction::new().infer(&obs, m);

    for (name, g) in [
        ("TENDS", &tends),
        ("NetRate", &netrate),
        ("MulTree", &multree),
        ("LIFT", &lift),
        ("NetInf", &netinf),
        ("PATH", &path),
    ] {
        assert_eq!(g.node_count(), n, "{name} node count");
        assert!(g.edge_count() > 0, "{name} inferred nothing");
    }
    assert_eq!(multree.edge_count(), m, "MulTree consumes the exact budget");
    assert_eq!(lift.edge_count(), m, "LIFT consumes the exact budget");
}

#[test]
fn every_algorithm_beats_random_guessing() {
    let (truth, obs) = workload();
    let m = truth.edge_count();
    let n = truth.node_count();
    // A random guesser placing m edges among n(n-1) slots expects
    // precision ≈ m / (n(n-1)) ≈ 0.04; require 3× that.
    let random_f = m as f64 / (n * (n - 1)) as f64;

    let runs: Vec<(&str, DiGraph)> = vec![
        (
            "TENDS",
            Tends::new()
                .reconstruct(&obs.statuses)
                .expect("default search fits")
                .graph,
        ),
        (
            "NetRate",
            NetRate::new().infer(&obs).best_fscore_graph(&truth).0,
        ),
        ("MulTree", MulTree::new().infer(&obs, m)),
        ("LIFT", Lift::new().infer(&obs, m)),
        ("NetInf", NetInf::new().infer(&obs, m)),
        ("PATH", PathReconstruction::new().infer(&obs, m)),
    ];
    for (name, g) in runs {
        let f = EdgeSetComparison::against_truth(&truth, &g).f_score();
        assert!(
            f > 3.0 * random_f,
            "{name} F-score {f} vs random {random_f}"
        );
    }
}

#[test]
fn tends_wins_the_paper_comparison_on_lfr() {
    // The paper's headline claim on its synthetic networks: TENDS has the
    // best F-score among TENDS / NetRate / MulTree / LIFT.
    let (truth, obs) = workload();
    let m = truth.edge_count();
    let f = |g: &DiGraph| EdgeSetComparison::against_truth(&truth, g).f_score();

    let tends = f(&Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits")
        .graph);
    let netrate = f(&NetRate::new().infer(&obs).best_fscore_graph(&truth).0);
    let multree = f(&MulTree::new().infer(&obs, m));
    let lift = f(&Lift::new().infer(&obs, m));

    assert!(
        tends > netrate && tends > multree && tends > lift,
        "TENDS {tends} vs NetRate {netrate}, MulTree {multree}, LIFT {lift}"
    );
}

#[test]
fn tends_uses_strictly_less_information() {
    // Compile-time-ish documentation test: TENDS's API accepts only the
    // status matrix, while the baselines require the full observation set
    // (cascades / sources). Reconstructing from a matrix with scrambled
    // records must equal reconstructing from the true records.
    let (_, obs) = workload();
    let from_statuses = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    // Rebuild a record-free observation set: same statuses, no timing.
    let statuses_only = obs.statuses.clone();
    let again = Tends::new()
        .reconstruct(&statuses_only)
        .expect("default search fits");
    assert_eq!(from_statuses.graph, again.graph);
}

#[test]
fn weighted_outputs_expose_scores() {
    let (_, obs) = workload();
    let netrate_scores = NetRate::new().infer(&obs);
    assert!(!netrate_scores.is_empty());
    let lift_scores = Lift::new().scores(&obs);
    assert!(!lift_scores.is_empty());
    // Thresholding at +∞ must produce an empty graph.
    assert_eq!(netrate_scores.threshold(f64::INFINITY).edge_count(), 0);
}
