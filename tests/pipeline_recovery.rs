//! End-to-end pipeline tests: simulate diffusion on a known topology,
//! reconstruct with TENDS from statuses only, and check recovery quality.

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn observe_with(truth: &DiGraph, alpha: f64, beta: usize, mu: f64, seed: u64) -> ObservationSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let probs = EdgeProbs::gaussian(truth, mu, 0.05, &mut rng);
    IndependentCascade::new(truth, &probs).observe(
        IcConfig {
            initial_ratio: alpha,
            num_processes: beta,
        },
        &mut rng,
    )
}

fn reciprocal(pairs: &[(NodeId, NodeId)], n: usize) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in pairs {
        b.add_reciprocal(u, v);
    }
    b.build()
}

#[test]
fn recovers_reciprocal_star() {
    let truth = reciprocal(&[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)], 6);
    let obs = observe_with(&truth, 0.2, 500, 0.4, 11);
    let result = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    let cmp = EdgeSetComparison::against_truth(&truth, &result.graph);
    assert!(cmp.f_score() > 0.8, "star F-score {}", cmp.f_score());
}

#[test]
fn recovers_two_disconnected_communities() {
    // Two reciprocal triangles with no edges between them: no cross edges
    // should ever be inferred if the pruning does its job.
    let truth = reciprocal(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], 6);
    let obs = observe_with(&truth, 0.2, 600, 0.4, 12);
    let result = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    let cmp = EdgeSetComparison::against_truth(&truth, &result.graph);
    assert!(cmp.f_score() > 0.8, "triangles F-score {}", cmp.f_score());
    let cross = result
        .graph
        .edges()
        .filter(|&(u, v)| (u < 3) != (v < 3))
        .count();
    assert!(cross <= 1, "{cross} cross-community edges inferred");
}

#[test]
fn lfr_benchmark_end_to_end() {
    // The paper's LFR1 configuration at its default setting.
    let truth = lfr_suite()[0].generate(77);
    let obs = observe_with(&truth, 0.15, 150, 0.3, 13);
    let result = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    let cmp = EdgeSetComparison::against_truth(&truth, &result.graph);
    assert!(
        cmp.f_score() > 0.6,
        "LFR1 F-score {} below the paper's regime",
        cmp.f_score()
    );
}

#[test]
fn reconstruction_is_deterministic() {
    let truth = lfr_suite()[0].generate(78);
    let obs = observe_with(&truth, 0.15, 100, 0.3, 14);
    let a = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    let b = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.tau, b.tau);
}

#[test]
fn more_processes_do_not_hurt() {
    // Corollary 1 consistency, empirically: β = 400 should beat β = 40 on
    // the same network (with the same generative seed).
    let truth = reciprocal(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)], 7);
    let big = observe_with(&truth, 0.2, 400, 0.4, 15);
    let small = big.truncated(40);
    let f_small = EdgeSetComparison::against_truth(
        &truth,
        &Tends::new()
            .reconstruct(&small.statuses)
            .expect("default search fits")
            .graph,
    )
    .f_score();
    let f_big = EdgeSetComparison::against_truth(
        &truth,
        &Tends::new()
            .reconstruct(&big.statuses)
            .expect("default search fits")
            .graph,
    )
    .f_score();
    assert!(
        f_big >= f_small - 0.05,
        "F went from {f_small} (β=40) down to {f_big} (β=400)"
    );
    assert!(f_big > 0.75, "β=400 F-score {f_big}");
}

#[test]
fn isolated_nodes_get_no_parents() {
    // Nodes 4 and 5 are isolated: their statuses are pure seed noise.
    let truth = reciprocal(&[(0, 1), (1, 2), (2, 3)], 6);
    let obs = observe_with(&truth, 0.25, 400, 0.4, 16);
    let result = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    for node in [4u32, 5] {
        assert!(
            result.node_results[node as usize].parents.len() <= 1,
            "isolated node {node} got parents {:?}",
            result.node_results[node as usize].parents
        );
    }
}

#[test]
fn global_score_improves_over_empty_topology() {
    let truth = lfr_suite()[0].generate(79);
    let obs = observe_with(&truth, 0.15, 150, 0.3, 17);
    let result = Tends::new()
        .reconstruct(&obs.statuses)
        .expect("default search fits");
    // Score of the empty topology: sum of empty-set local scores.
    let cols = obs.statuses.columns();
    let empty_score: f64 = (0..obs.num_nodes() as NodeId)
        .map(|i| {
            diffnet::tends::score::local_score(&cols.combo_counts(i, &[]).expect("empty combo"))
        })
        .sum();
    assert!(
        result.global_score >= empty_score,
        "selected topology scores {} below empty {}",
        result.global_score,
        empty_score
    );
}
