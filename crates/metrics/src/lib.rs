#![warn(missing_docs)]
//! # diffnet-metrics
//!
//! Evaluation metrics and experiment-reporting utilities for diffusion
//! network inference.
//!
//! * [`EdgeSetComparison`] — precision / recall / F-score of an inferred
//!   topology against ground truth, exactly as the paper defines them
//!   (directed edges; TP/FP/FN counting).
//! * [`Stopwatch`] — wall-clock timing for the running-time plots.
//! * [`table`] — paper-style fixed-width result tables shared by all the
//!   figure-reproduction binaries.
//! * [`ranking`] — precision-recall curves and average precision for
//!   scored (threshold-free) inferences such as NetRate's rates.

pub mod ranking;
pub mod table;

use diffnet_graph::DiGraph;
use std::time::{Duration, Instant};

/// Directed-edge confusion counts and the derived accuracy metrics
/// (paper §V-A, "Performance Criteria").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSetComparison {
    /// Edges present in both the truth and the inference.
    pub true_positives: usize,
    /// Inferred edges absent from the truth.
    pub false_positives: usize,
    /// True edges the inference missed.
    pub false_negatives: usize,
}

impl EdgeSetComparison {
    /// Compares an inferred graph against the ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ (the node set is given in this
    /// problem; a mismatch is a harness bug).
    pub fn against_truth(truth: &DiGraph, inferred: &DiGraph) -> Self {
        assert_eq!(
            truth.node_count(),
            inferred.node_count(),
            "graphs must share the node set"
        );
        let tp = inferred
            .edges()
            .filter(|&(u, v)| truth.has_edge(u, v))
            .count();
        EdgeSetComparison {
            true_positives: tp,
            false_positives: inferred.edge_count() - tp,
            false_negatives: truth.edge_count() - tp,
        }
    }

    /// `TP / (TP + FP)`; 1.0 when nothing was inferred and nothing exists,
    /// 0.0 when edges were inferred into an empty truth.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            if self.false_negatives == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; 1.0 for an empty truth.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; equivalently
    /// `2·TP / (2·TP + FP + FN)`.
    pub fn f_score(&self) -> f64 {
        let denom = 2 * self.true_positives + self.false_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            2.0 * self.true_positives as f64 / denom as f64
        }
    }
}

/// Minimal wall-clock stopwatch for the running-time columns.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Times a closure, returning its result and the wall-clock seconds spent.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn perfect_inference() {
        let cmp = EdgeSetComparison::against_truth(&truth(), &truth());
        assert_eq!(cmp.true_positives, 3);
        assert_eq!(cmp.precision(), 1.0);
        assert_eq!(cmp.recall(), 1.0);
        assert_eq!(cmp.f_score(), 1.0);
    }

    #[test]
    fn direction_matters() {
        let reversed = truth().reversed();
        let cmp = EdgeSetComparison::against_truth(&truth(), &reversed);
        assert_eq!(cmp.true_positives, 0);
        assert_eq!(cmp.f_score(), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let inferred = DiGraph::from_edges(4, &[(0, 1), (1, 2), (3, 0), (0, 2)]);
        let cmp = EdgeSetComparison::against_truth(&truth(), &inferred);
        assert_eq!(cmp.true_positives, 2);
        assert_eq!(cmp.false_positives, 2);
        assert_eq!(cmp.false_negatives, 1);
        assert_eq!(cmp.precision(), 0.5);
        assert!((cmp.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cmp.f_score() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inference_on_nonempty_truth() {
        let inferred = DiGraph::empty(4);
        let cmp = EdgeSetComparison::against_truth(&truth(), &inferred);
        assert_eq!(cmp.precision(), 0.0);
        assert_eq!(cmp.recall(), 0.0);
        assert_eq!(cmp.f_score(), 0.0);
    }

    #[test]
    fn empty_truth_and_empty_inference_is_perfect() {
        let empty = DiGraph::empty(3);
        let cmp = EdgeSetComparison::against_truth(&empty, &empty);
        assert_eq!(cmp.precision(), 1.0);
        assert_eq!(cmp.recall(), 1.0);
        assert_eq!(cmp.f_score(), 1.0);
    }

    #[test]
    fn inference_into_empty_truth() {
        let empty = DiGraph::empty(3);
        let inferred = DiGraph::from_edges(3, &[(0, 1)]);
        let cmp = EdgeSetComparison::against_truth(&empty, &inferred);
        assert_eq!(cmp.precision(), 0.0);
        assert_eq!(cmp.recall(), 1.0, "nothing to find");
        assert_eq!(cmp.f_score(), 0.0);
    }

    #[test]
    #[should_panic(expected = "share the node set")]
    fn node_count_mismatch_panics() {
        EdgeSetComparison::against_truth(&DiGraph::empty(3), &DiGraph::empty(4));
    }

    #[test]
    fn stopwatch_measures_time() {
        let (value, secs) = timed(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(value, 42);
        assert!(secs >= 0.009, "measured {secs}");
    }
}
