//! Paper-style fixed-width result tables.
//!
//! Each figure in the paper plots one metric (F-score or running time)
//! against a swept parameter, with one series per algorithm. The
//! reproduction binaries print those series as rows of a plain-text table,
//! which is also what lands in `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A result table: a swept-parameter column followed by one column per
/// algorithm/series.
#[derive(Clone, Debug)]
pub struct ResultTable {
    title: String,
    param_name: String,
    series_names: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// A table titled `title`, sweeping `param_name`, with the given series.
    pub fn new(
        title: impl Into<String>,
        param_name: impl Into<String>,
        series_names: &[&str],
    ) -> Self {
        ResultTable {
            title: title.into(),
            param_name: param_name.into(),
            series_names: series_names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row of values (must match the series count).
    ///
    /// # Panics
    ///
    /// Panics on a series-count mismatch.
    pub fn push_row(&mut self, param_value: impl Into<String>, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series_names.len(),
            "row width must match series count"
        );
        self.rows.push((param_value.into(), values.to_vec()));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and 4-decimal values.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(p, _)| p.len())
                .chain(std::iter::once(self.param_name.len()))
                .max()
                .unwrap_or(0),
        );
        for (c, name) in self.series_names.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, vals)| format!("{:.4}", vals[c]).len())
                .chain(std::iter::once(name.len()))
                .max()
                .unwrap_or(0);
            widths.push(w);
        }

        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header = format!("{:<w$}", self.param_name, w = widths[0]);
        for (c, name) in self.series_names.iter().enumerate() {
            let _ = write!(header, "  {:>w$}", name, w = widths[c + 1]);
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for (p, vals) in &self.rows {
            let _ = write!(out, "{:<w$}", p, w = widths[0]);
            for (c, v) in vals.iter().enumerate() {
                let _ = write!(out, "  {:>w$.4}", v, w = widths[c + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as GitHub-flavoured markdown (for `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = write!(out, "| {} |", self.param_name);
        for name in &self.series_names {
            let _ = write!(out, " {name} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series_names {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (p, vals) in &self.rows {
            let _ = write!(out, "| {p} |");
            for v in vals {
                let _ = write!(out, " {v:.4} |");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("Fig X: demo", "n", &["TENDS", "LIFT"]);
        t.push_row("100", &[0.91234, 0.5]);
        t.push_row("200", &[0.9, 0.45]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Fig X: demo"));
        assert!(s.contains("TENDS"));
        assert!(s.contains("0.9123"));
        assert!(s.contains("200"));
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = sample().render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("### "));
        assert!(lines[2].starts_with("| n |"));
        assert_eq!(lines[3], "|---|---|---|");
        assert!(lines[4].contains("| 0.9123 |"));
    }

    #[test]
    fn columns_align() {
        let s = sample().render();
        let data_lines: Vec<&str> = s
            .lines()
            .filter(|l| l.starts_with("100") || l.starts_with("200"))
            .collect();
        assert_eq!(data_lines.len(), 2);
        assert_eq!(data_lines[0].len(), data_lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        sample().push_row("300", &[0.1]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(ResultTable::new("t", "p", &["a"]).is_empty());
    }
}
