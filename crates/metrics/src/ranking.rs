//! Ranking-quality metrics for *scored* edge inferences.
//!
//! NetRate and LIFT output a score per potential edge rather than a fixed
//! edge set; a single-threshold F-score understates what such output
//! carries. These utilities evaluate the whole ranking: the
//! precision-recall curve and its summary, average precision (area under
//! the PR curve by the step-wise convention).

use diffnet_graph::{DiGraph, NodeId};

/// One point of a precision-recall curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrPoint {
    /// Prefix length `k` (edges taken, in descending score order).
    pub k: usize,
    /// Precision among the top-`k`.
    pub precision: f64,
    /// Recall among the top-`k`.
    pub recall: f64,
}

/// Computes the precision-recall curve of scored edges against `truth`.
///
/// Edges are sorted by descending score (ties broken by `(u, v)` for
/// determinism); one curve point is emitted per prefix length.
///
/// # Panics
///
/// Panics if any endpoint is out of range or a score is NaN.
pub fn precision_recall_curve(truth: &DiGraph, scored: &[(NodeId, NodeId, f64)]) -> Vec<PrPoint> {
    let n = truth.node_count() as u32;
    let mut sorted: Vec<(NodeId, NodeId, f64)> = scored.to_vec();
    for &(u, v, w) in &sorted {
        assert!(u < n && v < n, "edge ({u},{v}) out of range");
        assert!(!w.is_nan(), "scores must not be NaN");
    }
    sorted.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("no NaNs")
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });

    let m_true = truth.edge_count();
    let mut curve = Vec::with_capacity(sorted.len());
    let mut tp = 0usize;
    for (k, &(u, v, _)) in sorted.iter().enumerate() {
        if truth.has_edge(u, v) {
            tp += 1;
        }
        curve.push(PrPoint {
            k: k + 1,
            precision: tp as f64 / (k + 1) as f64,
            recall: if m_true == 0 {
                1.0
            } else {
                tp as f64 / m_true as f64
            },
        });
    }
    curve
}

/// Average precision: the mean of the precision values at each rank where
/// a true edge is retrieved (the step-wise area under the PR curve).
/// Returns 1.0 for an empty truth and 0.0 when nothing true is retrieved.
pub fn average_precision(truth: &DiGraph, scored: &[(NodeId, NodeId, f64)]) -> f64 {
    if truth.edge_count() == 0 {
        return 1.0;
    }
    let curve = precision_recall_curve(truth, scored);
    let mut sum = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        if p.recall > prev_recall {
            sum += p.precision;
            prev_recall = p.recall;
        }
    }
    sum / truth.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2)])
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let scored = vec![(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.1), (3, 0, 0.05)];
        assert!((average_precision(&truth(), &scored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_low_ap() {
        let scored = vec![(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.9), (3, 0, 0.8)];
        let ap = average_precision(&truth(), &scored);
        // True edges retrieved at ranks 3 and 4: AP = (1/3 + 2/4) / 2.
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12, "ap {ap}");
    }

    #[test]
    fn curve_is_monotone_in_recall() {
        let scored = vec![(0, 1, 0.5), (2, 3, 0.4), (1, 2, 0.3), (3, 0, 0.2)];
        let curve = precision_recall_curve(&truth(), &scored);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert_eq!(w[1].k, w[0].k + 1);
        }
        assert!((curve.last().expect("nonempty").recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_perfect() {
        let empty = DiGraph::empty(3);
        assert_eq!(average_precision(&empty, &[(0, 1, 0.5)]), 1.0);
    }

    #[test]
    fn nothing_retrieved_is_zero() {
        let scored = vec![(2, 3, 0.9), (3, 0, 0.8)];
        assert_eq!(average_precision(&truth(), &scored), 0.0);
    }

    #[test]
    fn curve_precision_values() {
        let scored = vec![(0, 1, 0.9), (2, 3, 0.8), (1, 2, 0.7)];
        let curve = precision_recall_curve(&truth(), &scored);
        assert!((curve[0].precision - 1.0).abs() < 1e-12);
        assert!((curve[1].precision - 0.5).abs() < 1e-12);
        assert!((curve[2].precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        precision_recall_curve(&truth(), &[(0, 9, 0.5)]);
    }
}
