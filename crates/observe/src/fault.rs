//! Deterministic fault injection for crash-safety tests.
//!
//! A [`FaultPlan`] is a set of rules that fire at named *sites* — explicit
//! `plan.hit("site")` calls placed at phase boundaries in the pipeline. A
//! rule either kills the process (`abort`, simulating a crash with no
//! unwinding or destructors) or returns an injected [`io::Error`] that the
//! caller must propagate. Each rule fires on its `nth` matching hit, so a
//! test can let a run make progress before the fault lands.
//!
//! Plans come from the `DIFFNET_FAULT` environment variable (so integration
//! tests can fault a spawned binary without new CLI flags) or from the
//! builder methods (for in-process unit tests). The grammar is a
//! comma-separated rule list:
//!
//! ```text
//! kill:SITE[:N]        abort the process on the N-th hit of SITE (default 1)
//! io:SITE[@IDX][:N]    return an injected I/O error; with @IDX only hits
//!                      reporting that index (e.g. a node id) match
//! ```
//!
//! E.g. `DIFFNET_FAULT=kill:checkpoint_flush:2` crashes on the second
//! checkpoint write, and `DIFFNET_FAULT=io:node_search@5` fails node 5's
//! parent search. The plan holds only atomics, so one plan can be shared
//! by reference across worker threads.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a matching rule does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    /// Abort the process — no unwinding, like a real crash or SIGKILL.
    Kill,
    /// Return an injected `io::Error` from the hit site.
    IoError,
}

#[derive(Debug)]
struct FaultRule {
    site: String,
    /// Only hits reporting this index match; `None` matches every hit.
    index: Option<u64>,
    /// 1-based matching-hit count at which the rule fires.
    nth: u64,
    kind: FaultKind,
    hits: AtomicU64,
}

/// A set of injected faults, keyed by site name. See the module docs for
/// the rule grammar.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules: every `hit` is a no-op returning `Ok`.
    pub const fn disabled() -> FaultPlan {
        FaultPlan { rules: Vec::new() }
    }

    /// An empty plan to extend with the builder methods.
    pub fn new() -> FaultPlan {
        FaultPlan::disabled()
    }

    /// A shared reference to a permanently disabled plan, mirroring
    /// [`Recorder::disabled`](crate::Recorder::disabled) — the default
    /// argument for APIs that take `&FaultPlan`.
    pub fn none() -> &'static FaultPlan {
        static NONE: FaultPlan = FaultPlan::disabled();
        &NONE
    }

    /// Builds the plan described by the `DIFFNET_FAULT` environment
    /// variable; unset or empty means a disabled plan.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("DIFFNET_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => spec.parse(),
            _ => Ok(FaultPlan::disabled()),
        }
    }

    /// Adds a kill rule: abort the process on the `nth` hit of `site`.
    pub fn kill(mut self, site: impl Into<String>, nth: u64) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.into(),
            index: None,
            nth: nth.max(1),
            kind: FaultKind::Kill,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Adds an I/O-error rule: fail the `nth` hit of `site`.
    pub fn io_error(mut self, site: impl Into<String>, nth: u64) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.into(),
            index: None,
            nth: nth.max(1),
            kind: FaultKind::IoError,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Adds an I/O-error rule that only matches hits reporting `index`
    /// (e.g. a specific node id).
    pub fn io_error_at(mut self, site: impl Into<String>, index: u64, nth: u64) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.into(),
            index: Some(index),
            nth: nth.max(1),
            kind: FaultKind::IoError,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// True if the plan has no rules (the common production case); lets
    /// hot paths skip even the site-name comparison.
    pub fn is_disabled(&self) -> bool {
        self.rules.is_empty()
    }

    /// Reports reaching `site`. Fires every matching armed rule: kill
    /// rules abort the process, I/O rules return the injected error.
    pub fn hit(&self, site: &str) -> io::Result<()> {
        self.hit_inner(site, None)
    }

    /// Reports reaching `site` for a specific item (e.g. a node id).
    /// Indexless rules match too; indexed rules require an equal index.
    pub fn hit_indexed(&self, site: &str, index: u64) -> io::Result<()> {
        self.hit_inner(site, Some(index))
    }

    fn hit_inner(&self, site: &str, index: Option<u64>) -> io::Result<()> {
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            if let Some(want) = rule.index {
                if index != Some(want) {
                    continue;
                }
            }
            let count = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if count != rule.nth {
                continue;
            }
            match rule.kind {
                FaultKind::Kill => {
                    eprintln!("fault injection: aborting at site {site:?} (hit {count})");
                    std::process::abort();
                }
                FaultKind::IoError => {
                    return Err(io::Error::other(format!(
                        "injected fault at site {site:?} (hit {count})"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let mut parts = rule.split(':');
            let kind = match parts.next() {
                Some("kill") => FaultKind::Kill,
                Some("io") => FaultKind::IoError,
                other => {
                    return Err(format!(
                        "fault rule {rule:?}: expected kill: or io:, got {other:?}"
                    ))
                }
            };
            let target = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("fault rule {rule:?}: missing site name"))?;
            let (site, index) = match target.split_once('@') {
                Some((site, idx)) => {
                    let idx: u64 = idx
                        .parse()
                        .map_err(|_| format!("fault rule {rule:?}: bad index {idx:?}"))?;
                    (site, Some(idx))
                }
                None => (target, None),
            };
            let nth = match parts.next() {
                Some(n) => n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("fault rule {rule:?}: bad hit count {n:?}"))?,
                None => 1,
            };
            if parts.next().is_some() {
                return Err(format!("fault rule {rule:?}: trailing fields"));
            }
            plan.rules.push(FaultRule {
                site: site.to_string(),
                index,
                nth,
                kind,
                hits: AtomicU64::new(0),
            });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_disabled());
        for _ in 0..100 {
            plan.hit("anything").expect("no fault");
        }
    }

    #[test]
    fn io_rule_fires_on_nth_hit_only() {
        let plan = FaultPlan::new().io_error("flush", 3);
        assert!(plan.hit("flush").is_ok());
        assert!(plan.hit("flush").is_ok());
        let err = plan.hit("flush").expect_err("third hit fails");
        assert!(err.to_string().contains("injected fault"));
        assert!(plan.hit("flush").is_ok(), "fires exactly once");
        assert!(plan.hit("other_site").is_ok());
    }

    #[test]
    fn indexed_rule_matches_only_its_index() {
        let plan = FaultPlan::new().io_error_at("node_search", 5, 1);
        assert!(plan.hit_indexed("node_search", 4).is_ok());
        assert!(plan.hit_indexed("node_search", 5).is_err());
        // Indexless hits never match an indexed rule.
        assert!(plan.hit("node_search").is_ok());
    }

    #[test]
    fn indexless_rule_matches_indexed_hits() {
        let plan = FaultPlan::new().io_error("node_search", 2);
        assert!(plan.hit_indexed("node_search", 0).is_ok());
        assert!(plan.hit_indexed("node_search", 1).is_err());
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan: FaultPlan = "io:flush:2, io:node_search@7".parse().expect("parse");
        assert!(plan.hit("flush").is_ok());
        assert!(plan.hit("flush").is_err());
        assert!(plan.hit_indexed("node_search", 7).is_err());

        let kill: FaultPlan = "kill:checkpoint_flush:3".parse().expect("parse");
        assert!(!kill.is_disabled());
        // Hits 1 and 2 are safe; we cannot exercise hit 3 in-process.
        assert!(kill.hit("checkpoint_flush").is_ok());
        assert!(kill.hit("checkpoint_flush").is_ok());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("explode:flush".parse::<FaultPlan>().is_err());
        assert!("io:".parse::<FaultPlan>().is_err());
        assert!("io:flush:0".parse::<FaultPlan>().is_err());
        assert!("io:flush:two".parse::<FaultPlan>().is_err());
        assert!("io:flush@x".parse::<FaultPlan>().is_err());
        assert!("io:flush:1:1".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn empty_spec_is_disabled() {
        let plan: FaultPlan = "".parse().expect("parse");
        assert!(plan.is_disabled());
    }
}
