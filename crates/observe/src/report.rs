//! Structured run reports: assembly from a [`Snapshot`], deterministic
//! JSON serialization, human-readable trace rendering, and schema
//! validation for CI.
//!
//! A report is split into two sections:
//!
//! - the top level (`algorithm`, `counters`, `values`, `histograms`,
//!   `phases` as an ordered name list) is a pure function of seed +
//!   config — byte-identical across runs and thread counts;
//! - `runtime` holds everything scheduler- or clock-dependent (per-phase
//!   wall seconds, per-worker chunk claims, the thread count used).
//!
//! [`RunReport::deterministic_json`] drops the `runtime` section, which is
//! what the determinism tests and the byte-identical acceptance check
//! compare.

use crate::json::{self, Json};
use crate::recorder::Snapshot;
use crate::resources::ResourceProfile;
use crate::trace;

/// Wall time for one completed pipeline phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (e.g. `"correlation_matrix"`).
    pub name: &'static str,
    /// Elapsed wall seconds.
    pub seconds: f64,
}

/// Checkpoint activity of one run; lives in the `runtime` section because
/// where a run was interrupted is scheduler-dependent, not part of the
/// deterministic result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointInfo {
    /// Checkpoint file path.
    pub path: String,
    /// Nodes restored from the checkpoint instead of searched.
    pub resumed_nodes: usize,
    /// Checkpoint writes performed during the run (delta batches plus
    /// the final compaction).
    pub flushes: u64,
    /// Append-only delta records written before the final compaction.
    pub delta_records: u64,
}

/// Everything one observed run produced, ready to serialize.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Which algorithm ran (e.g. `"tends"`, `"netrate"`).
    pub algorithm: String,
    /// Snapshot of the recorder at the end of the run.
    pub snapshot: Snapshot,
    /// Thread count the run was configured with.
    pub threads: usize,
    /// Nodes whose parent search failed (empty on a full reconstruction).
    /// Part of the deterministic section: which nodes fail is a function
    /// of input + config, not of scheduling.
    pub failed_nodes: Vec<u64>,
    /// Requested SIMD mode when explicitly overridden (`--simd` /
    /// `DIFFNET_SIMD`). Part of the deterministic section: the override is
    /// configuration, and `None` (the `auto` default) is omitted so
    /// default-run reports are byte-identical to pre-SIMD ones.
    pub simd: Option<String>,
    /// The kernel tier the dispatcher actually resolved (`avx2`, `popcnt`,
    /// `scalar`). Runtime-only: it depends on the host CPU.
    pub simd_dispatch: Option<String>,
    /// Checkpoint activity, if the run used a checkpoint file.
    pub checkpoint: Option<CheckpointInfo>,
    /// Resource profile of the run window, if a profiler was attached.
    /// Runtime-only: RSS and CPU time depend on the machine and scheduler.
    pub resources: Option<ResourceProfile>,
}

impl RunReport {
    /// Builds a report from a finished recorder snapshot.
    pub fn new(algorithm: impl Into<String>, snapshot: Snapshot, threads: usize) -> RunReport {
        RunReport {
            algorithm: algorithm.into(),
            snapshot,
            threads,
            failed_nodes: Vec::new(),
            simd: None,
            simd_dispatch: None,
            checkpoint: None,
            resources: None,
        }
    }

    /// The completed phases in completion order.
    pub fn phases(&self) -> Vec<PhaseTiming> {
        self.snapshot
            .phases
            .iter()
            .map(|&(name, seconds)| PhaseTiming { name, seconds })
            .collect()
    }

    /// The full report as a JSON tree, including the `runtime` section.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("algorithm", self.algorithm.as_str());
        root.push(
            "phases",
            Json::Arr(
                self.snapshot
                    .phases
                    .iter()
                    .map(|&(name, _)| Json::from(name))
                    .collect(),
            ),
        );

        let mut counters = Json::object();
        for (&name, &value) in &self.snapshot.counters {
            counters.push(name, value);
        }
        root.push("counters", counters);

        let mut values = Json::object();
        for (&name, &value) in &self.snapshot.values {
            values.push(name, value);
        }
        root.push("values", values);

        let mut histograms = Json::object();
        for (&name, buckets) in &self.snapshot.histograms {
            histograms.push(name, buckets.as_slice());
        }
        root.push("histograms", histograms);
        root.push("failed_nodes", self.failed_nodes.as_slice());
        if let Some(mode) = &self.simd {
            root.push("simd", mode.as_str());
        }

        let mut runtime = Json::object();
        runtime.push("threads", self.threads);
        if let Some(dispatch) = &self.simd_dispatch {
            runtime.push("simd_dispatch", dispatch.as_str());
        }
        if let Some(ck) = &self.checkpoint {
            let mut info = Json::object();
            info.push("path", ck.path.as_str());
            info.push("resumed_nodes", ck.resumed_nodes);
            info.push("flushes", ck.flushes);
            info.push("delta_records", ck.delta_records);
            runtime.push("checkpoint", info);
        }
        let mut wall = Json::object();
        for &(name, seconds) in &self.snapshot.phases {
            wall.push(name, seconds);
        }
        runtime.push("phase_wall_seconds", wall);
        let mut chunks = Json::object();
        for (&region, per_worker) in &self.snapshot.worker_chunks {
            chunks.push(region, per_worker.as_slice());
        }
        runtime.push("worker_chunks", chunks);
        if !self.snapshot.spans.is_empty() || self.snapshot.spans_dropped > 0 {
            runtime.push(
                "trace",
                trace::trace_to_json(&self.snapshot.spans, self.snapshot.spans_dropped),
            );
        }
        if let Some(res) = &self.resources {
            runtime.push("resources", res.to_json());
        }
        root.push("runtime", runtime);

        root
    }

    /// Serializes the full report (pretty, trailing newline).
    pub fn to_pretty_json(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Serializes only the deterministic section: the full report with
    /// `runtime` removed. Two same-seed runs must produce byte-identical
    /// output here regardless of thread count or machine speed.
    pub fn deterministic_json(&self) -> String {
        let mut root = self.to_json();
        root.remove("runtime");
        root.to_pretty()
    }

    /// Renders a human-readable multi-line summary for `--trace` output.
    pub fn render_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[trace] {} run, {} thread(s)",
            self.algorithm, self.threads
        );
        let total: f64 = self.snapshot.phases.iter().map(|&(_, s)| s).sum();
        for &(name, seconds) in &self.snapshot.phases {
            let pct = if total > 0.0 {
                seconds / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "[trace]   {name:<24} {seconds:>10.6}s  {pct:>5.1}%");
        }
        let _ = writeln!(out, "[trace]   {:<24} {total:>10.6}s", "total");
        for (name, value) in &self.snapshot.counters {
            let _ = writeln!(out, "[trace]   counter {name} = {value}");
        }
        for (name, value) in &self.snapshot.values {
            let _ = writeln!(out, "[trace]   value   {name} = {value}");
        }
        for (name, buckets) in &self.snapshot.histograms {
            let _ = writeln!(out, "[trace]   hist    {name} = {buckets:?}");
        }
        for (region, chunks) in &self.snapshot.worker_chunks {
            let _ = writeln!(out, "[trace]   chunks  {region} = {chunks:?}");
        }
        if !self.failed_nodes.is_empty() {
            let _ = writeln!(out, "[trace]   failed nodes {:?}", self.failed_nodes);
        }
        if let Some(dispatch) = &self.simd_dispatch {
            let requested = self.simd.as_deref().unwrap_or("auto");
            let _ = writeln!(out, "[trace]   simd {requested} -> {dispatch}");
        }
        if let Some(ck) = &self.checkpoint {
            let _ = writeln!(
                out,
                "[trace]   checkpoint {} ({} resumed, {} flushes, {} delta records)",
                ck.path, ck.resumed_nodes, ck.flushes, ck.delta_records
            );
        }
        if !self.snapshot.spans.is_empty() {
            let _ = writeln!(
                out,
                "[trace]   spans {} recorded, {} dropped",
                self.snapshot.spans.len(),
                self.snapshot.spans_dropped
            );
        }
        if let Some(res) = &self.resources {
            let _ = writeln!(
                out,
                "[trace]   resources peak_rss={}B user_cpu={:.3}s sys_cpu={:.3}s ({} samples)",
                res.peak_rss_bytes, res.user_cpu_seconds, res.system_cpu_seconds, res.samples
            );
        }
        out
    }
}

/// Strips the `runtime` section from serialized report JSON, returning the
/// re-serialized deterministic remainder. Used by tests and CI to compare
/// reports across runs without the timing noise.
pub fn strip_runtime(report_json: &str) -> Result<String, json::ParseError> {
    let mut root = json::parse(report_json)?;
    root.remove("runtime");
    Ok(root.to_pretty())
}

/// Job states a serve-produced run report may carry in `runtime.job`.
const JOB_STATES: &[&str] = &["queued", "running", "done", "failed", "partial"];

/// Validates serialized report JSON for CI: it must parse, list every
/// phase in `required_phases` (both in `phases` and with a wall time in
/// `runtime.phase_wall_seconds`), and have a non-zero counter for every
/// name in `required_nonzero_counters`.
///
/// Reports produced by `diffnet-serve` additionally carry a `runtime.job`
/// object; when present it must have a numeric `id`, a `state` from the
/// job state machine (`queued`/`running`/`done`/`failed`/`partial`), and
/// the top-level `failed_nodes` array must be numeric — so serve-produced
/// reports validate with the same `report-check` command as CLI ones.
///
/// Reports from observed runs may also carry `runtime.trace` (a span
/// tree, validated by parsing it with the same routine `diffnet trace
/// render` uses) and `runtime.resources` (which must have numeric
/// `peak_rss_bytes`, `user_cpu_seconds`, `system_cpu_seconds`, `samples`,
/// and an array `rss_timeline`). Both are optional; malformed sections
/// are errors.
pub fn validate_report_json(
    report_json: &str,
    required_phases: &[&str],
    required_nonzero_counters: &[&str],
) -> Result<(), String> {
    let root = json::parse(report_json).map_err(|e| format!("invalid JSON: {e}"))?;

    root.get("algorithm")
        .and_then(Json::as_str)
        .ok_or("missing string field \"algorithm\"")?;

    let phases = root
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"phases\"")?;
    let phase_names: Vec<&str> = phases.iter().filter_map(Json::as_str).collect();
    if phase_names.len() != phases.len() {
        return Err("\"phases\" contains non-string entries".to_string());
    }

    let wall = root
        .get("runtime")
        .and_then(|r| r.get("phase_wall_seconds"))
        .ok_or("missing \"runtime.phase_wall_seconds\"")?;
    for &phase in required_phases {
        if !phase_names.contains(&phase) {
            return Err(format!("missing phase {phase:?} in \"phases\""));
        }
        wall.get(phase)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing wall time for phase {phase:?}"))?;
    }

    let counters = root
        .get("counters")
        .ok_or("missing object field \"counters\"")?;
    for &name in required_nonzero_counters {
        let value = counters
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing counter {name:?}"))?;
        if value <= 0.0 {
            return Err(format!("counter {name:?} is zero"));
        }
    }

    if let Some(job) = root.get("runtime").and_then(|r| r.get("job")) {
        job.get("id")
            .and_then(Json::as_f64)
            .ok_or("\"runtime.job\" missing numeric field \"id\"")?;
        let state = job
            .get("state")
            .and_then(Json::as_str)
            .ok_or("\"runtime.job\" missing string field \"state\"")?;
        if !JOB_STATES.contains(&state) {
            return Err(format!(
                "\"runtime.job.state\" {state:?} is not one of {JOB_STATES:?}"
            ));
        }
        let failed = root
            .get("failed_nodes")
            .and_then(Json::as_arr)
            .ok_or("job report missing array field \"failed_nodes\"")?;
        if failed.iter().any(|v| v.as_f64().is_none()) {
            return Err("\"failed_nodes\" contains non-numeric entries".to_string());
        }
    }

    if let Some(trace_json) = root.get("runtime").and_then(|r| r.get("trace")) {
        trace::spans_from_json(trace_json)
            .map_err(|e| format!("invalid \"runtime.trace\": {e}"))?;
    }

    if let Some(res) = root.get("runtime").and_then(|r| r.get("resources")) {
        for field in [
            "peak_rss_bytes",
            "user_cpu_seconds",
            "system_cpu_seconds",
            "samples",
        ] {
            res.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("\"runtime.resources\" missing numeric field {field:?}"))?;
        }
        res.get("rss_timeline")
            .and_then(Json::as_arr)
            .ok_or("\"runtime.resources\" missing array field \"rss_timeline\"")?;
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_report() -> RunReport {
        let rec = Recorder::new();
        {
            let _g = rec.phase("load");
        }
        {
            let _g = rec.phase("search");
        }
        rec.add("combinations_scored", 12);
        rec.add("bound_rejections", 3);
        rec.value("tau", 0.125);
        rec.histogram("candidate_set_size", 2);
        rec.histogram("candidate_set_size", 2);
        rec.worker_chunks("search", &[4, 3]);
        RunReport::new("tends", rec.snapshot(), 2)
    }

    #[test]
    fn json_has_expected_sections() {
        let report = sample_report();
        let json = report.to_json();
        assert_eq!(json.get("algorithm").and_then(Json::as_str), Some("tends"));
        assert_eq!(
            json.get("phases").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("combinations_scored"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            json.get("values")
                .and_then(|v| v.get("tau"))
                .and_then(Json::as_f64),
            Some(0.125)
        );
        let runtime = json.get("runtime").expect("runtime section");
        assert_eq!(runtime.get("threads").and_then(Json::as_f64), Some(2.0));
        assert!(runtime
            .get("phase_wall_seconds")
            .and_then(|w| w.get("search"))
            .is_some());
        assert_eq!(
            runtime
                .get("worker_chunks")
                .and_then(|c| c.get("search"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn deterministic_json_omits_runtime() {
        let report = sample_report();
        let det = report.deterministic_json();
        assert!(!det.contains("runtime"));
        assert!(!det.contains("phase_wall_seconds"));
        assert!(det.contains("combinations_scored"));
    }

    #[test]
    fn strip_runtime_matches_deterministic_json() {
        let report = sample_report();
        let full = report.to_pretty_json();
        assert_eq!(
            strip_runtime(&full).expect("parses"),
            report.deterministic_json()
        );
    }

    #[test]
    fn deterministic_json_is_timing_invariant() {
        // Two reports with identical counters but different wall clocks
        // must serialize identically once runtime is stripped.
        let a = sample_report();
        let mut b = a.clone();
        for (_, seconds) in &mut b.snapshot.phases {
            *seconds += 1.0;
        }
        b.threads = 8;
        b.snapshot.worker_chunks.insert("search", vec![7]);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(a.to_pretty_json(), b.to_pretty_json());
    }

    #[test]
    fn failed_nodes_are_deterministic_and_checkpoint_is_runtime() {
        let mut report = sample_report();
        report.failed_nodes = vec![3, 9];
        report.checkpoint = Some(CheckpointInfo {
            path: "ck.json".to_string(),
            resumed_nodes: 4,
            flushes: 2,
            delta_records: 11,
        });
        let det = report.deterministic_json();
        assert!(det.contains("failed_nodes"));
        assert!(!det.contains("checkpoint"), "checkpoint is runtime-only");
        let full = report.to_json();
        let ck = full
            .get("runtime")
            .and_then(|r| r.get("checkpoint"))
            .expect("runtime.checkpoint");
        assert_eq!(ck.get("resumed_nodes").and_then(Json::as_f64), Some(4.0));

        // A run that merely stopped/resumed in a different place must not
        // perturb the deterministic section.
        let mut resumed = report.clone();
        resumed.checkpoint = Some(CheckpointInfo {
            path: "ck.json".to_string(),
            resumed_nodes: 7,
            flushes: 1,
            delta_records: 0,
        });
        assert_eq!(det, resumed.deterministic_json());
    }

    #[test]
    fn simd_override_is_deterministic_and_dispatch_is_runtime() {
        let mut report = sample_report();
        report.simd = Some("scalar".to_string());
        report.simd_dispatch = Some("scalar".to_string());
        let det = report.deterministic_json();
        assert!(det.contains("\"simd\": \"scalar\""));
        assert!(!det.contains("simd_dispatch"), "dispatch is runtime-only");
        let full = report.to_json();
        assert_eq!(
            full.get("runtime")
                .and_then(|r| r.get("simd_dispatch"))
                .and_then(Json::as_str),
            Some("scalar")
        );
        assert!(report.render_trace().contains("simd scalar -> scalar"));

        // The default (no override) stays byte-identical to a pre-SIMD
        // report: nothing is serialized in the deterministic section.
        let mut auto = sample_report();
        auto.simd_dispatch = Some("avx2".to_string());
        assert_eq!(
            auto.deterministic_json(),
            sample_report().deterministic_json()
        );
    }

    #[test]
    fn validate_accepts_good_report() {
        let report = sample_report();
        let json = report.to_pretty_json();
        validate_report_json(&json, &["load", "search"], &["combinations_scored"])
            .expect("valid report");
    }

    #[test]
    fn validate_rejects_missing_phase_and_zero_counter() {
        let report = sample_report();
        let json = report.to_pretty_json();
        assert!(validate_report_json(&json, &["prune"], &[]).is_err());
        assert!(validate_report_json(&json, &[], &["missing_counter"]).is_err());
        assert!(validate_report_json("not json", &[], &[]).is_err());
    }

    /// A sample report with a serve-style `runtime.job` section injected.
    fn job_report(state: &str) -> String {
        let mut json = sample_report().to_json();
        let mut runtime = json.remove("runtime").expect("runtime section");
        let mut job = Json::object();
        job.push("id", 7u64);
        job.push("state", state);
        runtime.push("job", job);
        json.push("runtime", runtime);
        json.to_pretty()
    }

    #[test]
    fn validate_accepts_serve_job_report() {
        for state in ["queued", "running", "done", "failed", "partial"] {
            validate_report_json(&job_report(state), &["load"], &["combinations_scored"])
                .expect("valid job report");
        }
    }

    #[test]
    fn validate_rejects_malformed_job_section() {
        let err = validate_report_json(&job_report("exploded"), &[], &[]).unwrap_err();
        assert!(err.contains("exploded"), "{err}");

        // Missing id / state are typed failures, not silent passes.
        let mut json = sample_report().to_json();
        let mut runtime = json.remove("runtime").expect("runtime");
        runtime.push("job", Json::object());
        json.push("runtime", runtime);
        let err = validate_report_json(&json.to_pretty(), &[], &[]).unwrap_err();
        assert!(err.contains("id"), "{err}");
    }

    #[test]
    fn spans_and_resources_live_in_runtime_only() {
        let mut report = sample_report();
        report.resources = Some(ResourceProfile {
            peak_rss_bytes: 4096,
            user_cpu_seconds: 0.5,
            system_cpu_seconds: 0.1,
            samples: 3,
            rss_timeline: vec![(0.0, 4096)],
        });
        // sample_report ran two phases, so the snapshot carries root spans.
        assert!(!report.snapshot.spans.is_empty());
        let full = report.to_json();
        let runtime = full.get("runtime").expect("runtime");
        let spans = runtime
            .get("trace")
            .and_then(|t| t.get("spans"))
            .and_then(Json::as_arr)
            .expect("runtime.trace.spans");
        assert_eq!(spans.len(), report.snapshot.spans.len());
        assert_eq!(
            runtime
                .get("resources")
                .and_then(|r| r.get("peak_rss_bytes"))
                .and_then(Json::as_f64),
            Some(4096.0)
        );
        let det = report.deterministic_json();
        assert!(!det.contains("trace"), "spans are runtime-only");
        assert!(
            !det.contains("peak_rss_bytes"),
            "resources are runtime-only"
        );
        let rendered = report.render_trace();
        assert!(rendered.contains("spans 2 recorded"), "{rendered}");
        assert!(rendered.contains("peak_rss=4096B"), "{rendered}");
        validate_report_json(
            &report.to_pretty_json(),
            &["load", "search"],
            &["combinations_scored"],
        )
        .expect("report with trace + resources validates");
    }

    #[test]
    fn validate_rejects_malformed_trace_and_resources() {
        let mut json = sample_report().to_json();
        let mut runtime = json.remove("runtime").expect("runtime");
        runtime.remove("trace");
        let mut bad_trace = Json::object();
        bad_trace.push("spans", "not an array");
        runtime.push("trace", bad_trace);
        json.push("runtime", runtime);
        let err = validate_report_json(&json.to_pretty(), &[], &[]).unwrap_err();
        assert!(err.contains("runtime.trace"), "{err}");

        let mut json = sample_report().to_json();
        let mut runtime = json.remove("runtime").expect("runtime");
        let mut bad_res = Json::object();
        bad_res.push("peak_rss_bytes", "big");
        runtime.push("resources", bad_res);
        json.push("runtime", runtime);
        let err = validate_report_json(&json.to_pretty(), &[], &[]).unwrap_err();
        assert!(err.contains("runtime.resources"), "{err}");
    }

    #[test]
    fn trace_render_mentions_phases_and_counters() {
        let report = sample_report();
        let trace = report.render_trace();
        assert!(trace.contains("load"));
        assert!(trace.contains("search"));
        assert!(trace.contains("combinations_scored = 12"));
        assert!(trace.contains("tau = 0.125"));
    }
}
