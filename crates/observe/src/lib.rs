//! Zero-dependency observability for the diffnet pipeline.
//!
//! The workspace builds with no registry access, so this crate hand-rolls
//! the three pieces an instrumentation layer needs on `std` alone:
//!
//! - [`Recorder`]: spans ([`Recorder::phase`] returning a timing guard),
//!   counters, scalar values, histograms, and per-worker chunk stats —
//!   with a no-op disabled mode ([`Recorder::disabled`]) so instrumented
//!   code costs a predictable branch when observability is off;
//! - [`Json`]: a deterministic JSON tree, writer, and minimal parser
//!   (hoisted from the `perf_report` bench binary);
//! - [`RunReport`]: the structured report serialized for `--run-report`,
//!   split into a deterministic section (pure function of seed + config)
//!   and a `runtime` section (wall times, worker scheduling);
//! - [`render_prometheus`]: the Prometheus-style plain-text exposition of
//!   a recorder snapshot, shared by `diffnet-serve`'s `/v1/metrics`
//!   endpoint and any scraping tooling.
//!
//! See DESIGN.md ("Observability") for the rationale behind the
//! no-op-collector pattern and the deterministic/runtime split.

#![warn(missing_docs)]

pub mod fault;
pub mod json;
pub mod prometheus;
pub mod recorder;
pub mod report;

pub use fault::FaultPlan;
pub use json::{parse as parse_json, Json, ParseError};
pub use prometheus::render_prometheus;
pub use recorder::{PhaseGuard, Recorder, Snapshot};
pub use report::{strip_runtime, validate_report_json, CheckpointInfo, PhaseTiming, RunReport};
