//! Zero-dependency observability for the diffnet pipeline.
//!
//! The workspace builds with no registry access, so this crate hand-rolls
//! the three pieces an instrumentation layer needs on `std` alone:
//!
//! - [`Recorder`]: phases ([`Recorder::phase`] returning a timing guard),
//!   nested spans ([`Recorder::span`], ring-bounded, serialized under
//!   `runtime.trace`), counters, scalar values, histograms, log₂ duration
//!   histograms ([`DurationHistogram`]), and per-worker chunk stats —
//!   with a no-op disabled mode ([`Recorder::disabled`]) so instrumented
//!   code costs a predictable branch when observability is off;
//! - [`ResourceProfiler`]: a background RSS/CPU sampler over
//!   `/proc/self/statm` + `getrusage(2)`, serialized under
//!   `runtime.resources`;
//! - [`Json`]: a deterministic JSON tree, writer, and minimal parser
//!   (hoisted from the `perf_report` bench binary);
//! - [`RunReport`]: the structured report serialized for `--run-report`,
//!   split into a deterministic section (pure function of seed + config)
//!   and a `runtime` section (wall times, worker scheduling);
//! - [`render_prometheus`]: the Prometheus-style plain-text exposition of
//!   a recorder snapshot, shared by `diffnet-serve`'s `/v1/metrics`
//!   endpoint and any scraping tooling.
//!
//! See DESIGN.md ("Observability") for the rationale behind the
//! no-op-collector pattern and the deterministic/runtime split.

#![warn(missing_docs)]

pub mod fault;
pub mod json;
pub mod prometheus;
pub mod recorder;
pub mod report;
pub mod resources;
pub mod trace;

pub use fault::FaultPlan;
pub use json::{parse as parse_json, Json, ParseError};
pub use prometheus::{lint_exposition, render_prometheus};
pub use recorder::{
    duration_bucket_bounds, DurationHistogram, PhaseGuard, Recorder, Snapshot, SpanGuard,
    DURATION_BUCKETS, DURATION_SUB_BUCKETS,
};
pub use report::{strip_runtime, validate_report_json, CheckpointInfo, PhaseTiming, RunReport};
pub use resources::{
    current_rss_bytes, ResourceProfile, ResourceProfiler, DEFAULT_SAMPLE_INTERVAL,
};
pub use trace::{
    collapse_stacks, render_timeline, spans_from_json, trace_to_json, ParsedSpan, SpanId,
    SpanRecord, SPAN_BUFFER_CAP,
};
