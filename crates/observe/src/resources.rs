//! Resource profiling: a zero-dependency background sampler for RSS and
//! CPU time.
//!
//! [`ResourceProfiler::start`] spawns one thread that samples resident-set
//! size from `/proc/self/statm` on a fixed interval and reads CPU time
//! through `getrusage(2)` — both via `std` file I/O and two raw libc
//! declarations (`std` already links libc; no crate is added). The
//! profile it produces is *window-scoped*: CPU seconds are deltas from
//! the moment the profiler started, and peak RSS is the maximum observed
//! while it ran (one sample is taken synchronously at start, so even a
//! zero-length window reports a non-zero peak on Linux).
//!
//! The RSS timeline is kept bounded by decimation: when it reaches
//! [`TIMELINE_CAP`] samples, every other entry is discarded and the
//! recording stride doubles, so a long run keeps an evenly spaced
//! timeline covering its whole duration instead of just its start.
//!
//! Everything here is wall-clock dependent, so profiles serialize under
//! `runtime.resources` in run reports — never the deterministic section.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Default sampling interval for the background thread.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(50);

/// Maximum retained RSS timeline entries before decimation halves them.
pub const TIMELINE_CAP: usize = 240;

/// A window-scoped resource profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceProfile {
    /// Peak resident-set size observed during the window, in bytes.
    pub peak_rss_bytes: u64,
    /// User-mode CPU seconds consumed by the process during the window.
    pub user_cpu_seconds: f64,
    /// Kernel-mode CPU seconds consumed by the process during the window.
    pub system_cpu_seconds: f64,
    /// Number of RSS samples taken (before decimation).
    pub samples: u64,
    /// `(offset seconds, rss bytes)` samples, decimated to stay bounded.
    pub rss_timeline: Vec<(f64, u64)>,
}

impl ResourceProfile {
    /// The most recent RSS sample, in bytes (0 with an empty timeline).
    pub fn last_rss_bytes(&self) -> u64 {
        self.rss_timeline.last().map_or(0, |&(_, rss)| rss)
    }

    /// Serializes as the `runtime.resources` JSON object.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("peak_rss_bytes", self.peak_rss_bytes);
        root.push("user_cpu_seconds", self.user_cpu_seconds);
        root.push("system_cpu_seconds", self.system_cpu_seconds);
        root.push("samples", self.samples);
        let mut timeline = Vec::with_capacity(self.rss_timeline.len());
        for &(t, rss) in &self.rss_timeline {
            timeline.push(Json::Arr(vec![Json::from(t), Json::from(rss)]));
        }
        root.push("rss_timeline", Json::Arr(timeline));
        root
    }
}

struct ProfilerState {
    started: Instant,
    base_user: f64,
    base_system: f64,
    profile: ResourceProfile,
    stride: u32,
    tick: u64,
}

impl ProfilerState {
    fn sample(&mut self) {
        let now = self.started.elapsed().as_secs_f64();
        self.profile.samples += 1;
        if let Some(rss) = rss_bytes() {
            self.profile.peak_rss_bytes = self.profile.peak_rss_bytes.max(rss);
            // Record every `stride`-th sample; decimate + double the
            // stride when the timeline fills, so it stays bounded while
            // covering the whole window.
            if self.tick.is_multiple_of(u64::from(self.stride)) {
                self.profile.rss_timeline.push((now, rss));
                if self.profile.rss_timeline.len() >= TIMELINE_CAP {
                    let mut keep = 0;
                    self.profile.rss_timeline.retain(|_| {
                        keep += 1;
                        keep % 2 == 1
                    });
                    self.stride = self.stride.saturating_mul(2);
                }
            }
            self.tick += 1;
        }
        let (user, system, maxrss) = rusage_self();
        self.profile.user_cpu_seconds = (user - self.base_user).max(0.0);
        self.profile.system_cpu_seconds = (system - self.base_system).max(0.0);
        // Fallback where /proc is unavailable: ru_maxrss is the process
        // lifetime peak, still a usable upper bound for the window.
        if self.profile.peak_rss_bytes == 0 {
            self.profile.peak_rss_bytes = maxrss;
        }
    }
}

/// A running background sampler. Stop it with [`ResourceProfiler::stop`]
/// to get the final profile, or read a live snapshot with
/// [`ResourceProfiler::current`]. Dropping it joins the thread.
pub struct ResourceProfiler {
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<ProfilerState>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ResourceProfiler {
    /// Starts the sampler with one synchronous initial sample, then
    /// background samples every `interval`.
    pub fn start(interval: Duration) -> ResourceProfiler {
        let (base_user, base_system, _) = rusage_self();
        let mut initial = ProfilerState {
            started: Instant::now(),
            base_user,
            base_system,
            profile: ResourceProfile::default(),
            stride: 1,
            tick: 0,
        };
        initial.sample();
        let state = Arc::new(Mutex::new(initial));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_state = Arc::clone(&state);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("diffnet-profiler".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::park_timeout(interval);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    thread_state.lock().expect("profiler poisoned").sample();
                }
            })
            .ok();
        ResourceProfiler {
            stop,
            state,
            handle,
        }
    }

    /// A live snapshot: one fresh sample, then a copy of the profile.
    pub fn current(&self) -> ResourceProfile {
        let mut st = self.state.lock().expect("profiler poisoned");
        st.sample();
        st.profile.clone()
    }

    /// Stops the sampler (taking one final sample) and returns the
    /// completed window profile.
    pub fn stop(mut self) -> ResourceProfile {
        self.halt();
        let mut st = self.state.lock().expect("profiler poisoned");
        st.sample();
        st.profile.clone()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for ResourceProfiler {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Current resident-set size of this process, in bytes.
///
/// A synchronous one-shot read (no profiler thread needed) for
/// RSS-aware progress spans on the out-of-core pipeline. `None` where
/// `/proc/self/statm` is unavailable (non-Linux) or unreadable.
pub fn current_rss_bytes() -> Option<u64> {
    rss_bytes()
}

/// Current resident-set size in bytes, from `/proc/self/statm` (Linux
/// only; `None` elsewhere or on any read/parse failure).
fn rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let text = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
        Some(resident * page_size())
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(target_os = "linux")]
fn page_size() -> u64 {
    extern "C" {
        fn sysconf(name: i32) -> i64;
    }
    const SC_PAGESIZE: i32 = 30; // Linux value of _SC_PAGESIZE
    let raw = unsafe { sysconf(SC_PAGESIZE) };
    if raw > 0 {
        raw as u64
    } else {
        4096
    }
}

/// `(user cpu seconds, system cpu seconds, peak rss bytes)` for the
/// process, via `getrusage(RUSAGE_SELF)`. Zeros on non-unix targets.
fn rusage_self() -> (f64, f64, u64) {
    #[cfg(unix)]
    {
        // struct rusage, as libc lays it out: two timevals then 14 longs,
        // of which the first is ru_maxrss. Declared raw because std links
        // libc already and the workspace adds no crates.
        #[repr(C)]
        struct Timeval {
            tv_sec: i64,
            tv_usec: i64,
        }
        #[repr(C)]
        struct Rusage {
            ru_utime: Timeval,
            ru_stime: Timeval,
            ru_rest: [i64; 14],
        }
        extern "C" {
            fn getrusage(who: i32, usage: *mut Rusage) -> i32;
        }
        const RUSAGE_SELF: i32 = 0;
        let mut usage = Rusage {
            ru_utime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            ru_stime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            ru_rest: [0; 14],
        };
        if unsafe { getrusage(RUSAGE_SELF, &mut usage) } != 0 {
            return (0.0, 0.0, 0);
        }
        let tv = |t: &Timeval| t.tv_sec as f64 + t.tv_usec as f64 * 1e-6;
        // ru_maxrss is kilobytes on Linux, bytes on macOS.
        let maxrss = usage.ru_rest[0].max(0) as u64;
        let maxrss_bytes = if cfg!(target_os = "macos") {
            maxrss
        } else {
            maxrss * 1024
        };
        (tv(&usage.ru_utime), tv(&usage.ru_stime), maxrss_bytes)
    }
    #[cfg(not(unix))]
    {
        (0.0, 0.0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_reports_positive_peak_rss() {
        let profiler = ResourceProfiler::start(Duration::from_millis(5));
        // Touch some memory and burn a little CPU so the deltas move.
        let v: Vec<u64> = (0..200_000).collect();
        let sum: u64 = v.iter().sum();
        assert!(sum > 0);
        std::thread::sleep(Duration::from_millis(25));
        let profile = profiler.stop();
        assert!(profile.peak_rss_bytes > 0, "{profile:?}");
        assert!(profile.samples >= 2, "{profile:?}");
        assert!(profile.user_cpu_seconds >= 0.0);
        assert!(profile.system_cpu_seconds >= 0.0);
        #[cfg(target_os = "linux")]
        {
            assert!(!profile.rss_timeline.is_empty());
            assert_eq!(
                profile.last_rss_bytes(),
                profile.rss_timeline.last().unwrap().1
            );
        }
    }

    #[test]
    fn current_snapshots_without_stopping() {
        let profiler = ResourceProfiler::start(Duration::from_millis(50));
        let a = profiler.current();
        let b = profiler.current();
        assert!(b.samples >= a.samples);
        assert!(a.peak_rss_bytes > 0);
        drop(profiler);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn timeline_stays_bounded_under_decimation() {
        let mut st = ProfilerState {
            started: Instant::now(),
            base_user: 0.0,
            base_system: 0.0,
            profile: ResourceProfile::default(),
            stride: 1,
            tick: 0,
        };
        for _ in 0..10_000 {
            st.sample();
        }
        assert!(st.profile.rss_timeline.len() <= TIMELINE_CAP);
        assert!(st.stride > 1, "decimation should have doubled the stride");
        // Decimated timeline still spans from early to late samples.
        assert!(st.profile.samples >= 10_000);
    }

    #[test]
    fn profile_serializes_expected_fields() {
        let profile = ResourceProfile {
            peak_rss_bytes: 1024,
            user_cpu_seconds: 0.5,
            system_cpu_seconds: 0.25,
            samples: 3,
            rss_timeline: vec![(0.0, 512), (0.1, 1024)],
        };
        let json = profile.to_json();
        assert_eq!(
            json.get("peak_rss_bytes").and_then(Json::as_f64),
            Some(1024.0)
        );
        assert_eq!(
            json.get("rss_timeline")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }
}
