//! Hand-rolled deterministic JSON: a value tree, a pretty writer, and a
//! minimal parser.
//!
//! The workspace has no registry access, so there is no `serde`; this
//! module is the single JSON implementation the pipeline shares (it was
//! hoisted out of the `perf_report` bench binary and generalized). The
//! writer is **deterministic**: object fields are emitted in insertion
//! order, floats use Rust's shortest-round-trip `Display` (never exponent
//! notation), and indentation is fixed — so two structurally identical
//! values always serialize to identical bytes, which the run-report
//! determinism tests rely on.

use std::fmt::Write as _;

/// A JSON value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): callers
/// control field order, and serialization is reproducible.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite floats serialize as `null` (JSON has
    /// no NaN/∞).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects (programmer
    /// error in report assembly).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// The value of an object field, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes an object field, returning it if present. No-op on
    /// non-objects.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(fields) => {
                let idx = fields.iter().position(|(k, _)| k == key)?;
                Some(fields.remove(idx).1)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on one line with no whitespace (for log lines and wire
    /// payloads); same escaping and number formatting as [`Json::to_pretty`].
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's f64 Display is shortest-round-trip and never
                    // uses exponent notation, so the output is valid JSON
                    // and deterministic.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.write(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl From<&[u64]> for Json {
    fn from(v: &[u64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::from(x)).collect())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    // Copy maximal escape-free runs in one shot: long strings (dense
    // numeric tables in checkpoints) serialize at memcpy speed instead
    // of a char at a time. Runs split only at ASCII bytes, so the
    // boundaries always fall on UTF-8 character boundaries.
    fn needs_escape(b: u8) -> bool {
        b == b'"' || b == b'\\' || b < 0x20
    }
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    while start < bytes.len() {
        let mut end = start;
        while end < bytes.len() && !needs_escape(bytes[end]) {
            end += 1;
        }
        out.push_str(&s[start..end]);
        if end == bytes.len() {
            break;
        }
        match bytes[end] {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            c => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
        }
        start = end + 1;
    }
    out.push('"');
}

/// JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Json`] tree.
///
/// Accepts exactly the grammar the writer emits (standard JSON minus
/// exponent-heavy corner cases it never produces — exponents in numbers
/// *are* accepted for robustness). Trailing whitespace is allowed; any
/// other trailing content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a maximal run of unescaped bytes in one shot so long
                    // strings (e.g. dense numeric tables) parse in linear time.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                            ParseError {
                                message: "invalid UTF-8 in string".to_string(),
                                offset: start,
                            }
                        })?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut inner = Json::object();
        inner.push("pi", 3.5);
        inner.push("neg", -2.0f64);
        let mut obj = Json::object();
        obj.push("name", "run \"1\"\n");
        obj.push("count", 42u64);
        obj.push("flag", true);
        obj.push("nothing", Json::Null);
        obj.push("list", &[1u64, 2, 3][..]);
        obj.push("nested", inner);
        obj.push("empty_arr", Json::Arr(Vec::new()));
        obj.push("empty_obj", Json::object());
        obj
    }

    #[test]
    fn round_trip_preserves_structure() {
        let v = sample();
        let text = v.to_pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn writer_is_deterministic() {
        assert_eq!(sample().to_pretty(), sample().to_pretty());
    }

    #[test]
    fn insertion_order_is_preserved() {
        let text = sample().to_pretty();
        let name = text.find("\"name\"").expect("name");
        let count = text.find("\"count\"").expect("count");
        let nested = text.find("\"nested\"").expect("nested");
        assert!(name < count && count < nested);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = Json::object();
        obj.push("bad", f64::NAN);
        obj.push("inf", f64::INFINITY);
        let text = obj.to_pretty();
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("\"inf\": null"));
        parse(&text).expect("still valid JSON");
    }

    #[test]
    fn get_and_remove() {
        let mut v = sample();
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("run \"1\"\n"));
        let removed = v.remove("nested").expect("was present");
        assert!(removed.get("pi").is_some());
        assert!(v.get("nested").is_none());
        assert!(v.remove("nested").is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_accepts_exponents_and_unicode() {
        let v = parse("{\"x\": 1.5e3, \"s\": \"\\u00e9\"}").expect("parses");
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("é"));
    }

    #[test]
    fn scalar_arrays_are_single_line() {
        let mut obj = Json::object();
        obj.push("hist", &[1u64, 2, 3][..]);
        assert!(obj.to_pretty().contains("\"hist\": [1, 2, 3]"));
    }

    #[test]
    fn compact_writer_is_one_line_and_round_trips() {
        let v = sample();
        let compact = v.to_compact();
        assert!(!compact.contains('\n'));
        assert!(!compact.contains(": "));
        assert_eq!(parse(&compact).expect("parses"), v);
    }
}
