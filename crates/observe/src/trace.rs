//! Span tracing: nested, thread-attributed spans with monotonic offsets.
//!
//! A span is one timed region of the run — a pipeline phase, one node's
//! parent search, one HTTP request. Spans carry an id, an optional parent
//! id (encoding the tree), start/end offsets in seconds from the
//! recorder's epoch (the first instrumented event), the name of the
//! thread that closed them, and a small set of static-keyed integer
//! attributes. Completed spans land in a bounded ring buffer inside the
//! recorder's one mutex ([`SPAN_BUFFER_CAP`] entries; the oldest spans
//! are dropped first and counted, so a trace is never unbounded).
//!
//! Everything clock-dependent lives here, so serialized traces belong in
//! the `runtime.trace` section of a run report — never the deterministic
//! one. [`trace_to_json`] is the one serializer; [`spans_from_json`] +
//! [`render_timeline`] / [`collapse_stacks`] are the read side used by
//! `diffnet trace render`.

use crate::json::Json;

/// Identifier of one span, unique within a recorder.
pub type SpanId = u64;

/// Capacity of the per-recorder span ring buffer. When a run produces
/// more spans than this, the *oldest* completed spans are discarded and
/// counted in `dropped` — root phase spans complete last, so they are the
/// last to go.
pub const SPAN_BUFFER_CAP: usize = 4096;

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder (allocation order, starting at 1).
    pub id: SpanId,
    /// Parent span id, or `None` for a root span.
    pub parent: Option<SpanId>,
    /// Static span name (e.g. `"parent_search"`, `"node_search"`).
    pub name: &'static str,
    /// Start offset in seconds from the recorder epoch.
    pub start_s: f64,
    /// End offset in seconds from the recorder epoch.
    pub end_s: f64,
    /// Name of the thread that closed the span (or its `ThreadId` debug
    /// form for unnamed threads, e.g. scoped pool workers).
    pub thread: String,
    /// Static-keyed integer attributes (candidate counts, cache stats…).
    pub attrs: Vec<(&'static str, u64)>,
}

/// Serializes a completed-span list as the `runtime.trace` JSON object:
/// `{"spans": [...], "dropped": N}`.
pub fn trace_to_json(spans: &[SpanRecord], dropped: u64) -> Json {
    let mut arr = Vec::with_capacity(spans.len());
    for span in spans {
        let mut obj = Json::object();
        obj.push("id", span.id);
        match span.parent {
            Some(p) => obj.push("parent", p),
            None => obj.push("parent", Json::Null),
        };
        obj.push("name", span.name);
        obj.push("start_s", span.start_s);
        obj.push("end_s", span.end_s);
        obj.push("thread", span.thread.as_str());
        if !span.attrs.is_empty() {
            let mut attrs = Json::object();
            for &(key, value) in &span.attrs {
                attrs.push(key, value);
            }
            obj.push("attrs", attrs);
        }
        arr.push(obj);
    }
    let mut root = Json::object();
    root.push("spans", Json::Arr(arr));
    root.push("dropped", dropped);
    root
}

/// A span parsed back from trace JSON (owned strings: names are no longer
/// `'static` once they round-trip through a file).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSpan {
    /// Span id.
    pub id: SpanId,
    /// Parent span id, if any.
    pub parent: Option<SpanId>,
    /// Span name.
    pub name: String,
    /// Start offset in seconds.
    pub start_s: f64,
    /// End offset in seconds.
    pub end_s: f64,
    /// Closing thread.
    pub thread: String,
    /// Attributes as `(key, value)` pairs in serialized order.
    pub attrs: Vec<(String, f64)>,
}

impl ParsedSpan {
    /// Span duration in seconds (clamped non-negative).
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Parses a `{"spans": [...], "dropped": N}` trace object back into spans.
pub fn spans_from_json(trace: &Json) -> Result<(Vec<ParsedSpan>, u64), String> {
    let arr = trace
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("trace is missing the \"spans\" array")?;
    let dropped = trace
        .get("dropped")
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
        .max(0.0) as u64;
    let mut spans = Vec::with_capacity(arr.len());
    for (i, item) in arr.iter().enumerate() {
        let id = item
            .get("id")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span #{i} is missing a numeric \"id\""))?
            as SpanId;
        let parent = match item.get("parent") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| format!("span #{i} has a non-numeric \"parent\""))?
                    as SpanId,
            ),
        };
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("span #{i} is missing a string \"name\""))?
            .to_string();
        let start_s = item
            .get("start_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span #{i} is missing a numeric \"start_s\""))?;
        let end_s = item
            .get("end_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span #{i} is missing a numeric \"end_s\""))?;
        if end_s < start_s {
            return Err(format!(
                "span #{i} ends ({end_s}) before it starts ({start_s})"
            ));
        }
        let thread = item
            .get("thread")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let mut attrs = Vec::new();
        if let Some(obj) = item.get("attrs").and_then(Json::as_obj) {
            for (key, value) in obj {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("span #{i} attr {key:?} is not numeric"))?;
                attrs.push((key.clone(), v));
            }
        }
        spans.push(ParsedSpan {
            id,
            parent,
            name,
            start_s,
            end_s,
            thread,
            attrs,
        });
    }
    Ok((spans, dropped))
}

/// Children of each span, sorted by start offset; roots (parent absent or
/// pointing at a dropped span) come back under the `None` key.
fn child_index(spans: &[ParsedSpan]) -> Vec<Vec<usize>> {
    // index 0 = roots; index i+1 = children of spans[i].
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len() + 1];
    let position = |id: SpanId| spans.iter().position(|s| s.id == id);
    for (i, span) in spans.iter().enumerate() {
        let slot = span.parent.and_then(position).map_or(0, |p| p + 1);
        children[slot].push(i);
    }
    for list in &mut children {
        list.sort_by(|&a, &b| {
            spans[a]
                .start_s
                .partial_cmp(&spans[b].start_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(spans[a].id.cmp(&spans[b].id))
        });
    }
    children
}

/// Renders a text timeline: one line per span, indented by tree depth, in
/// start order, with offsets, duration, thread, and attributes.
pub fn render_timeline(spans: &[ParsedSpan], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total = spans
        .iter()
        .map(|s| s.end_s)
        .fold(0.0f64, f64::max)
        .max(0.0);
    let _ = writeln!(
        out,
        "trace: {} span(s), {dropped} dropped, {total:.6}s total",
        spans.len()
    );
    let children = child_index(spans);
    let mut stack: Vec<(usize, usize)> = children[0].iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        let _ = write!(
            out,
            "[{:>11.6}s ..{:>11.6}s] {:indent$}{} ({:.6}s, {})",
            s.start_s,
            s.end_s,
            "",
            s.name,
            s.duration_s(),
            s.thread,
            indent = depth * 2
        );
        for (key, value) in &s.attrs {
            let _ = write!(out, " {key}={value}");
        }
        out.push('\n');
        for &c in children[i + 1].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

/// Renders flamegraph-style collapsed stacks: one line per unique
/// root-to-span path, `name;name;... <self-µs>`, suitable for standard
/// flamegraph tooling. Self time is the span's duration minus its
/// children's, clamped non-negative and rounded to whole microseconds.
pub fn collapse_stacks(spans: &[ParsedSpan]) -> String {
    use std::fmt::Write as _;
    let children = child_index(spans);
    let mut lines: Vec<(String, u64)> = Vec::new();
    let mut stack: Vec<(usize, String)> = children[0]
        .iter()
        .map(|&i| (i, spans[i].name.clone()))
        .collect();
    while let Some((i, path)) = stack.pop() {
        let child_total: f64 = children[i + 1].iter().map(|&c| spans[c].duration_s()).sum();
        let self_us = ((spans[i].duration_s() - child_total).max(0.0) * 1e6).round() as u64;
        match lines.iter_mut().find(|(p, _)| *p == path) {
            Some((_, v)) => *v += self_us,
            None => lines.push((path.clone(), self_us)),
        }
        for &c in &children[i + 1] {
            stack.push((c, format!("{path};{}", spans[c].name)));
        }
    }
    lines.sort();
    let mut out = String::new();
    for (path, value) in lines {
        let _ = writeln!(out, "{path} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "parent_search",
                start_s: 0.0,
                end_s: 1.0,
                thread: "main".to_string(),
                attrs: Vec::new(),
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "node_search",
                start_s: 0.1,
                end_s: 0.4,
                thread: "main".to_string(),
                attrs: vec![("node", 0), ("candidates", 3)],
            },
            SpanRecord {
                id: 3,
                parent: Some(1),
                name: "node_search",
                start_s: 0.4,
                end_s: 0.9,
                thread: "main".to_string(),
                attrs: vec![("node", 1), ("candidates", 5)],
            },
        ]
    }

    #[test]
    fn trace_json_round_trips() {
        let spans = sample_spans();
        let json = trace_to_json(&spans, 2);
        let reparsed = crate::json::parse(&json.to_pretty()).expect("parse");
        let (parsed, dropped) = spans_from_json(&reparsed).expect("spans");
        assert_eq!(dropped, 2);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "parent_search");
        assert_eq!(parsed[0].parent, None);
        assert_eq!(parsed[1].parent, Some(1));
        assert_eq!(
            parsed[1].attrs,
            vec![("node".to_string(), 0.0), ("candidates".to_string(), 3.0)]
        );
    }

    #[test]
    fn parse_rejects_malformed_spans() {
        let bad = crate::json::parse(r#"{"spans": [{"id": 1}]}"#).expect("json");
        assert!(spans_from_json(&bad).is_err());
        let inverted = crate::json::parse(
            r#"{"spans": [{"id": 1, "name": "x", "start_s": 2.0, "end_s": 1.0}]}"#,
        )
        .expect("json");
        assert!(spans_from_json(&inverted).unwrap_err().contains("before"));
        let no_spans = crate::json::parse("{}").expect("json");
        assert!(spans_from_json(&no_spans).is_err());
    }

    #[test]
    fn timeline_nests_children_under_parents() {
        let json = trace_to_json(&sample_spans(), 0);
        let (parsed, dropped) = spans_from_json(&json).expect("spans");
        let text = render_timeline(&parsed, dropped);
        assert!(text.contains("3 span(s), 0 dropped"));
        assert!(text.contains("parent_search"));
        // Children are indented two spaces deeper than the root.
        assert!(text.contains("  node_search"), "{text}");
        assert!(text.contains("node=0"), "{text}");
    }

    #[test]
    fn orphaned_parent_becomes_root() {
        let mut spans = sample_spans();
        spans.remove(0); // drop the root; children point at a missing id
        let json = trace_to_json(&spans, 1);
        let (parsed, dropped) = spans_from_json(&json).expect("spans");
        let text = render_timeline(&parsed, dropped);
        assert!(text.contains("2 span(s), 1 dropped"));
        // Both orphans render at depth 0 (no leading indent).
        assert_eq!(text.matches("] node_search").count(), 2, "{text}");
    }

    #[test]
    fn collapsed_stacks_sum_self_time() {
        let json = trace_to_json(&sample_spans(), 0);
        let (parsed, _) = spans_from_json(&json).expect("spans");
        let collapsed = collapse_stacks(&parsed);
        // Root self time: 1.0s minus 0.3s + 0.5s of children = 0.2s.
        assert!(collapsed.contains("parent_search 200000"), "{collapsed}");
        // The two node_search spans share one collapsed line: 300ms + 500ms.
        assert!(
            collapsed.contains("parent_search;node_search 800000"),
            "{collapsed}"
        );
    }
}
