//! The recording surface the pipeline is instrumented against.
//!
//! Design (see DESIGN.md): a [`Recorder`] is either *enabled* (backed by a
//! mutex-guarded store) or *disabled* (the shared [`Recorder::disabled`]
//! static). Instrumented code takes `&Recorder` and calls it
//! unconditionally; every entry point checks the `enabled` flag first, so
//! the disabled path is a branch on an immutable bool — no locking, no
//! allocation, no timer reads. That keeps the default (observability off)
//! within noise of uninstrumented code, which the perf acceptance bar
//! (< 2% regression) requires.
//!
//! Aggregation happens at *phase boundaries*: hot loops accumulate plain
//! integers in their own structs (`SearchStats`, `CountsWorkspace`
//! counters, `PoolStats`) and the pipeline ingests those aggregates into
//! the recorder once per phase. The recorder is never touched per
//! combination or per row.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    /// Completed phases in the order they finished, with wall seconds.
    phases: Vec<(&'static str, f64)>,
    /// Monotonic counters.
    counters: BTreeMap<&'static str, u64>,
    /// Scalar observations (e.g. the 2-means threshold τ).
    values: BTreeMap<&'static str, f64>,
    /// Named histograms as raw bucket counts (index = bucket).
    histograms: BTreeMap<&'static str, Vec<u64>>,
    /// Per-worker chunk claims, keyed by the parallel region's name.
    worker_chunks: BTreeMap<&'static str, Vec<u64>>,
}

/// Collects phase timings, counters, values, and histograms for one run.
///
/// Cheap to share by reference; `Sync`, so parallel regions may record
/// into it (though the instrumented pipeline only does so at phase
/// boundaries). Construct with [`Recorder::new`] to record, or use the
/// [`Recorder::disabled`] static for the free no-op.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    inner: Mutex<Inner>,
}

/// The process-wide no-op recorder.
static DISABLED: Recorder = Recorder {
    enabled: false,
    inner: Mutex::new(Inner {
        phases: Vec::new(),
        counters: BTreeMap::new(),
        values: BTreeMap::new(),
        histograms: BTreeMap::new(),
        worker_chunks: BTreeMap::new(),
    }),
};

impl Recorder {
    /// A recorder that actually records.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The shared no-op recorder: every call on it is a branch on a
    /// constant `false` and returns immediately.
    pub fn disabled() -> &'static Recorder {
        &DISABLED
    }

    /// Whether this recorder stores anything. Instrumented code uses this
    /// to skip work done *only* to feed the recorder (e.g. O(n²) scans
    /// that summarize a matrix).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a named phase; the returned guard records the elapsed wall
    /// time when dropped. No-op (no timer read) when disabled.
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            recorder: self,
            name,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Records a scalar observation (last write wins).
    pub fn value(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.values.insert(name, value);
    }

    /// Adds one observation to a histogram bucket, growing the bucket
    /// vector as needed.
    pub fn histogram(&self, name: &'static str, bucket: usize) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let buckets = inner.histograms.entry(name).or_default();
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }

    /// Records per-worker chunk claims for a named parallel region
    /// (last write wins). Worker order is scheduler-dependent, so this
    /// lands in the report's `runtime` section, not the deterministic one.
    pub fn worker_chunks(&self, region: &'static str, chunks: &[u64]) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.worker_chunks.insert(region, chunks.to_vec());
    }

    /// Reads out a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("recorder poisoned");
        Snapshot {
            phases: inner.phases.clone(),
            counters: inner.counters.clone(),
            values: inner.values.clone(),
            histograms: inner.histograms.clone(),
            worker_chunks: inner.worker_chunks.clone(),
        }
    }

    fn finish_phase(&self, name: &'static str, seconds: f64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.phases.push((name, seconds));
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

/// RAII guard for one phase; records the elapsed time on drop.
#[must_use = "dropping the guard immediately times nothing"]
pub struct PhaseGuard<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .finish_phase(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// An owned copy of a recorder's contents, used to assemble reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(phase name, wall seconds)` in completion order.
    pub phases: Vec<(&'static str, f64)>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Scalar observations, sorted by name.
    pub values: BTreeMap<&'static str, f64>,
    /// Histogram bucket counts, sorted by name.
    pub histograms: BTreeMap<&'static str, Vec<u64>>,
    /// Per-worker chunk claims per parallel region, sorted by name.
    pub worker_chunks: BTreeMap<&'static str, Vec<u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = rec.phase("load");
        }
        rec.add("pairs", 7);
        rec.value("tau", 0.5);
        rec.histogram("sizes", 3);
        rec.worker_chunks("search", &[1, 2]);
        let snap = rec.snapshot();
        assert_eq!(snap, Snapshot::default());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let rec = Recorder::new();
        assert!(rec.is_enabled());
        {
            let _g = rec.phase("load");
        }
        rec.add("pairs", 3);
        rec.add("pairs", 4);
        rec.value("tau", 0.25);
        rec.value("tau", 0.5);
        rec.histogram("sizes", 0);
        rec.histogram("sizes", 2);
        rec.histogram("sizes", 2);
        rec.worker_chunks("search", &[5, 6]);
        let snap = rec.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].0, "load");
        assert!(snap.phases[0].1 >= 0.0);
        assert_eq!(snap.counters["pairs"], 7);
        assert_eq!(snap.values["tau"], 0.5);
        assert_eq!(snap.histograms["sizes"], vec![1, 0, 2]);
        assert_eq!(snap.worker_chunks["search"], vec![5, 6]);
    }

    #[test]
    fn phases_record_in_completion_order() {
        let rec = Recorder::new();
        {
            let _outer = rec.phase("outer");
            let _inner = rec.phase("inner");
        }
        let snap = rec.snapshot();
        let names: Vec<_> = snap.phases.iter().map(|(n, _)| *n).collect();
        // Inner guard drops first.
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn recorder_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Recorder>();
    }
}
