//! The recording surface the pipeline is instrumented against.
//!
//! Design (see DESIGN.md): a [`Recorder`] is either *enabled* (backed by a
//! mutex-guarded store) or *disabled* (the shared [`Recorder::disabled`]
//! static). Instrumented code takes `&Recorder` and calls it
//! unconditionally; every entry point checks the `enabled` flag first, so
//! the disabled path is a branch on an immutable bool — no locking, no
//! allocation, no timer reads. That keeps the default (observability off)
//! within noise of uninstrumented code, which the perf acceptance bar
//! (< 2% regression) requires.
//!
//! Aggregation happens at *phase boundaries*: hot loops accumulate plain
//! integers in their own structs (`SearchStats`, `CountsWorkspace`
//! counters, `PoolStats`) and the pipeline ingests those aggregates into
//! the recorder once per phase. The recorder is never touched per
//! combination or per row.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::trace::{SpanId, SpanRecord, SPAN_BUFFER_CAP};

#[derive(Debug, Default)]
struct Inner {
    /// Completed phases in the order they finished, with wall seconds.
    phases: Vec<(&'static str, f64)>,
    /// Monotonic counters.
    counters: BTreeMap<&'static str, u64>,
    /// Scalar observations (e.g. the 2-means threshold τ).
    values: BTreeMap<&'static str, f64>,
    /// Named histograms as raw bucket counts (index = bucket).
    histograms: BTreeMap<&'static str, Vec<u64>>,
    /// Log₂-scaled duration histograms with real second boundaries.
    durations: BTreeMap<&'static str, DurationHistogram>,
    /// Per-worker chunk claims, keyed by the parallel region's name.
    worker_chunks: BTreeMap<&'static str, Vec<u64>>,
    /// Completed spans, oldest first; bounded at [`SPAN_BUFFER_CAP`].
    spans: VecDeque<SpanRecord>,
    /// Spans evicted from the ring once it filled.
    spans_dropped: u64,
}

/// Collects phase timings, counters, values, and histograms for one run.
///
/// Cheap to share by reference; `Sync`, so parallel regions may record
/// into it (though the instrumented pipeline only does so at phase
/// boundaries). Construct with [`Recorder::new`] to record, or use the
/// [`Recorder::disabled`] static for the free no-op.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    inner: Mutex<Inner>,
    /// Epoch for span offsets, set by the first span or phase.
    epoch: OnceLock<Instant>,
    /// Lock-free span id allocator (ids start at 1).
    next_span_id: AtomicU64,
}

/// The process-wide no-op recorder.
static DISABLED: Recorder = Recorder {
    enabled: false,
    inner: Mutex::new(Inner {
        phases: Vec::new(),
        counters: BTreeMap::new(),
        values: BTreeMap::new(),
        histograms: BTreeMap::new(),
        durations: BTreeMap::new(),
        worker_chunks: BTreeMap::new(),
        spans: VecDeque::new(),
        spans_dropped: 0,
    }),
    epoch: OnceLock::new(),
    next_span_id: AtomicU64::new(1),
};

impl Recorder {
    /// A recorder that actually records.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            inner: Mutex::new(Inner::default()),
            epoch: OnceLock::new(),
            next_span_id: AtomicU64::new(1),
        }
    }

    /// The shared no-op recorder: every call on it is a branch on a
    /// constant `false` and returns immediately.
    pub fn disabled() -> &'static Recorder {
        &DISABLED
    }

    /// Whether this recorder stores anything. Instrumented code uses this
    /// to skip work done *only* to feed the recorder (e.g. O(n²) scans
    /// that summarize a matrix).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds elapsed since this recorder's epoch (the first span or
    /// phase), initializing the epoch on first use.
    fn offset_now(&self) -> f64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_secs_f64()
    }

    /// Starts a named phase; the returned guard records the elapsed wall
    /// time when dropped, and also records a *root span* of the same name
    /// into the trace ring buffer. No-op (no timer read) when disabled.
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        let start = if self.enabled {
            let start_s = self.offset_now();
            Some((
                Instant::now(),
                start_s,
                self.next_span_id.fetch_add(1, Ordering::Relaxed),
            ))
        } else {
            None
        };
        PhaseGuard {
            recorder: self,
            name,
            start,
        }
    }

    /// Starts a root span. The guard records the completed span into the
    /// bounded ring buffer when dropped; attach attributes with
    /// [`SpanGuard::attr`]. Free (one branch) when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with_parent(name, None)
    }

    /// Starts a span nested under `parent` (a span or phase id obtained
    /// from [`SpanGuard::id`] / [`PhaseGuard::span_id`]). Passing `None`
    /// makes a root span.
    pub fn span_with_parent(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard<'_> {
        let start = if self.enabled {
            Some((
                self.offset_now(),
                self.next_span_id.fetch_add(1, Ordering::Relaxed),
            ))
        } else {
            None
        };
        SpanGuard {
            recorder: self,
            name,
            parent,
            start,
            attrs: Vec::new(),
        }
    }

    /// Pushes a completed span into the ring, evicting the oldest span
    /// once the buffer is full.
    fn finish_span(&self, span: SpanRecord) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if inner.spans.len() >= SPAN_BUFFER_CAP {
            inner.spans.pop_front();
            inner.spans_dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Records a scalar observation (last write wins).
    pub fn value(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.values.insert(name, value);
    }

    /// Adds one observation to a histogram bucket, growing the bucket
    /// vector as needed.
    pub fn histogram(&self, name: &'static str, bucket: usize) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let buckets = inner.histograms.entry(name).or_default();
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }

    /// Records one observation into a named log₂-scaled duration
    /// histogram (real second boundaries; see
    /// [`duration_bucket_bounds`]).
    pub fn duration(&self, name: &'static str, seconds: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.durations.entry(name).or_default().record(seconds);
    }

    /// Records per-worker chunk claims for a named parallel region
    /// (last write wins). Worker order is scheduler-dependent, so this
    /// lands in the report's `runtime` section, not the deterministic one.
    pub fn worker_chunks(&self, region: &'static str, chunks: &[u64]) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.worker_chunks.insert(region, chunks.to_vec());
    }

    /// Reads out a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("recorder poisoned");
        Snapshot {
            phases: inner.phases.clone(),
            counters: inner.counters.clone(),
            values: inner.values.clone(),
            histograms: inner.histograms.clone(),
            durations: inner.durations.clone(),
            worker_chunks: inner.worker_chunks.clone(),
            spans: inner.spans.iter().cloned().collect(),
            spans_dropped: inner.spans_dropped,
        }
    }

    fn finish_phase(&self, name: &'static str, seconds: f64, span: SpanRecord) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.phases.push((name, seconds));
        if inner.spans.len() >= SPAN_BUFFER_CAP {
            inner.spans.pop_front();
            inner.spans_dropped += 1;
        }
        inner.spans.push_back(span);
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

/// RAII guard for one phase; on drop it records the elapsed time *and* a
/// root span of the same name.
#[must_use = "dropping the guard immediately times nothing"]
pub struct PhaseGuard<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    /// `(timer, start offset, span id)` when recording.
    start: Option<(Instant, f64, SpanId)>,
}

impl PhaseGuard<'_> {
    /// The id of the root span this phase will record, for nesting child
    /// spans under it. `None` when the recorder is disabled.
    pub fn span_id(&self) -> Option<SpanId> {
        self.start.map(|(_, _, id)| id)
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((start, start_s, id)) = self.start {
            let seconds = start.elapsed().as_secs_f64();
            self.recorder.finish_phase(
                self.name,
                seconds,
                SpanRecord {
                    id,
                    parent: None,
                    name: self.name,
                    start_s,
                    end_s: start_s + seconds,
                    thread: current_thread_label(),
                    attrs: Vec::new(),
                },
            );
        }
    }
}

/// RAII guard for one span; records the completed [`SpanRecord`] into the
/// ring buffer on drop.
#[must_use = "dropping the guard immediately records an empty span"]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    parent: Option<SpanId>,
    /// `(start offset, span id)` when recording.
    start: Option<(f64, SpanId)>,
    attrs: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// This span's id, for nesting children under it. `None` when the
    /// recorder is disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.start.map(|(_, id)| id)
    }

    /// Attaches a static-keyed integer attribute (written with the span
    /// when the guard drops; last write wins per key). No-op when
    /// disabled.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.start.is_none() {
            return;
        }
        match self.attrs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.attrs.push((key, value)),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((start_s, id)) = self.start {
            self.recorder.finish_span(SpanRecord {
                id,
                parent: self.parent,
                name: self.name,
                start_s,
                end_s: self.recorder.offset_now(),
                thread: current_thread_label(),
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

/// The current thread's name, or its `ThreadId` debug form for unnamed
/// threads (e.g. scoped pool workers).
fn current_thread_label() -> String {
    let thread = std::thread::current();
    match thread.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", thread.id()),
    }
}

/// Linear sub-buckets per octave in a [`DurationHistogram`]. Four
/// sub-buckets bound the quantile overestimate at 25% (the original
/// one-bucket-per-octave scheme was a 2× overestimate, which collapsed
/// p50/p95/p99 of sub-millisecond requests onto one boundary).
pub const DURATION_SUB_BUCKETS: usize = 4;

/// Number of real-second boundaries in a [`DurationHistogram`]:
/// `2^-20 s` (≈1 µs) through `2^5 s` (32 s), each octave split into
/// [`DURATION_SUB_BUCKETS`] linear sub-buckets (HDR-histogram style).
pub const DURATION_BUCKETS: usize = 1 + 25 * DURATION_SUB_BUCKETS;

/// The real second boundaries of a [`DurationHistogram`]: the base bound
/// `2^-20` s followed, per octave `[2^e, 2^(e+1))`, by the linear
/// subdivisions `2^e · (1 + j/4)` for `j = 1..=4`. Every boundary is a
/// dyadic rational, so it is exactly representable in an `f64` and the
/// rendered `le` labels round-trip exactly.
pub fn duration_bucket_bounds() -> [f64; DURATION_BUCKETS] {
    let mut bounds = [0.0; DURATION_BUCKETS];
    bounds[0] = 2.0f64.powi(-20);
    let mut i = 1;
    for e in -20..5 {
        let octave = 2.0f64.powi(e);
        for j in 1..=DURATION_SUB_BUCKETS {
            bounds[i] = octave * (1.0 + j as f64 / DURATION_SUB_BUCKETS as f64);
            i += 1;
        }
    }
    bounds
}

/// A log₂-octave duration histogram with linear sub-buckets and real
/// second boundaries — the latency-shaped sibling of the recorder's
/// index-bucket histograms (whose bucket index *is* the observed
/// value). Observations above the last boundary land only in
/// `overflow`/`count` (the `+Inf` bucket).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurationHistogram {
    /// Per-boundary counts, aligned with [`duration_bucket_bounds`]
    /// (empty until the first observation).
    pub buckets: Vec<u64>,
    /// Observations above the last boundary.
    pub overflow: u64,
    /// Sum of all observed durations, in seconds.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl DurationHistogram {
    /// Records one duration. Negative and non-finite observations clamp
    /// to zero (they can only arise from clock anomalies).
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        if self.buckets.is_empty() {
            self.buckets = vec![0; DURATION_BUCKETS];
        }
        self.sum += s;
        self.count += 1;
        // Bounds are sorted, so the target bucket is a binary search —
        // cheap enough for a load generator recording every request.
        let bounds = duration_bucket_bounds();
        let i = bounds.partition_point(|&b| b < s);
        if i < bounds.len() {
            self.buckets[i] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Folds another histogram's counts into this one — how per-worker
    /// latency histograms aggregate into one report.
    pub fn merge(&mut self, other: &DurationHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; DURATION_BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The `q`-quantile (0 < q <= 1) as the upper boundary of the bucket
    /// where the cumulative count crosses `q × count` — a ≤25%
    /// overestimate by construction — `+Inf` for observations beyond the
    /// last boundary, `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let bounds = duration_bucket_bounds();
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bounds[i];
            }
        }
        f64::INFINITY
    }
}

/// An owned copy of a recorder's contents, used to assemble reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(phase name, wall seconds)` in completion order.
    pub phases: Vec<(&'static str, f64)>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Scalar observations, sorted by name.
    pub values: BTreeMap<&'static str, f64>,
    /// Histogram bucket counts, sorted by name.
    pub histograms: BTreeMap<&'static str, Vec<u64>>,
    /// Duration histograms, sorted by name.
    pub durations: BTreeMap<&'static str, DurationHistogram>,
    /// Per-worker chunk claims per parallel region, sorted by name.
    pub worker_chunks: BTreeMap<&'static str, Vec<u64>>,
    /// Completed spans in completion order (ring-bounded).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted once the ring filled.
    pub spans_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = rec.phase("load");
        }
        rec.add("pairs", 7);
        rec.value("tau", 0.5);
        rec.histogram("sizes", 3);
        rec.worker_chunks("search", &[1, 2]);
        let snap = rec.snapshot();
        assert_eq!(snap, Snapshot::default());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let rec = Recorder::new();
        assert!(rec.is_enabled());
        {
            let _g = rec.phase("load");
        }
        rec.add("pairs", 3);
        rec.add("pairs", 4);
        rec.value("tau", 0.25);
        rec.value("tau", 0.5);
        rec.histogram("sizes", 0);
        rec.histogram("sizes", 2);
        rec.histogram("sizes", 2);
        rec.worker_chunks("search", &[5, 6]);
        let snap = rec.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].0, "load");
        assert!(snap.phases[0].1 >= 0.0);
        assert_eq!(snap.counters["pairs"], 7);
        assert_eq!(snap.values["tau"], 0.5);
        assert_eq!(snap.histograms["sizes"], vec![1, 0, 2]);
        assert_eq!(snap.worker_chunks["search"], vec![5, 6]);
    }

    #[test]
    fn phases_record_in_completion_order() {
        let rec = Recorder::new();
        {
            let _outer = rec.phase("outer");
            let _inner = rec.phase("inner");
        }
        let snap = rec.snapshot();
        let names: Vec<_> = snap.phases.iter().map(|(n, _)| *n).collect();
        // Inner guard drops first.
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn recorder_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Recorder>();
    }

    #[test]
    fn phases_record_root_spans() {
        let rec = Recorder::new();
        {
            let _g = rec.phase("load");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let span = &snap.spans[0];
        assert_eq!(span.name, "load");
        assert_eq!(span.parent, None);
        assert!(span.end_s >= span.start_s);
        assert!(!span.thread.is_empty());
        assert_eq!(snap.spans_dropped, 0);
        // The phase timing and the span must agree on duration.
        let phase_s = snap.phases[0].1;
        assert!((span.end_s - span.start_s - phase_s).abs() < 1e-3);
    }

    #[test]
    fn spans_nest_with_ids_and_attrs() {
        let rec = Recorder::new();
        let phase = rec.phase("parent_search");
        let parent_id = phase.span_id().expect("enabled phase has a span id");
        {
            let mut child = rec.span_with_parent("node_search", Some(parent_id));
            assert!(child.id().is_some());
            child.attr("node", 7);
            child.attr("candidates", 3);
            child.attr("node", 8); // last write wins
        }
        drop(phase);
        let snap = rec.snapshot();
        // Child completes (and records) before the phase guard drops.
        assert_eq!(snap.spans.len(), 2);
        let child = &snap.spans[0];
        assert_eq!(child.name, "node_search");
        assert_eq!(child.parent, Some(parent_id));
        assert_eq!(child.attrs, vec![("node", 8), ("candidates", 3)]);
        let root = &snap.spans[1];
        assert_eq!(root.name, "parent_search");
        assert_eq!(root.id, parent_id);
        // Monotonic offsets from one epoch.
        assert!(child.start_s >= root.start_s);
        assert!(root.end_s >= child.end_s);
    }

    #[test]
    fn span_ring_buffer_is_bounded() {
        let rec = Recorder::new();
        for _ in 0..(SPAN_BUFFER_CAP + 10) {
            let _s = rec.span("tick");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), SPAN_BUFFER_CAP);
        assert_eq!(snap.spans_dropped, 10);
        // The survivors are the newest spans.
        assert!(snap.spans[0].id > snap.spans.last().unwrap().id - SPAN_BUFFER_CAP as u64);
    }

    #[test]
    fn disabled_recorder_skips_spans_and_durations() {
        let rec = Recorder::disabled();
        {
            let phase = rec.phase("p");
            assert_eq!(phase.span_id(), None);
            let mut span = rec.span("s");
            assert_eq!(span.id(), None);
            span.attr("k", 1);
        }
        rec.duration("lat", 0.5);
        assert_eq!(rec.snapshot(), Snapshot::default());
    }

    #[test]
    fn duration_histogram_buckets_and_quantiles() {
        let mut h = DurationHistogram::default();
        assert!(h.quantile(0.5).is_nan());
        for _ in 0..90 {
            h.record(0.001); // ≤ 1.25 · 2^-10 s = 0.001220703125
        }
        for _ in 0..10 {
            h.record(1.5); // exactly the 1.5 s sub-boundary
        }
        h.record(1e9); // beyond the last bound → overflow
        assert_eq!(h.count, 101);
        assert!((h.sum - (90.0 * 0.001 + 15.0 + 1e9)).abs() < 1e-6);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.quantile(0.5), 0.001220703125);
        assert_eq!(h.quantile(0.95), 1.5);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
        // Recorder integration.
        let rec = Recorder::new();
        rec.duration("lat", 0.001);
        rec.duration("lat", 0.002);
        let snap = rec.snapshot();
        assert_eq!(snap.durations["lat"].count, 2);
    }

    #[test]
    fn duration_bounds_are_monotone() {
        let bounds = duration_bucket_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds[0], 2.0f64.powi(-20));
        assert_eq!(bounds[DURATION_BUCKETS - 1], 32.0);
    }

    /// Pins the sub-octave boundary values: every power of two from the
    /// old scheme is still a boundary (existing `le` labels survive),
    /// and the linear subdivisions land exactly where documented — so
    /// microsecond-scale quantiles are distinguishable.
    #[test]
    fn duration_bounds_pin_suboctave_boundaries() {
        let bounds = duration_bucket_bounds();
        assert_eq!(bounds.len(), DURATION_BUCKETS);
        for e in -20..=5 {
            let p = 2.0f64.powi(e);
            assert!(bounds.contains(&p), "2^{e} missing from bounds");
        }
        // One full octave, exactly: [2^-10, 2^-9] in 4 linear steps.
        let start = bounds
            .iter()
            .position(|&b| b == 0.0009765625)
            .expect("2^-10");
        assert_eq!(
            &bounds[start..start + 5],
            &[
                0.0009765625,
                0.001220703125,
                0.00146484375,
                0.001708984375,
                0.001953125,
            ]
        );
        // Sub-millisecond observations that the old one-bucket-per-octave
        // scheme collapsed now resolve to distinct quantiles.
        let mut h = DurationHistogram::default();
        for _ in 0..90 {
            h.record(250e-6);
        }
        for _ in 0..10 {
            h.record(450e-6);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99, "p50 {p50} should be below p99 {p99}");
        assert!((p50 - 0.00030517578125).abs() < 1e-18, "{p50}");
        assert!((p99 - 0.00048828125).abs() < 1e-18, "{p99}");
    }
}
