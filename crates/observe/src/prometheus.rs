//! Prometheus-style plain-text exposition of a recorder [`Snapshot`].
//!
//! One formatter shared by the `diffnet-serve` `/v1/metrics` endpoint and
//! any future scraping tooling. The output follows the Prometheus text
//! exposition format (version 0.0.4): every metric family is preceded by
//! `# HELP` (from the metric-description registry below) and `# TYPE`
//! lines, names are namespaced and sanitized to `[a-zA-Z_][a-zA-Z0-9_]*`,
//! and label values are escaped.
//!
//! The mapping from recorder primitives:
//!
//! | recorder datum  | exposition                                          |
//! |-----------------|-----------------------------------------------------|
//! | counter         | `ns_<name> <value>` (`counter`)                     |
//! | value           | `ns_<name> <value>` (`gauge`)                       |
//! | phase timings   | `ns_phase_seconds{phase="<p>"} <sum>` (`gauge`)     |
//! | histogram       | cumulative `ns_<name>_bucket{le="…"}` + `_sum`/`_count` (`histogram`) |
//! | duration histogram | same, with *real second* log₂ `le` boundaries, plus `ns_<name>_p50/_p95/_p99` gauges |
//! | worker chunks   | `ns_worker_chunks{region="<r>",worker="<i>"}` (`gauge`) |
//!
//! Recorder histograms store raw per-bucket counts where the bucket index
//! *is* the observed value, so the rendered `le` boundaries are the
//! integer indices and `_sum` is exact, not approximated. Duration
//! histograms instead bucket real seconds at powers of two (exactly
//! representable, so the labels round-trip), and their quantile gauges
//! report the upper boundary of the bucket the quantile falls in.
//!
//! Everything is emitted in deterministic order (counters/values/
//! histograms sorted by name, phases in completion order), so the output
//! is stable enough for golden tests. [`lint_exposition`] re-checks an
//! exposition for the failure modes scrapers choke on (duplicate
//! `TYPE`/`HELP`, non-monotone `le` buckets, `_count`/`_sum` drift) and
//! backs the `diffnet metrics-lint` CI command.

use crate::recorder::{duration_bucket_bounds, Snapshot};
use std::fmt::Write as _;

/// Sanitizes a metric-name fragment: every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and a leading digit gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes `# HELP` text per the exposition format: backslash and
/// newline only (quotes are legal in help text).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float the way Prometheus expects: finite shortest-round-trip
/// decimal (Rust's `Display` never emits exponents for the magnitudes the
/// recorder produces), with non-finite values spelled `NaN`/`+Inf`/`-Inf`.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// The metric-description registry: known recorder names and their
/// `# HELP` text. Names not listed here fall back to a kind-derived
/// description, so every family still gets a `HELP` line.
const METRIC_HELP: &[(&str, &str)] = &[
    (
        "accept_faults",
        "Connections dropped by the injected accept fault.",
    ),
    (
        "bound_rejections",
        "Candidate combinations rejected by the Theorem-2 bound.",
    ),
    (
        "candidate_set_size",
        "Surviving candidate parents per node after pruning.",
    ),
    (
        "combinations_scored",
        "Parent-set combinations scored during the search.",
    ),
    (
        "correlation_pairs",
        "Node pairs whose correlation was computed.",
    ),
    (
        "correlation_tiles",
        "Cache tiles processed by the correlation kernel.",
    ),
    (
        "edges_emitted",
        "Directed edges written to the inferred topology.",
    ),
    (
        "greedy_rounds",
        "Greedy refinement rounds across all node searches.",
    ),
    (
        "http_connections_closed",
        "Connections closed by the reactor (any reason).",
    ),
    (
        "http_connections_open",
        "Connections currently registered with the reactor.",
    ),
    (
        "http_connections_opened",
        "Connections accepted and registered with the reactor.",
    ),
    (
        "http_error_responses",
        "HTTP responses with a 4xx or 5xx status.",
    ),
    (
        "http_idle_timeouts",
        "Idle keep-alive connections reaped by the reactor.",
    ),
    (
        "http_keepalive_reuses",
        "Requests served on an already-used keep-alive connection.",
    ),
    (
        "http_protocol_errors",
        "Requests rejected while parsing the HTTP head or body.",
    ),
    (
        "http_read_timeouts",
        "Connections answered 408 for not completing a request in time.",
    ),
    (
        "http_rejected_busy",
        "Requests answered 503 because the request-worker queue was full.",
    ),
    (
        "http_rejected_capacity",
        "Connections answered 503 at the open-connection cap.",
    ),
    ("http_requests", "HTTP requests accepted by the daemon."),
    (
        "http_slow_requests",
        "Requests slower than the configured slow-request threshold.",
    ),
    (
        "http_throttled_429",
        "Requests answered 429 for exceeding the per-connection in-flight budget.",
    ),
    ("jobs_completed", "Jobs that finished with a full result."),
    ("jobs_failed", "Jobs that finished with an error."),
    (
        "jobs_interrupted",
        "Jobs interrupted by shutdown and left resumable.",
    ),
    (
        "jobs_partial",
        "Jobs that finished with a degraded (partial) result.",
    ),
    (
        "jobs_rejected_queue_full",
        "Job submissions answered 503 at the queued-jobs cap.",
    ),
    (
        "pairs_above_tau",
        "Correlation pairs above the selected threshold.",
    ),
    (
        "phase_seconds",
        "Wall seconds summed per completed pipeline phase.",
    ),
    (
        "reactor_wakeups",
        "Times the epoll loop woke up (readiness, doorbell, or timeout).",
    ),
    (
        "process_peak_rss_bytes",
        "Peak resident-set size observed by the resource profiler.",
    ),
    ("process_rss_bytes", "Most recent resident-set size sample."),
    (
        "process_system_cpu_seconds",
        "Kernel-mode CPU seconds consumed by the process.",
    ),
    (
        "process_user_cpu_seconds",
        "User-mode CPU seconds consumed by the process.",
    ),
    (
        "score_cache_hits",
        "Parent-set score lookups served from the cache.",
    ),
    (
        "score_cache_misses",
        "Parent-set score lookups that had to be computed.",
    ),
    ("tau", "Correlation threshold selected by pinned 2-means."),
    (
        "tau_unscaled",
        "The 2-means threshold before --threshold-scale.",
    ),
    (
        "worker_chunks",
        "Chunk claims per worker per parallel region.",
    ),
    ("workspace_rebases", "Counting-workspace rebase operations."),
    (
        "workspace_refinements",
        "Counting-workspace incremental refinements.",
    ),
];

/// The `# HELP` text for a recorder metric name: the registry entry when
/// known, otherwise a description derived from the name and kind.
fn help_text(name: &str, kind: &str) -> String {
    if let Some(&(_, text)) = METRIC_HELP.iter().find(|&&(n, _)| n == name) {
        return text.to_string();
    }
    for (suffix, q) in [("_p50", "0.5"), ("_p95", "0.95"), ("_p99", "0.99")] {
        if let Some(base) = name.strip_suffix(suffix) {
            return format!("The {q} quantile of {base} in seconds.");
        }
    }
    if let Some(endpoint) = name.strip_prefix("http_request_seconds_") {
        return format!("Request latency in seconds for the {endpoint} endpoint (log2 buckets).");
    }
    format!("diffnet {kind} {name}.")
}

/// Writes the `# HELP` + `# TYPE` preamble for one metric family.
fn family_preamble(out: &mut String, metric: &str, raw_name: &str, kind: &str) {
    let _ = writeln!(
        out,
        "# HELP {metric} {}",
        escape_help(&help_text(raw_name, kind))
    );
    let _ = writeln!(out, "# TYPE {metric} {kind}");
}

/// Renders `snap` in the Prometheus plain-text exposition format, with
/// every metric name prefixed by `namespace` + `_`.
///
/// ```
/// use diffnet_observe::{render_prometheus, Recorder};
///
/// let rec = Recorder::new();
/// rec.add("jobs_completed", 3);
/// let text = render_prometheus(&rec.snapshot(), "diffnet");
/// assert!(text.contains("# HELP diffnet_jobs_completed Jobs that finished with a full result."));
/// assert!(text.contains("# TYPE diffnet_jobs_completed counter"));
/// assert!(text.contains("diffnet_jobs_completed 3"));
/// ```
pub fn render_prometheus(snap: &Snapshot, namespace: &str) -> String {
    let ns = sanitize(namespace);
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let metric = format!("{ns}_{}", sanitize(name));
        family_preamble(&mut out, &metric, name, "counter");
        let _ = writeln!(out, "{metric} {value}");
    }

    for (name, value) in &snap.values {
        let metric = format!("{ns}_{}", sanitize(name));
        family_preamble(&mut out, &metric, name, "gauge");
        let _ = writeln!(out, "{metric} {}", format_value(*value));
    }

    if !snap.phases.is_empty() {
        let metric = format!("{ns}_phase_seconds");
        family_preamble(&mut out, &metric, "phase_seconds", "gauge");
        // A phase may complete more than once (e.g. a re-estimated job);
        // sum the wall time per name, preserving first-completion order.
        let mut order: Vec<&str> = Vec::new();
        let mut sums: Vec<f64> = Vec::new();
        for &(name, seconds) in &snap.phases {
            match order.iter().position(|&n| n == name) {
                Some(i) => sums[i] += seconds,
                None => {
                    order.push(name);
                    sums.push(seconds);
                }
            }
        }
        for (name, sum) in order.iter().zip(&sums) {
            let _ = writeln!(
                out,
                "{metric}{{phase=\"{}\"}} {}",
                escape_label(name),
                format_value(*sum)
            );
        }
    }

    for (name, buckets) in &snap.histograms {
        let metric = format!("{ns}_{}", sanitize(name));
        family_preamble(&mut out, &metric, name, "histogram");
        let mut cumulative = 0u64;
        let mut sum = 0u64;
        for (index, &count) in buckets.iter().enumerate() {
            cumulative += count;
            sum += index as u64 * count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{index}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{metric}_sum {sum}");
        let _ = writeln!(out, "{metric}_count {cumulative}");
    }

    let bounds = duration_bucket_bounds();
    for (name, hist) in &snap.durations {
        let metric = format!("{ns}_{}", sanitize(name));
        family_preamble(&mut out, &metric, name, "histogram");
        let mut cumulative = 0u64;
        for (i, &bound) in bounds.iter().enumerate() {
            cumulative += hist.buckets.get(i).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                format_value(bound)
            );
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{metric}_sum {}", format_value(hist.sum));
        let _ = writeln!(out, "{metric}_count {}", hist.count);
        for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            let gauge = format!("{metric}_{suffix}");
            let raw = format!("{name}_{suffix}");
            family_preamble(&mut out, &gauge, &raw, "gauge");
            let _ = writeln!(out, "{gauge} {}", format_value(hist.quantile(q)));
        }
    }

    if !snap.worker_chunks.is_empty() {
        let metric = format!("{ns}_worker_chunks");
        family_preamble(&mut out, &metric, "worker_chunks", "gauge");
        for (region, chunks) in &snap.worker_chunks {
            for (worker, &claims) in chunks.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{metric}{{region=\"{}\",worker=\"{worker}\"}} {claims}",
                    escape_label(region)
                );
            }
        }
    }

    out
}

/// Parses a sample value in exposition spelling.
fn parse_sample_value(raw: &str) -> Option<f64> {
    match raw {
        "NaN" => Some(f64::NAN),
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        other => other.parse().ok(),
    }
}

#[derive(Default)]
struct HistogramSamples {
    /// `(le, cumulative count)` in order of appearance.
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Lints a text exposition for the failure modes scrapers reject:
/// duplicate `# TYPE`/`# HELP` lines, samples for undeclared metrics,
/// non-monotone histogram `le` boundaries or cumulative counts, a missing
/// `+Inf` bucket, and `_count`/`_sum` inconsistency. Returns the number
/// of metric families on success.
pub fn lint_exposition(text: &str) -> Result<usize, String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut hists: BTreeMap<String, HistogramSamples> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest
                .split_whitespace()
                .next()
                .ok_or_else(|| format!("line {lineno}: HELP without a metric name"))?;
            if !helps.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE {name} without a kind"))?;
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
        } else if line.starts_with('#') {
            continue; // free-form comment
        } else {
            // A sample: `name value` or `name{labels} value`.
            let (name, labels, value_raw) = match line.find('{') {
                Some(open) => {
                    let close = line
                        .rfind('}')
                        .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                    (
                        &line[..open],
                        &line[open + 1..close],
                        line[close + 1..].trim(),
                    )
                }
                None => {
                    let mut parts = line.split_whitespace();
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: empty sample"))?;
                    let value = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: sample {name} without a value"))?;
                    (name, "", value)
                }
            };
            let value = parse_sample_value(value_raw)
                .ok_or_else(|| format!("line {lineno}: bad sample value {value_raw:?}"))?;
            // Resolve the declaring family: histogram series use the
            // base name + _bucket/_sum/_count.
            let family = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram"))
                    .then_some((base, *suffix))
            });
            match family {
                Some((base, "_bucket")) => {
                    let le_raw = labels
                        .split(',')
                        .find_map(|l| l.trim().strip_prefix("le="))
                        .map(|v| v.trim_matches('"'))
                        .ok_or_else(|| format!("line {lineno}: bucket without an le label"))?;
                    let le = parse_sample_value(le_raw)
                        .ok_or_else(|| format!("line {lineno}: bad le value {le_raw:?}"))?;
                    hists
                        .entry(base.to_string())
                        .or_default()
                        .buckets
                        .push((le, value));
                }
                Some((base, "_sum")) => {
                    hists.entry(base.to_string()).or_default().sum = Some(value);
                }
                Some((base, "_count")) => {
                    hists.entry(base.to_string()).or_default().count = Some(value);
                }
                _ => {
                    if !types.contains_key(name) {
                        return Err(format!(
                            "line {lineno}: sample for undeclared metric {name}"
                        ));
                    }
                }
            }
        }
    }

    for (name, h) in &hists {
        if h.buckets.is_empty() {
            return Err(format!("histogram {name} has no buckets"));
        }
        for pair in h.buckets.windows(2) {
            let ((le_a, n_a), (le_b, n_b)) = (pair[0], pair[1]);
            if le_b <= le_a {
                return Err(format!(
                    "histogram {name}: le boundaries not increasing ({le_a} then {le_b})"
                ));
            }
            if n_b < n_a {
                return Err(format!(
                    "histogram {name}: cumulative counts decrease ({n_a} then {n_b})"
                ));
            }
        }
        let (last_le, last_n) = *h.buckets.last().expect("non-empty");
        if !last_le.is_infinite() {
            return Err(format!("histogram {name} is missing the +Inf bucket"));
        }
        let count = h
            .count
            .ok_or_else(|| format!("histogram {name} is missing _count"))?;
        if h.sum.is_none() {
            return Err(format!("histogram {name} is missing _sum"));
        }
        if count != last_n {
            return Err(format!(
                "histogram {name}: _count {count} != +Inf bucket {last_n}"
            ));
        }
    }

    Ok(types.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn golden_full_exposition() {
        let rec = Recorder::new();
        rec.add("jobs_completed", 3);
        rec.add("http_requests", 17);
        rec.value("tau", 0.25);
        rec.histogram("candidate_set_size", 0);
        rec.histogram("candidate_set_size", 2);
        rec.histogram("candidate_set_size", 2);
        rec.worker_chunks("parent_search", &[5, 2]);
        let mut snap = rec.snapshot();
        // Pin the wall time so the output is byte-exact, and drop the
        // clock-dependent spans the phases recorded.
        snap.phases = vec![("load", 0.5), ("search", 1.25), ("load", 0.25)];
        snap.spans.clear();

        let expected = "\
# HELP diffnet_http_requests HTTP requests accepted by the daemon.
# TYPE diffnet_http_requests counter
diffnet_http_requests 17
# HELP diffnet_jobs_completed Jobs that finished with a full result.
# TYPE diffnet_jobs_completed counter
diffnet_jobs_completed 3
# HELP diffnet_tau Correlation threshold selected by pinned 2-means.
# TYPE diffnet_tau gauge
diffnet_tau 0.25
# HELP diffnet_phase_seconds Wall seconds summed per completed pipeline phase.
# TYPE diffnet_phase_seconds gauge
diffnet_phase_seconds{phase=\"load\"} 0.75
diffnet_phase_seconds{phase=\"search\"} 1.25
# HELP diffnet_candidate_set_size Surviving candidate parents per node after pruning.
# TYPE diffnet_candidate_set_size histogram
diffnet_candidate_set_size_bucket{le=\"0\"} 1
diffnet_candidate_set_size_bucket{le=\"1\"} 1
diffnet_candidate_set_size_bucket{le=\"2\"} 3
diffnet_candidate_set_size_bucket{le=\"+Inf\"} 3
diffnet_candidate_set_size_sum 4
diffnet_candidate_set_size_count 3
# HELP diffnet_worker_chunks Chunk claims per worker per parallel region.
# TYPE diffnet_worker_chunks gauge
diffnet_worker_chunks{region=\"parent_search\",worker=\"0\"} 5
diffnet_worker_chunks{region=\"parent_search\",worker=\"1\"} 2
";
        let rendered = render_prometheus(&snap, "diffnet");
        assert_eq!(rendered, expected);
        lint_exposition(&rendered).expect("golden exposition lints clean");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot::default();
        assert_eq!(render_prometheus(&snap, "diffnet"), "");
        assert_eq!(lint_exposition(""), Ok(0));
    }

    #[test]
    fn duration_histograms_render_real_second_bounds_and_quantiles() {
        let rec = Recorder::new();
        rec.duration("http_request_seconds_healthz", 0.001);
        rec.duration("http_request_seconds_healthz", 0.001);
        rec.duration("http_request_seconds_healthz", 1.5);
        let text = render_prometheus(&rec.snapshot(), "diffnet");
        assert!(
            text.contains("# TYPE diffnet_http_request_seconds_healthz histogram"),
            "{text}"
        );
        assert!(
            text.contains("# HELP diffnet_http_request_seconds_healthz Request latency in seconds for the healthz endpoint (log2 buckets)."),
            "{text}"
        );
        // Real second boundaries: 2^-10 = 0.0009765625 has 0 observations,
        // 2^-9 = 0.001953125 has the two 1ms pings.
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_bucket{le=\"0.0009765625\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_bucket{le=\"0.001953125\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("diffnet_http_request_seconds_healthz_count 3"));
        assert!(text.contains("diffnet_http_request_seconds_healthz_sum 1.502"));
        // Quantile gauges with real second values, at sub-octave
        // resolution: the two 1 ms pings resolve to 1.25 · 2^-10 s.
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_p50 0.001220703125"),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_p99 1.5"),
            "{text}"
        );
        lint_exposition(&text).expect("duration exposition lints clean");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c"), "a_b_c");
        assert_eq!(sanitize("2fast"), "_2fast");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn sanitize_handles_unicode_and_hostile_fragments() {
        // Unicode letters, spaces, and control characters all collapse
        // to `_`, keeping the name in [a-zA-Z_][a-zA-Z0-9_]*.
        assert_eq!(sanitize("café"), "caf_");
        assert_eq!(sanitize("héllo wörld"), "h_llo_w_rld");
        assert_eq!(sanitize("a\nb"), "a_b");
        assert_eq!(sanitize("a\"b\\c"), "a_b_c");
        assert_eq!(sanitize("7seconds"), "_7seconds");
        assert_eq!(sanitize("99_problems"), "_99_problems");
        assert_eq!(sanitize("日本語"), "___");
        // Already-clean names pass through untouched.
        assert_eq!(sanitize("http_request_seconds"), "http_request_seconds");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn escape_label_edge_cases() {
        // Unicode passes through; the three special characters escape.
        assert_eq!(escape_label("café"), "café");
        assert_eq!(escape_label("\\\\"), "\\\\\\\\");
        assert_eq!(escape_label("\"\""), "\\\"\\\"");
        assert_eq!(escape_label("line1\nline2\n"), "line1\\nline2\\n");
        assert_eq!(escape_label(""), "");
        // A serve-supplied hostile label value stays on one sample line
        // with its quote escaped, so it cannot terminate the label set.
        let hostile = escape_label("x\" 1\ninjected_metric 2");
        assert!(!hostile.contains('\n'), "{hostile}");
        assert!(hostile.contains("\\\""), "{hostile}");
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(1.5), "1.5");
        // Non-finite values flow through gauges without corrupting lines.
        let rec = Recorder::new();
        rec.value("weird", f64::NAN);
        let text = render_prometheus(&rec.snapshot(), "diffnet");
        assert!(text.contains("diffnet_weird NaN"), "{text}");
        lint_exposition(&text).expect("NaN gauge lints clean");
    }

    #[test]
    fn help_registry_and_fallbacks() {
        assert_eq!(
            help_text("jobs_completed", "counter"),
            "Jobs that finished with a full result."
        );
        assert!(help_text("http_request_seconds_submit", "histogram").contains("submit"));
        assert!(help_text("http_request_seconds_submit_p95", "gauge").contains("0.95"));
        assert_eq!(
            help_text("something_novel", "counter"),
            "diffnet counter something_novel."
        );
    }

    #[test]
    fn lint_rejects_duplicate_declarations() {
        let dup_type = "# TYPE m counter\nm 1\n# TYPE m counter\n";
        assert!(lint_exposition(dup_type)
            .unwrap_err()
            .contains("duplicate TYPE"));
        let dup_help = "# HELP m a\n# HELP m b\n# TYPE m counter\nm 1\n";
        assert!(lint_exposition(dup_help)
            .unwrap_err()
            .contains("duplicate HELP"));
    }

    #[test]
    fn lint_rejects_undeclared_samples_and_bad_values() {
        assert!(lint_exposition("mystery 1\n")
            .unwrap_err()
            .contains("undeclared"));
        assert!(lint_exposition("# TYPE m gauge\nm abc\n")
            .unwrap_err()
            .contains("bad sample value"));
    }

    #[test]
    fn lint_rejects_broken_histograms() {
        let shuffled = "\
# TYPE h histogram
h_bucket{le=\"2\"} 1
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 2
h_sum 3
h_count 2
";
        assert!(lint_exposition(shuffled)
            .unwrap_err()
            .contains("not increasing"));

        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 3
h_count 5
";
        assert!(lint_exposition(decreasing)
            .unwrap_err()
            .contains("decrease"));

        let wrong_count = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_bucket{le=\"+Inf\"} 2
h_sum 3
h_count 7
";
        assert!(lint_exposition(wrong_count).unwrap_err().contains("_count"));

        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_sum 3
h_count 1
";
        assert!(lint_exposition(no_inf).unwrap_err().contains("+Inf"));

        let no_sum = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 1
h_count 1
";
        assert!(lint_exposition(no_sum).unwrap_err().contains("_sum"));
    }

    #[test]
    fn lint_counts_families_on_clean_input() {
        let rec = Recorder::new();
        rec.add("http_requests", 2);
        rec.value("tau", 0.5);
        rec.histogram("sizes", 1);
        rec.duration("http_request_seconds_healthz", 0.01);
        let text = render_prometheus(&rec.snapshot(), "diffnet");
        // counter + gauge + histogram + duration histogram + 3 quantile gauges
        assert_eq!(lint_exposition(&text), Ok(7));
    }
}
