//! Prometheus-style plain-text exposition of a recorder [`Snapshot`].
//!
//! One formatter shared by the `diffnet-serve` `/v1/metrics` endpoint and
//! any future scraping tooling. The output follows the Prometheus text
//! exposition format (version 0.0.4): every metric family is preceded by a
//! `# TYPE` line, names are namespaced and sanitized to
//! `[a-zA-Z_][a-zA-Z0-9_]*`, and label values are escaped.
//!
//! The mapping from recorder primitives:
//!
//! | recorder datum  | exposition                                          |
//! |-----------------|-----------------------------------------------------|
//! | counter         | `ns_<name> <value>` (`counter`)                     |
//! | value           | `ns_<name> <value>` (`gauge`)                       |
//! | phase timings   | `ns_phase_seconds{phase="<p>"} <sum>` (`gauge`)     |
//! | histogram       | cumulative `ns_<name>_bucket{le="…"}` + `_sum`/`_count` (`histogram`) |
//! | worker chunks   | `ns_worker_chunks{region="<r>",worker="<i>"}` (`gauge`) |
//!
//! Recorder histograms store raw per-bucket counts where the bucket index
//! *is* the observed value, so the rendered `le` boundaries are the
//! integer indices and `_sum` is exact, not approximated.
//!
//! Everything is emitted in deterministic order (counters/values/
//! histograms sorted by name, phases in completion order), so the output
//! is stable enough for golden tests.

use crate::recorder::Snapshot;
use std::fmt::Write as _;

/// Sanitizes a metric-name fragment: every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and a leading digit gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float the way Prometheus expects: finite shortest-round-trip
/// decimal (Rust's `Display` never emits exponents for the magnitudes the
/// recorder produces), with non-finite values spelled `NaN`/`+Inf`/`-Inf`.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `snap` in the Prometheus plain-text exposition format, with
/// every metric name prefixed by `namespace` + `_`.
///
/// ```
/// use diffnet_observe::{render_prometheus, Recorder};
///
/// let rec = Recorder::new();
/// rec.add("jobs_completed", 3);
/// let text = render_prometheus(&rec.snapshot(), "diffnet");
/// assert!(text.contains("# TYPE diffnet_jobs_completed counter"));
/// assert!(text.contains("diffnet_jobs_completed 3"));
/// ```
pub fn render_prometheus(snap: &Snapshot, namespace: &str) -> String {
    let ns = sanitize(namespace);
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }

    for (name, value) in &snap.values {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", format_value(*value));
    }

    if !snap.phases.is_empty() {
        let metric = format!("{ns}_phase_seconds");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        // A phase may complete more than once (e.g. a re-estimated job);
        // sum the wall time per name, preserving first-completion order.
        let mut order: Vec<&str> = Vec::new();
        let mut sums: Vec<f64> = Vec::new();
        for &(name, seconds) in &snap.phases {
            match order.iter().position(|&n| n == name) {
                Some(i) => sums[i] += seconds,
                None => {
                    order.push(name);
                    sums.push(seconds);
                }
            }
        }
        for (name, sum) in order.iter().zip(&sums) {
            let _ = writeln!(
                out,
                "{metric}{{phase=\"{}\"}} {}",
                escape_label(name),
                format_value(*sum)
            );
        }
    }

    for (name, buckets) in &snap.histograms {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        let mut sum = 0u64;
        for (index, &count) in buckets.iter().enumerate() {
            cumulative += count;
            sum += index as u64 * count;
            let _ = writeln!(out, "{metric}_bucket{{le=\"{index}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{metric}_sum {sum}");
        let _ = writeln!(out, "{metric}_count {cumulative}");
    }

    if !snap.worker_chunks.is_empty() {
        let metric = format!("{ns}_worker_chunks");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (region, chunks) in &snap.worker_chunks {
            for (worker, &claims) in chunks.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{metric}{{region=\"{}\",worker=\"{worker}\"}} {claims}",
                    escape_label(region)
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn golden_full_exposition() {
        let rec = Recorder::new();
        rec.add("jobs_completed", 3);
        rec.add("http_requests", 17);
        rec.value("tau", 0.25);
        rec.histogram("candidate_set_size", 0);
        rec.histogram("candidate_set_size", 2);
        rec.histogram("candidate_set_size", 2);
        rec.worker_chunks("parent_search", &[5, 2]);
        let mut snap = rec.snapshot();
        // Pin the wall time so the output is byte-exact.
        snap.phases = vec![("load", 0.5), ("search", 1.25), ("load", 0.25)];

        let expected = "\
# TYPE diffnet_http_requests counter
diffnet_http_requests 17
# TYPE diffnet_jobs_completed counter
diffnet_jobs_completed 3
# TYPE diffnet_tau gauge
diffnet_tau 0.25
# TYPE diffnet_phase_seconds gauge
diffnet_phase_seconds{phase=\"load\"} 0.75
diffnet_phase_seconds{phase=\"search\"} 1.25
# TYPE diffnet_candidate_set_size histogram
diffnet_candidate_set_size_bucket{le=\"0\"} 1
diffnet_candidate_set_size_bucket{le=\"1\"} 1
diffnet_candidate_set_size_bucket{le=\"2\"} 3
diffnet_candidate_set_size_bucket{le=\"+Inf\"} 3
diffnet_candidate_set_size_sum 4
diffnet_candidate_set_size_count 3
# TYPE diffnet_worker_chunks gauge
diffnet_worker_chunks{region=\"parent_search\",worker=\"0\"} 5
diffnet_worker_chunks{region=\"parent_search\",worker=\"1\"} 2
";
        assert_eq!(render_prometheus(&snap, "diffnet"), expected);
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot::default();
        assert_eq!(render_prometheus(&snap, "diffnet"), "");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c"), "a_b_c");
        assert_eq!(sanitize("2fast"), "_2fast");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(1.5), "1.5");
    }
}
