//! Property-based tests for the graph substrate.

use diffnet_graph::generators::degree_sequence::{
    configuration_model, powerlaw_degrees, powerlaw_degrees_with_mean,
};
use diffnet_graph::generators::{orient, Orientation};
use diffnet_graph::{stats, DiGraph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // CSR adjacency is sorted and consistent with has_edge / edge_index.
    #[test]
    fn adjacency_sorted_and_consistent(
        edges in proptest::collection::vec((0u32..25, 0u32..25), 0..120)
    ) {
        let g = DiGraph::from_edges(25, &edges);
        for u in g.nodes() {
            let out = g.out_neighbors(u);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted out({u})");
            for &v in out {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.edge_index(u, v).is_some());
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
        }
        let total_out: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let total_in: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(total_out, g.edge_count());
        prop_assert_eq!(total_in, g.edge_count());
    }

    // Edge indices are a permutation of 0..m.
    #[test]
    fn edge_indices_are_dense(
        edges in proptest::collection::vec((0u32..15, 0u32..15), 0..60)
    ) {
        let g = DiGraph::from_edges(15, &edges);
        let mut seen = vec![false; g.edge_count()];
        for (u, v) in g.edges() {
            let idx = g.edge_index(u, v).expect("edge exists");
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    // The configuration model yields a simple undirected graph whose
    // degrees never exceed the requested sequence.
    #[test]
    fn configuration_model_is_simple_and_bounded(
        degrees in proptest::collection::vec(0usize..6, 2..40),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = configuration_model(&degrees, &mut rng);
        let mut seen = std::collections::HashSet::new();
        let mut realized = vec![0usize; degrees.len()];
        for &(u, v) in &edges {
            prop_assert!(u < v, "canonical order");
            prop_assert!(seen.insert((u, v)), "no duplicates");
            realized[u as usize] += 1;
            realized[v as usize] += 1;
        }
        for (i, (&r, &d)) in realized.iter().zip(&degrees).enumerate() {
            prop_assert!(r <= d, "node {i}: realized {r} > requested {d}");
        }
    }

    // Power-law sampling respects its bounds for any valid parameters.
    #[test]
    fn powerlaw_respects_bounds(
        exponent in 0.5f64..4.0,
        kmin in 1usize..5,
        extra in 0usize..20,
        seed in 0u64..1000,
    ) {
        let kmax = kmin + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = powerlaw_degrees(200, exponent, kmin, kmax, &mut rng);
        prop_assert!(d.iter().all(|&k| k >= kmin && k <= kmax));
    }

    // Mean-targeted sampling lands near the target whenever it is
    // attainable within the bounds.
    #[test]
    fn powerlaw_mean_targeting(
        mean in 2.0f64..8.0,
        exponent in 1.0f64..3.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = powerlaw_degrees_with_mean(400, mean, exponent, 40, &mut rng);
        let realized = d.iter().sum::<usize>() as f64 / d.len() as f64;
        prop_assert!((realized - mean).abs() < 0.5,
            "target {}, realized {}", mean, realized);
    }

    // Random orientation keeps exactly one direction per undirected edge;
    // reciprocal keeps both.
    #[test]
    fn orientation_invariants(
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 0..50),
        seed in 0u64..1000,
    ) {
        let und: Vec<(NodeId, NodeId)> = pairs
            .into_iter()
            .filter(|(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let g1 = orient(20, &und, Orientation::Random, &mut rng);
        prop_assert_eq!(g1.edge_count(), und.len());
        for &(u, v) in &und {
            prop_assert!(g1.has_edge(u, v) ^ g1.has_edge(v, u));
        }
        let g2 = orient(20, &und, Orientation::Reciprocal, &mut rng);
        prop_assert_eq!(g2.edge_count(), 2 * und.len());
        prop_assert!((stats::reciprocity(&g2) - 1.0).abs() < 1e-12 || und.is_empty());
    }

    // Reversal is an involution and preserves degree totals.
    #[test]
    fn reversal_involution(
        edges in proptest::collection::vec((0u32..15, 0u32..15), 0..60)
    ) {
        let g = DiGraph::from_edges(15, &edges);
        let rr = g.reversed().reversed();
        prop_assert_eq!(g.edge_vec(), rr.edge_vec());
        for u in g.nodes() {
            prop_assert_eq!(g.out_degree(u), g.reversed().in_degree(u));
        }
    }

    // Weak components never increase when adding edges.
    #[test]
    fn components_monotone(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 1..40)
    ) {
        let partial = DiGraph::from_edges(12, &edges[..edges.len() / 2]);
        let full = DiGraph::from_edges(12, &edges);
        prop_assert!(
            stats::weakly_connected_components(&full)
                <= stats::weakly_connected_components(&partial)
        );
    }
}
