//! Plain edge-list I/O.
//!
//! The on-disk format is one directed edge per line, `source target`,
//! separated by whitespace or a comma; `#`-prefixed lines are comments.
//! This matches how NetSci, DUNF and most SNAP-style datasets are
//! distributed, so real data can be dropped into the experiment harness.

use crate::{DiGraph, GraphBuilder, NodeId};
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An endpoint not in `0..n` for the declared node count.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending node id.
        node: u64,
        /// The declared node count.
        n: usize,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "edge list parse error at line {line}: {content:?}")
            }
            EdgeListError::OutOfRange { line, node, n } => write!(
                f,
                "edge list node {node} at line {line} out of range for n = {n}"
            ),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a directed edge list from a reader.
///
/// If `n` is `Some`, endpoints must lie in `0..n`; if `None`, the node count
/// is `1 + max id` seen.
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<DiGraph, EdgeListError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|p| !p.is_empty());
        let parse = |tok: Option<&str>| -> Option<u64> { tok?.parse().ok() };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line: idx + 1,
                    content: trimmed.to_owned(),
                })
            }
        }
    }

    let node_count = match n {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                (max_id + 1) as usize
            }
        }
    };

    let mut b = GraphBuilder::new(node_count);
    for (idx, &(u, v)) in edges.iter().enumerate() {
        for node in [u, v] {
            if node as usize >= node_count {
                return Err(EdgeListError::OutOfRange {
                    line: idx + 1,
                    node,
                    n: node_count,
                });
            }
        }
        b.add_edge(u as NodeId, v as NodeId);
    }
    Ok(b.build())
}

/// Reads a directed edge list from a file. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P, n: Option<usize>) -> Result<DiGraph, EdgeListError> {
    let file = fs::File::open(path)?;
    read_edge_list(file, n)
}

/// Writes `g` as an edge list (`u v` per line) with a node-count header
/// comment.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# nodes: {}", g.node_count())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes `g` to a file as an edge list. See [`write_edge_list`].
pub fn save_edge_list<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let file = fs::File::create(path)?;
    write_edge_list(g, io::BufWriter::new(file))
}

/// Writes `g` in Graphviz DOT format (`digraph`), optionally highlighting
/// a set of edges (e.g. true positives of an inference) in a second color.
///
/// Node ids are used as labels; render with `dot -Tsvg`.
pub fn write_dot<W: Write>(
    g: &DiGraph,
    highlight: Option<&DiGraph>,
    mut writer: W,
) -> io::Result<()> {
    if let Some(h) = highlight {
        assert_eq!(
            h.node_count(),
            g.node_count(),
            "highlight graph must share the node set"
        );
    }
    writeln!(writer, "digraph diffnet {{")?;
    writeln!(writer, "  node [shape=circle, fontsize=10];")?;
    for (u, v) in g.edges() {
        let highlighted = highlight.is_some_and(|h| h.has_edge(u, v));
        if highlighted {
            writeln!(writer, "  {u} -> {v} [color=\"#2c7fb8\", penwidth=2];")?;
        } else {
            writeln!(writer, "  {u} -> {v};")?;
        }
    }
    writeln!(writer, "}}")
}

/// Writes `g` as a DOT file. See [`write_dot`].
pub fn save_dot<P: AsRef<Path>>(
    g: &DiGraph,
    highlight: Option<&DiGraph>,
    path: P,
) -> io::Result<()> {
    let file = fs::File::create(path)?;
    write_dot(g, highlight, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_dot(&g, None, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("digraph"));
        assert!(text.contains("0 -> 1;"));
        assert!(text.contains("1 -> 2;"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_highlights_marked_edges() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mark = DiGraph::from_edges(3, &[(1, 2)]);
        let mut buf = Vec::new();
        write_dot(&g, Some(&mark), &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("0 -> 1;"));
        assert!(text.contains("1 -> 2 [color="));
    }

    #[test]
    fn round_trip() {
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("in-memory write");
        let parsed = read_edge_list(buf.as_slice(), Some(4)).expect("parse back");
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn commas_and_tabs_accepted() {
        let text = "0,1\n1\t2\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn node_count_inferred_from_max_id() {
        let text = "0 7\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.node_count(), 8);
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes(), None) {
            Err(EdgeListError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_detected() {
        let text = "0 9\n";
        match read_edge_list(text.as_bytes(), Some(5)) {
            Err(EdgeListError::OutOfRange { node, n, .. }) => {
                assert_eq!(node, 9);
                assert_eq!(n, 5);
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).expect("parse");
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_graph_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("g.edges");
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        save_edge_list(&g, &path).expect("save");
        let back = load_edge_list(&path, Some(3)).expect("load");
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }
}
