//! Plain edge-list I/O.
//!
//! The on-disk format is one directed edge per line, `source target`,
//! separated by whitespace or a comma; `#`-prefixed lines are comments.
//! This matches how NetSci, DUNF and most SNAP-style datasets are
//! distributed, so real data can be dropped into the experiment harness.

use crate::{DiGraph, GraphBuilder, NodeId};
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An endpoint not in `0..n` for the declared node count.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending node id.
        node: u64,
        /// The declared node count.
        n: usize,
    },
    /// The file declared more edges than it contained — the tail was cut
    /// off, e.g. by a crash during a non-atomic write.
    Truncated {
        /// Edge count declared in the `# edges:` header.
        expected: usize,
        /// Edges actually present.
        found: usize,
        /// Byte offset where input ended.
        offset: usize,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "edge list parse error at line {line}: {content:?}")
            }
            EdgeListError::OutOfRange { line, node, n } => write!(
                f,
                "edge list node {node} at line {line} out of range for n = {n}"
            ),
            EdgeListError::Truncated {
                expected,
                found,
                offset,
            } => write!(
                f,
                "edge list truncated at byte {offset}: header declares {expected} edges, found {found}"
            ),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a directed edge list from a reader.
///
/// If `n` is `Some`, endpoints must lie in `0..n`; if `None`, the node count
/// is `1 + max id` seen.
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<DiGraph, EdgeListError> {
    let mut buf = BufReader::new(reader);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut declared_edges: Option<usize> = None;
    let mut offset = 0usize;
    let mut lineno = 0usize;
    let mut line = String::new();

    loop {
        line.clear();
        let read = buf.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        offset += read;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if let Some(rest) = trimmed
                .trim_start_matches('#')
                .trim_start()
                .strip_prefix("edges:")
            {
                declared_edges = rest.trim().parse().ok();
            }
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|p| !p.is_empty());
        let parse = |tok: Option<&str>| -> Option<u64> { tok?.parse().ok() };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line: lineno,
                    content: trimmed.to_owned(),
                })
            }
        }
    }

    if let Some(expected) = declared_edges {
        if edges.len() < expected {
            return Err(EdgeListError::Truncated {
                expected,
                found: edges.len(),
                offset,
            });
        }
    }

    let node_count = match n {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                (max_id + 1) as usize
            }
        }
    };

    let mut b = GraphBuilder::new(node_count);
    for (idx, &(u, v)) in edges.iter().enumerate() {
        for node in [u, v] {
            if node as usize >= node_count {
                return Err(EdgeListError::OutOfRange {
                    line: idx + 1,
                    node,
                    n: node_count,
                });
            }
        }
        b.add_edge(u as NodeId, v as NodeId);
    }
    Ok(b.build())
}

/// Reads a directed edge list from a file. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P, n: Option<usize>) -> Result<DiGraph, EdgeListError> {
    let file = fs::File::open(path)?;
    read_edge_list(file, n)
}

/// Writes `g` as an edge list (`u v` per line) with a node-count header
/// comment.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# nodes: {}", g.node_count())?;
    writeln!(writer, "# edges: {}", g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes a file atomically: content goes to a temporary sibling which is
/// renamed over `path` only after a successful flush + sync, so a crash
/// mid-write can never leave a truncated file at the destination.
pub fn save_atomic<P: AsRef<Path>, F>(path: P, write: F) -> io::Result<()>
where
    F: FnOnce(&mut dyn Write) -> io::Result<()>,
{
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        // `sync_data` persists the bytes and the file size — everything the
        // rename-over semantics need — without forcing a metadata journal
        // commit (timestamps, etc.) the way `sync_all` does; on ext4 that
        // halves the sync cost of small atomic saves.
        w.into_inner()
            .map_err(io::IntoInnerError::into_error)?
            .sync_data()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Writes `g` to a file as an edge list via an atomic temp-then-rename
/// save. See [`write_edge_list`] and [`save_atomic`].
pub fn save_edge_list<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    save_atomic(path, |w| write_edge_list(g, w))
}

/// Writes `g` in Graphviz DOT format (`digraph`), optionally highlighting
/// a set of edges (e.g. true positives of an inference) in a second color.
///
/// Node ids are used as labels; render with `dot -Tsvg`.
pub fn write_dot<W: Write>(
    g: &DiGraph,
    highlight: Option<&DiGraph>,
    mut writer: W,
) -> io::Result<()> {
    if let Some(h) = highlight {
        assert_eq!(
            h.node_count(),
            g.node_count(),
            "highlight graph must share the node set"
        );
    }
    writeln!(writer, "digraph diffnet {{")?;
    writeln!(writer, "  node [shape=circle, fontsize=10];")?;
    for (u, v) in g.edges() {
        let highlighted = highlight.is_some_and(|h| h.has_edge(u, v));
        if highlighted {
            writeln!(writer, "  {u} -> {v} [color=\"#2c7fb8\", penwidth=2];")?;
        } else {
            writeln!(writer, "  {u} -> {v};")?;
        }
    }
    writeln!(writer, "}}")
}

/// Writes `g` as a DOT file. See [`write_dot`].
pub fn save_dot<P: AsRef<Path>>(
    g: &DiGraph,
    highlight: Option<&DiGraph>,
    path: P,
) -> io::Result<()> {
    save_atomic(path, |w| write_dot(g, highlight, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_dot(&g, None, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("digraph"));
        assert!(text.contains("0 -> 1;"));
        assert!(text.contains("1 -> 2;"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_highlights_marked_edges() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mark = DiGraph::from_edges(3, &[(1, 2)]);
        let mut buf = Vec::new();
        write_dot(&g, Some(&mark), &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("0 -> 1;"));
        assert!(text.contains("1 -> 2 [color="));
    }

    #[test]
    fn round_trip() {
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("in-memory write");
        let parsed = read_edge_list(buf.as_slice(), Some(4)).expect("parse back");
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn commas_and_tabs_accepted() {
        let text = "0,1\n1\t2\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn node_count_inferred_from_max_id() {
        let text = "0 7\n";
        let g = read_edge_list(text.as_bytes(), None).expect("parse");
        assert_eq!(g.node_count(), 8);
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes(), None) {
            Err(EdgeListError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_detected() {
        let text = "0 9\n";
        match read_edge_list(text.as_bytes(), Some(5)) {
            Err(EdgeListError::OutOfRange { node, n, .. }) => {
                assert_eq!(node, 9);
                assert_eq!(n, 5);
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), None).expect("parse");
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn truncated_edge_list_reports_byte_offset() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        // Cut the file after the second edge line, as a crashed
        // non-atomic writer would.
        let cut = buf.len() - 4;
        match read_edge_list(&buf[..cut], Some(4)) {
            Err(EdgeListError::Truncated {
                expected,
                found,
                offset,
            }) => {
                assert_eq!(expected, 3);
                assert_eq!(found, 2);
                assert_eq!(offset, cut);
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        let msg = read_edge_list(&buf[..cut], Some(4))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("byte"), "offset missing from {msg:?}");
    }

    #[test]
    fn legacy_headerless_edge_list_still_loads() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes(), None).expect("parse");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn save_atomic_failure_leaves_no_partial_file() {
        let dir = std::env::temp_dir().join("diffnet_graph_atomic_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("out.edges");
        std::fs::write(&path, "original").expect("seed file");
        let err = save_atomic(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("injected failure"))
        });
        assert!(err.is_err());
        // The destination is untouched and no temp file remains.
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "original");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_graph_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("g.edges");
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        save_edge_list(&g, &path).expect("save");
        let back = load_edge_list(&path, Some(3)).expect("load");
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }
}
