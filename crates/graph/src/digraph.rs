//! Compact immutable directed graph in CSR form, plus an incremental builder.

use std::fmt;

/// Dense node identifier. Nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// An immutable directed graph stored in compressed sparse row (CSR) form.
///
/// Both the out-adjacency (for simulation: "who can I infect?") and the
/// in-adjacency (for inference: "who are my potential parents?") are stored,
/// each with sorted neighbor lists so that [`DiGraph::has_edge`] is a binary
/// search.
///
/// Construct via [`GraphBuilder`] or [`DiGraph::from_edges`]. Self-loops and
/// duplicate edges are silently dropped during construction: a diffusion
/// network's edge set is a simple relation "u influences v".
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl DiGraph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Self-loops and duplicates are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// A graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Self::from_edges(n, &[])
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Sorted slice of `u`'s out-neighbors (nodes `u` points to).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Sorted slice of `v`'s in-neighbors (nodes pointing to `v`) — the
    /// *parent nodes* of `v` in diffusion terminology.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `v` (its number of parents).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total degree (in + out) of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Whether the directed edge `u -> v` exists. O(log out_degree(u)).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Dense index of edge `u -> v` in `0..edge_count()`, if present.
    ///
    /// Edge indices order edges by `(u, v)` lexicographically and are stable
    /// for the lifetime of the graph; they are used to attach per-edge data
    /// (e.g. propagation probabilities) in parallel arrays.
    #[inline]
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let base = self.out_offsets[u as usize];
        self.out_neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| base + i)
    }

    /// Iterator over all directed edges `(u, v)` in `(u, v)` order.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            g: self,
            u: 0,
            i: 0,
        }
    }

    /// Collects all edges into a vector.
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        let rev: Vec<(NodeId, NodeId)> = self.edges().map(|(u, v)| (v, u)).collect();
        DiGraph::from_edges(self.n, &rev)
    }

    /// Mean total degree `2m / n` (the paper's "average node degree" uses
    /// `m / n` for directed edges; see [`crate::stats::mean_out_degree`]).
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.n as f64
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("nodes", &self.n)
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Iterator over the directed edges of a [`DiGraph`].
pub struct EdgeIter<'a> {
    g: &'a DiGraph,
    u: usize,
    i: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.u < self.g.n {
            let idx = self.g.out_offsets[self.u] + self.i;
            if idx < self.g.out_offsets[self.u + 1] {
                self.i += 1;
                return Some((self.u as NodeId, self.g.out_targets[idx]));
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let consumed = match self.g.out_offsets.get(self.u) {
            Some(&off) => off + self.i,
            None => self.g.edge_count(),
        };
        let remaining = self.g.edge_count() - consumed;
        (remaining, Some(remaining))
    }
}

/// Incremental builder for [`DiGraph`].
///
/// Edges may be added in any order; duplicates and self-loops are removed at
/// [`GraphBuilder::build`] time.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        self.edges.push((u, v));
        self
    }

    /// Adds both `u -> v` and `v -> u` (used for reciprocal relationships
    /// such as coauthorship).
    pub fn add_reciprocal(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u)
    }

    /// Whether `u -> v` has been added (linear scan; intended for
    /// generators that need occasional membership checks during build).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Finalizes into an immutable [`DiGraph`], dropping self-loops and
    /// duplicate edges.
    pub fn build(mut self) -> DiGraph {
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let m = self.edges.len();

        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as NodeId; m];
        let mut cursor = in_offsets.clone();
        for &(u, v) in &self.edges {
            in_sources[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each in-neighbor run is already sorted because edges were sorted
        // by (u, v) and we appended in order of increasing u.

        DiGraph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency_is_sorted_and_correct() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[NodeId]);
    }

    #[test]
    fn has_edge_and_direction() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0), "edges are directed");
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicates_and_self_loops_removed() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edge_iteration_in_lexicographic_order() {
        let g = DiGraph::from_edges(4, &[(2, 0), (0, 3), (0, 1), (1, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 0)]);
    }

    #[test]
    fn edge_index_is_dense_and_stable() {
        let g = diamond();
        let mut seen = vec![false; g.edge_count()];
        for (u, v) in g.edges() {
            let idx = g.edge_index(u, v).unwrap();
            assert!(!seen[idx], "edge index {idx} assigned twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(g.edge_index(3, 0), None);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert_eq!(r.in_neighbors(0), &[1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn zero_node_graph() {
        let g = DiGraph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn reciprocal_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_reciprocal(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn mean_degree_counts_both_endpoints() {
        let g = diamond();
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn builder_contains_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert!(b.contains_edge(0, 1));
        assert!(!b.contains_edge(1, 0));
    }
}
