//! Graph statistics used to validate generated topologies and to report
//! dataset properties (the paper's Table II describes its networks by node
//! count, average degree and degree dispersion).

use crate::{DiGraph, NodeId};

/// Summary statistics of a directed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Directed edges per node (`m / n`) — the paper's "average node degree".
    pub mean_out_degree: f64,
    /// Standard deviation of total (in + out) degree.
    pub degree_std: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Fraction of edges whose reverse also exists.
    pub reciprocity: f64,
    /// Global clustering coefficient of the undirected projection.
    pub clustering: f64,
    /// Number of weakly connected components.
    pub weak_components: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn of(g: &DiGraph) -> GraphStats {
        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            mean_out_degree: mean_out_degree(g),
            degree_std: degree_std(g),
            max_degree: g.nodes().map(|u| g.degree(u)).max().unwrap_or(0),
            reciprocity: reciprocity(g),
            clustering: global_clustering(g),
            weak_components: weakly_connected_components(g),
        }
    }
}

/// Directed edges per node, `m / n` (0 for the empty node set).
pub fn mean_out_degree(g: &DiGraph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    g.edge_count() as f64 / g.node_count() as f64
}

/// Standard deviation of total degree.
pub fn degree_std(g: &DiGraph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let mean = g.nodes().map(|u| g.degree(u) as f64).sum::<f64>() / n as f64;
    let var = g
        .nodes()
        .map(|u| (g.degree(u) as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    var.sqrt()
}

/// Fraction of directed edges `u -> v` for which `v -> u` also exists.
pub fn reciprocity(g: &DiGraph) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
    mutual as f64 / g.edge_count() as f64
}

/// Global clustering coefficient (transitivity) of the undirected
/// projection: `3 × triangles / connected triples`.
pub fn global_clustering(g: &DiGraph) -> f64 {
    let n = g.node_count();
    // Undirected neighbor sets.
    let mut nbrs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        nbrs[u as usize].push(v);
        nbrs[v as usize].push(u);
    }
    for l in &mut nbrs {
        l.sort_unstable();
        l.dedup();
    }

    let mut triangles = 0usize;
    let mut triples = 0usize;
    for u in 0..n {
        let d = nbrs[u].len();
        triples += d * d.saturating_sub(1) / 2;
        for i in 0..d {
            for j in (i + 1)..d {
                let (a, b) = (nbrs[u][i], nbrs[u][j]);
                if nbrs[a as usize].binary_search(&b).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner, i.e. 3 times.
        triangles as f64 / triples as f64
    }
}

/// Number of weakly connected components (union-find over the undirected
/// projection).
pub fn weakly_connected_components(g: &DiGraph) -> usize {
    let n = g.node_count();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (u, v) in g.edges() {
        let ru = find(&mut parent, u as usize);
        let rv = find(&mut parent, v as usize);
        if ru != rv {
            parent[ru] = rv;
        }
    }
    (0..n).filter(|&x| find(&mut parent, x) == x).count()
}

/// Histogram of total degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &DiGraph) -> Vec<usize> {
    let max = g.nodes().map(|u| g.degree(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    #[test]
    fn stats_of_triangle() {
        // Directed 3-cycle: undirected projection is a triangle.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(mean_out_degree(&g), 1.0);
        assert_eq!(reciprocity(&g), 0.0);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(weakly_connected_components(&g), 1);
    }

    #[test]
    fn reciprocity_full() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(reciprocity(&g), 1.0);
    }

    #[test]
    fn components_count_isolated_nodes() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2)]);
        assert_eq!(weakly_connected_components(&g), 3);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn degree_std_of_regular_graph_is_zero() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_std(&g) < 1e-12);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 4);
        assert_eq!(hist[0], 1, "node 3 is isolated");
    }

    #[test]
    fn empty_graph_stats() {
        let g = DiGraph::empty(0);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.degree_std, 0.0);
        assert_eq!(s.weak_components, 0);
    }

    #[test]
    fn graph_stats_bundle_matches_parts() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let s = GraphStats::of(&g);
        assert_eq!(s.edges, 3);
        assert!((s.reciprocity - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.weak_components, 1);
        assert_eq!(s.max_degree, 3);
    }
}
