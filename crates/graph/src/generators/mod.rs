//! Synthetic network generators.
//!
//! The TENDS paper evaluates on LFR benchmark graphs ([`lfr`]) and two
//! real-world networks; [`classic`] provides Erdős–Rényi and
//! Barabási–Albert generators used in tests and extra experiments, and
//! [`degree_sequence`] provides power-law degree sampling and
//! configuration-model wiring shared by the higher-level generators.

pub mod classic;
pub mod degree_sequence;
pub mod kronecker;
pub mod lfr;

pub use classic::{barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, watts_strogatz};
pub use degree_sequence::{configuration_model, powerlaw_degrees, powerlaw_degrees_with_mean};
pub use kronecker::{kronecker, KroneckerSeed};
pub use lfr::{Lfr, LfrError};

use crate::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

/// How an undirected edge set is turned into a directed diffusion network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Orientation {
    /// Each undirected edge becomes one directed edge whose direction is
    /// chosen uniformly at random. An undirected graph with mean degree `2K`
    /// becomes a directed graph with `m/n = K`, the paper's "average node
    /// degree" (total edges / total nodes).
    #[default]
    Random,
    /// Each undirected edge becomes a reciprocal pair `u -> v`, `v -> u`
    /// (appropriate for inherently symmetric relations such as
    /// coauthorship).
    Reciprocal,
}

/// Orients an undirected edge list into a [`DiGraph`].
pub fn orient<R: Rng + ?Sized>(
    n: usize,
    undirected: &[(NodeId, NodeId)],
    orientation: Orientation,
    rng: &mut R,
) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in undirected {
        match orientation {
            Orientation::Random => {
                if rng.gen_bool(0.5) {
                    b.add_edge(u, v);
                } else {
                    b.add_edge(v, u);
                }
            }
            Orientation::Reciprocal => {
                b.add_reciprocal(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orient_random_keeps_one_direction_per_edge() {
        let mut rng = StdRng::seed_from_u64(7);
        let und = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let g = orient(4, &und, Orientation::Random, &mut rng);
        assert_eq!(g.edge_count(), 4);
        for &(u, v) in &und {
            assert!(
                g.has_edge(u, v) ^ g.has_edge(v, u),
                "exactly one direction of ({u},{v}) must exist"
            );
        }
    }

    #[test]
    fn orient_reciprocal_doubles_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let und = vec![(0, 1), (1, 2)];
        let g = orient(3, &und, Orientation::Reciprocal, &mut rng);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }
}
