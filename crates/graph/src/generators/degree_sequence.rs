//! Power-law degree sampling and configuration-model wiring.
//!
//! These primitives back the [LFR generator](super::lfr) and the synthetic
//! real-world topology models in `diffnet-datasets`.

use crate::NodeId;
use rand::Rng;

/// Samples `n` degrees from a discrete truncated power law
/// `p(k) ∝ k^(-exponent)` on `kmin..=kmax` via inverse-CDF sampling.
///
/// # Panics
///
/// Panics if `kmin == 0`, `kmin > kmax` or `exponent <= 0`.
pub fn powerlaw_degrees<R: Rng + ?Sized>(
    n: usize,
    exponent: f64,
    kmin: usize,
    kmax: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(kmin >= 1, "kmin must be at least 1");
    assert!(kmin <= kmax, "kmin ({kmin}) must not exceed kmax ({kmax})");
    assert!(exponent > 0.0, "exponent must be positive");

    let weights: Vec<f64> = (kmin..=kmax).map(|k| (k as f64).powf(-exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            kmin + idx
        })
        .collect()
}

/// Mean of the discrete truncated power law `p(k) ∝ k^(-exponent)` on
/// `kmin..=kmax`.
fn truncated_powerlaw_mean(exponent: f64, kmin: usize, kmax: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for k in kmin..=kmax {
        let w = (k as f64).powf(-exponent);
        num += k as f64 * w;
        den += w;
    }
    num / den
}

/// Samples `n` degrees from a truncated power law with exponent `exponent`,
/// choosing the lower cutoff `kmin` so that the expected mean degree is as
/// close as possible to `mean`, then nudging individual samples so the
/// realized mean lands within one of the target.
///
/// This mirrors how the LFR benchmark hits its average-degree parameter:
/// the dispersion is governed by `exponent` (the paper's `T`; larger means
/// less dispersion) while the location is governed by the cutoff.
///
/// # Panics
///
/// Panics if `mean < 1`, `kmax < mean`, or `exponent <= 0`.
pub fn powerlaw_degrees_with_mean<R: Rng + ?Sized>(
    n: usize,
    mean: f64,
    exponent: f64,
    kmax: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(mean >= 1.0, "mean degree must be at least 1");
    assert!(kmax as f64 >= mean, "kmax must be at least the target mean");
    assert!(exponent > 0.0, "exponent must be positive");

    // The truncated mean is monotone increasing in kmin; binary-search the
    // largest kmin whose mean does not exceed the target.
    let mut lo = 1usize;
    let mut hi = kmax;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if truncated_powerlaw_mean(exponent, mid, kmax) <= mean {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let kmin = lo;

    let mut degrees = powerlaw_degrees(n, exponent, kmin, kmax, rng);

    // Nudge random entries up/down until the realized mean is within 0.05
    // of the target (or we run out of attempts, e.g. when every degree has
    // hit a bound).
    let target: i64 = (mean * n as f64).round() as i64;
    let tolerance = ((0.05 * n as f64) as i64).max(1);
    let mut total: i64 = degrees.iter().map(|&d| d as i64).sum();
    let mut attempts = 0usize;
    let max_attempts = 400 * n + 1000;
    while (total - target).abs() > tolerance && attempts < max_attempts {
        let i = rng.gen_range(0..n);
        if total < target && degrees[i] < kmax {
            degrees[i] += 1;
            total += 1;
        } else if total > target && degrees[i] > 1 {
            degrees[i] -= 1;
            total -= 1;
        }
        attempts += 1;
    }
    degrees
}

/// Wires an undirected simple graph with (approximately) the given degree
/// sequence using the configuration model with rejection of self-loops and
/// multi-edges.
///
/// Stub pairs that would create a self-loop or duplicate edge are re-drawn a
/// bounded number of times and then discarded, so a small deficit relative
/// to `degrees` is possible (standard practice for simple-graph
/// configuration models).
///
/// Returns undirected edges as `(u, v)` with `u < v`.
pub fn configuration_model<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let mut stubs: Vec<NodeId> = Vec::new();
    for (node, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(node as NodeId, d));
    }
    // An odd stub count cannot be perfectly matched; drop one.
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    shuffle(&mut stubs, rng);

    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(stubs.len() / 2);
    let mut seen = std::collections::HashSet::with_capacity(stubs.len() / 2);
    let mut leftovers: Vec<NodeId> = Vec::new();

    while stubs.len() >= 2 {
        let a = stubs.pop().expect("len checked");
        let b = stubs.pop().expect("len checked");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        if u == v || !seen.insert((u, v)) {
            leftovers.push(a);
            leftovers.push(b);
        } else {
            edges.push((u, v));
        }
    }

    // A few rewiring rounds over the rejected stubs.
    for _ in 0..3 {
        if leftovers.len() < 2 {
            break;
        }
        shuffle(&mut leftovers, rng);
        let mut next = Vec::new();
        while leftovers.len() >= 2 {
            let a = leftovers.pop().expect("len checked");
            let b = leftovers.pop().expect("len checked");
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            if u == v || !seen.insert((u, v)) {
                next.push(a);
                next.push(b);
            } else {
                edges.push((u, v));
            }
        }
        leftovers = next;
    }

    edges
}

/// Fisher–Yates shuffle (avoids pulling in `rand::seq` trait imports at
/// every call site).
pub(crate) fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn powerlaw_degrees_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = powerlaw_degrees(500, 2.0, 3, 20, &mut rng);
        assert_eq!(d.len(), 500);
        assert!(d.iter().all(|&k| (3..=20).contains(&k)));
    }

    #[test]
    fn powerlaw_is_heavy_on_small_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = powerlaw_degrees(2000, 2.5, 1, 50, &mut rng);
        let ones = d.iter().filter(|&&k| k == 1).count();
        let tens = d.iter().filter(|&&k| k >= 10).count();
        assert!(
            ones > tens,
            "power law must favor low degrees: {ones} vs {tens}"
        );
    }

    #[test]
    fn mean_targeting_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        for &mean in &[2.0, 4.0, 6.0] {
            let d = powerlaw_degrees_with_mean(300, mean, 2.0, 30, &mut rng);
            let realized = d.iter().sum::<usize>() as f64 / d.len() as f64;
            assert!(
                (realized - mean).abs() < 0.5,
                "target {mean}, realized {realized}"
            );
        }
    }

    #[test]
    fn higher_exponent_means_less_dispersion() {
        let mut rng = StdRng::seed_from_u64(4);
        let var = |d: &[usize]| {
            let m = d.iter().sum::<usize>() as f64 / d.len() as f64;
            d.iter().map(|&k| (k as f64 - m).powi(2)).sum::<f64>() / d.len() as f64
        };
        let low_t = powerlaw_degrees_with_mean(3000, 4.0, 1.0, 40, &mut rng);
        let high_t = powerlaw_degrees_with_mean(3000, 4.0, 3.0, 40, &mut rng);
        assert!(
            var(&low_t) > var(&high_t),
            "T=1 variance {} should exceed T=3 variance {}",
            var(&low_t),
            var(&high_t)
        );
    }

    #[test]
    fn configuration_model_is_simple() {
        let mut rng = StdRng::seed_from_u64(5);
        let degrees = vec![3usize; 100];
        let edges = configuration_model(&degrees, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert!(u < v, "edges must be canonical (u < v)");
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
        // Deficit from rejected stubs should be small.
        assert!(
            edges.len() * 2 >= 280,
            "too many rejected stubs: {}",
            edges.len()
        );
    }

    #[test]
    fn configuration_model_handles_odd_total() {
        let mut rng = StdRng::seed_from_u64(6);
        let degrees = vec![1, 1, 1];
        let edges = configuration_model(&degrees, &mut rng);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn configuration_model_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(configuration_model(&[], &mut rng).is_empty());
        assert!(configuration_model(&[0, 0, 0], &mut rng).is_empty());
    }
}
