//! LFR benchmark graphs (Lancichinetti, Fortunato & Radicchi, *Phys. Rev. E*
//! 2008), the synthetic networks used throughout the TENDS evaluation.
//!
//! The paper varies three knobs (its Table II): the number of nodes `n`, the
//! average node degree `K` (total directed edges divided by nodes), and the
//! degree-distribution exponent `T` (larger `T` = less degree dispersion).
//! This implementation follows the standard LFR recipe:
//!
//! 1. sample a power-law degree sequence with exponent `T`, with the lower
//!    cutoff chosen to hit the target mean degree;
//! 2. sample power-law community sizes and assign nodes to communities;
//! 3. split each node's stubs into internal (fraction `1 − mixing`) and
//!    external stubs, and wire each group with a simple-graph configuration
//!    model (internal stubs within the community, external stubs across);
//! 4. orient the resulting undirected edges per [`Orientation`].

use super::degree_sequence::{configuration_model, powerlaw_degrees, shuffle};
use super::{orient, Orientation};
use crate::{DiGraph, NodeId};
use rand::Rng;
use std::collections::HashSet;
use std::fmt;

/// Parameters of an LFR benchmark graph.
///
/// Defaults (other than the three paper knobs) follow common LFR practice:
/// community-size exponent 1.5, mixing parameter 0.1, community sizes
/// between `max(10, K)` and `n/3`.
#[derive(Clone, Debug)]
pub struct Lfr {
    /// Number of nodes (`n` in the paper).
    pub n: usize,
    /// Target average node degree: directed edges per node (`K`).
    pub mean_degree: f64,
    /// Power-law exponent of the degree distribution (`T`); larger values
    /// give less dispersion.
    pub degree_exponent: f64,
    /// Fraction of each node's stubs that connect outside its community.
    pub mixing: f64,
    /// Power-law exponent of the community-size distribution (`τ₂`).
    pub community_size_exponent: f64,
    /// Smallest allowed community (0 = auto).
    pub min_community: usize,
    /// Largest allowed community (0 = auto).
    pub max_community: usize,
    /// Hard cap on node degree (0 = auto: `3 ×` the undirected mean).
    pub max_degree: usize,
    /// How undirected LFR edges become directed influence edges.
    pub orientation: Orientation,
}

impl Lfr {
    /// LFR with the paper's three knobs and default community structure.
    pub fn new(n: usize, mean_degree: f64, degree_exponent: f64) -> Self {
        Lfr {
            n,
            mean_degree,
            degree_exponent,
            mixing: 0.1,
            community_size_exponent: 1.5,
            min_community: 0,
            max_community: 0,
            max_degree: 0,
            orientation: Orientation::Random,
        }
    }

    /// Generates a directed LFR benchmark graph.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<DiGraph, LfrError> {
        self.validate()?;

        // Random orientation halves the per-node edge count, so the
        // undirected sequence needs mean 2K to land at m/n = K.
        let undirected_mean = match self.orientation {
            Orientation::Random => 2.0 * self.mean_degree,
            Orientation::Reciprocal => self.mean_degree,
        };
        let kmax = if self.max_degree > 0 {
            self.max_degree.min(self.n - 1)
        } else {
            ((undirected_mean * 3.0).ceil() as usize).clamp(2, self.n - 1)
        };

        let degrees = super::degree_sequence::powerlaw_degrees_with_mean(
            self.n,
            undirected_mean,
            self.degree_exponent,
            kmax,
            rng,
        );

        let (min_c, max_c) = self.community_bounds(kmax);
        let sizes = community_sizes(self.n, self.community_size_exponent, min_c, max_c, rng);
        let membership = assign_communities(&degrees, &sizes, self.mixing, rng);

        let undirected = wire(&degrees, &membership, sizes.len(), self.mixing, rng);
        Ok(orient(self.n, &undirected, self.orientation, rng))
    }

    fn community_bounds(&self, kmax: usize) -> (usize, usize) {
        let min_c = if self.min_community > 0 {
            self.min_community
        } else {
            (kmax / 2).max(10).min(self.n)
        };
        let max_c = if self.max_community > 0 {
            self.max_community
        } else {
            (self.n / 3).max(min_c)
        };
        (min_c, max_c.max(min_c))
    }

    fn validate(&self) -> Result<(), LfrError> {
        if self.n < 10 {
            return Err(LfrError::new("n must be at least 10"));
        }
        if self.mean_degree < 1.0 || self.mean_degree >= self.n as f64 {
            return Err(LfrError::new("mean_degree must be in [1, n)"));
        }
        if self.degree_exponent <= 0.0 {
            return Err(LfrError::new("degree_exponent must be positive"));
        }
        if !(0.0..=1.0).contains(&self.mixing) {
            return Err(LfrError::new("mixing must be in [0, 1]"));
        }
        if self.community_size_exponent <= 0.0 {
            return Err(LfrError::new("community_size_exponent must be positive"));
        }
        Ok(())
    }
}

/// Parameter-validation error for [`Lfr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LfrError {
    message: String,
}

impl LfrError {
    fn new(msg: &str) -> Self {
        LfrError {
            message: msg.to_owned(),
        }
    }
}

impl fmt::Display for LfrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid LFR parameters: {}", self.message)
    }
}

impl std::error::Error for LfrError {}

/// Samples community sizes from a truncated power law until they cover `n`
/// nodes exactly (the last community is trimmed; if the trim is below the
/// minimum size it is merged into its predecessor).
fn community_sizes<R: Rng + ?Sized>(
    n: usize,
    exponent: f64,
    min_c: usize,
    max_c: usize,
    rng: &mut R,
) -> Vec<usize> {
    let min_c = min_c.min(n);
    let max_c = max_c.clamp(min_c, n);
    let mut sizes = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = powerlaw_degrees(1, exponent, min_c, max_c, rng)[0];
        let s = s.min(n - covered);
        sizes.push(s);
        covered += s;
    }
    if sizes.len() >= 2 {
        let last = *sizes.last().expect("nonempty");
        if last < min_c {
            sizes.pop();
            *sizes.last_mut().expect("len >= 1") += last;
        }
    }
    sizes
}

/// Assigns each node to a community such that (where possible) its internal
/// degree fits within the community.
fn assign_communities<R: Rng + ?Sized>(
    degrees: &[usize],
    sizes: &[usize],
    mixing: f64,
    rng: &mut R,
) -> Vec<usize> {
    let n = degrees.len();
    let mut capacity: Vec<usize> = sizes.to_vec();
    let mut membership = vec![usize::MAX; n];

    // Place high-degree nodes first: they are the hardest to fit.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(degrees[i]));

    for &node in &order {
        let internal = ((1.0 - mixing) * degrees[node] as f64).round() as usize;
        // Candidate communities with room and enough peers for the node's
        // internal stubs.
        let fits: Vec<usize> = (0..sizes.len())
            .filter(|&c| capacity[c] > 0 && sizes[c] > internal)
            .collect();
        let chosen = if !fits.is_empty() {
            fits[rng.gen_range(0..fits.len())]
        } else {
            // Fall back to the community with the most remaining room.
            (0..sizes.len())
                .max_by_key(|&c| capacity[c])
                .expect("at least one community")
        };
        membership[node] = chosen;
        capacity[chosen] = capacity[chosen].saturating_sub(1);
    }
    membership
}

/// Wires internal stubs per community and external stubs across communities.
fn wire<R: Rng + ?Sized>(
    degrees: &[usize],
    membership: &[usize],
    num_communities: usize,
    mixing: f64,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let n = degrees.len();
    let mut comm_count = vec![0usize; num_communities];
    for &c in membership {
        comm_count[c] += 1;
    }
    let mut internal_deg = vec![0usize; n];
    let mut external_deg = vec![0usize; n];
    for i in 0..n {
        let comm_size = comm_count[membership[i]];
        let mut internal = ((1.0 - mixing) * degrees[i] as f64).round() as usize;
        // A node cannot have more internal partners than its community has
        // other members.
        internal = internal.min(comm_size.saturating_sub(1));
        internal_deg[i] = internal;
        external_deg[i] = degrees[i] - internal.min(degrees[i]);
    }

    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();

    // Internal wiring: a configuration model restricted to each community.
    for c in 0..num_communities {
        let members: Vec<usize> = (0..n).filter(|&i| membership[i] == c).collect();
        if members.len() < 2 {
            continue;
        }
        let local_degrees: Vec<usize> = members.iter().map(|&i| internal_deg[i]).collect();
        for (lu, lv) in configuration_model(&local_degrees, rng) {
            edges.push((
                members[lu as usize] as NodeId,
                members[lv as usize] as NodeId,
            ));
        }
    }

    // External wiring: pair external stubs across communities, rejecting
    // same-community pairs and duplicates for a bounded number of rounds.
    let mut existing: HashSet<(NodeId, NodeId)> = edges
        .iter()
        .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    let mut stubs: Vec<usize> = Vec::new();
    for (i, &d) in external_deg.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(i, d));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    shuffle(&mut stubs, rng);
    let mut rejected: Vec<usize> = Vec::new();
    for round in 0..4 {
        while stubs.len() >= 2 {
            let a = stubs.pop().expect("len checked");
            let b = stubs.pop().expect("len checked");
            let key = if a < b {
                (a as NodeId, b as NodeId)
            } else {
                (b as NodeId, a as NodeId)
            };
            // After the first rounds give up on the community constraint and
            // only forbid self-loops/duplicates, so stub deficits stay small.
            let same_comm = membership[a] == membership[b] && round < 2;
            if a == b || same_comm || existing.contains(&key) {
                rejected.push(a);
                rejected.push(b);
            } else {
                existing.insert(key);
                edges.push(key);
            }
        }
        if rejected.len() < 2 {
            break;
        }
        std::mem::swap(&mut stubs, &mut rejected);
        shuffle(&mut stubs, rng);
    }

    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn degree_std(g: &DiGraph) -> f64 {
        let n = g.node_count() as f64;
        let mean = g.nodes().map(|u| g.degree(u) as f64).sum::<f64>() / n;
        let var = g
            .nodes()
            .map(|u| (g.degree(u) as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt()
    }

    #[test]
    fn node_count_is_exact() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = Lfr::new(200, 4.0, 2.0).generate(&mut rng).expect("valid");
        assert_eq!(g.node_count(), 200);
    }

    #[test]
    fn mean_degree_close_to_target() {
        let mut rng = StdRng::seed_from_u64(22);
        for &k in &[2.0, 4.0, 6.0] {
            let g = Lfr::new(200, k, 2.0).generate(&mut rng).expect("valid");
            let realized = g.edge_count() as f64 / g.node_count() as f64;
            assert!(
                (realized - k).abs() < 0.8,
                "target K={k}, realized m/n={realized}"
            );
        }
    }

    #[test]
    fn exponent_controls_dispersion() {
        let mut rng = StdRng::seed_from_u64(23);
        let loose = Lfr::new(400, 4.0, 1.0).generate(&mut rng).expect("valid");
        let tight = Lfr::new(400, 4.0, 3.0).generate(&mut rng).expect("valid");
        assert!(
            degree_std(&loose) > degree_std(&tight),
            "T=1 std {} should exceed T=3 std {}",
            degree_std(&loose),
            degree_std(&tight)
        );
    }

    #[test]
    fn reciprocal_orientation_gives_reciprocal_edges() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut cfg = Lfr::new(100, 4.0, 2.0);
        cfg.orientation = Orientation::Reciprocal;
        let g = cfg.generate(&mut rng).expect("valid");
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "edge ({u},{v}) lacks its reciprocal");
        }
    }

    #[test]
    fn mixing_keeps_most_edges_internal() {
        // Indirect check: with low mixing the graph should contain dense
        // local pockets, which we proxy by positive undirected clustering.
        let mut rng = StdRng::seed_from_u64(25);
        let mut cfg = Lfr::new(200, 6.0, 2.0);
        cfg.mixing = 0.05;
        let g = cfg.generate(&mut rng).expect("valid");
        let cc = crate::stats::global_clustering(&g);
        assert!(
            cc > 0.02,
            "community structure should yield clustering, got {cc}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut rng = StdRng::seed_from_u64(26);
        assert!(Lfr::new(5, 2.0, 2.0).generate(&mut rng).is_err());
        assert!(Lfr::new(100, 0.5, 2.0).generate(&mut rng).is_err());
        assert!(Lfr::new(100, 4.0, -1.0).generate(&mut rng).is_err());
        let mut cfg = Lfr::new(100, 4.0, 2.0);
        cfg.mixing = 1.5;
        assert!(cfg.generate(&mut rng).is_err());
    }

    #[test]
    fn error_message_is_informative() {
        let mut rng = StdRng::seed_from_u64(27);
        let err = Lfr::new(5, 2.0, 2.0).generate(&mut rng).unwrap_err();
        assert!(err.to_string().contains("n must be at least 10"));
    }

    #[test]
    fn paper_table2_sizes_generate() {
        let mut rng = StdRng::seed_from_u64(28);
        for &n in &[100usize, 150, 200, 250, 300] {
            let g = Lfr::new(n, 4.0, 2.0).generate(&mut rng).expect("valid");
            assert_eq!(g.node_count(), n);
            assert!(
                g.edge_count() > 2 * n,
                "graph too sparse: {}",
                g.edge_count()
            );
        }
    }
}
