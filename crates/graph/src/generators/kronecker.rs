//! Stochastic Kronecker graphs (Leskovec et al., JMLR 2010).
//!
//! Kronecker graphs are the standard synthetic substrate of the cascade-
//! inference literature (NetInf, NetRate, MulTree all evaluate on them),
//! so they are provided here alongside the paper's LFR benchmarks. A
//! `2 × 2` seed matrix `Θ` is Kronecker-powered `k` times; entry
//! `(u, v)` of `Θ^{[k]}` is the product of seed entries indexed by the
//! bit pairs of `u` and `v`, and each directed edge is sampled
//! independently with that probability.
//!
//! Classic parameterizations: *core–periphery* `[0.9, 0.5; 0.5, 0.3]`,
//! *hierarchical community* `[0.9, 0.1; 0.1, 0.9]`, *random*
//! `[0.5, 0.5; 0.5, 0.5]`.

use crate::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

/// A `2 × 2` stochastic Kronecker seed matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KroneckerSeed {
    /// Row-major entries `[[a, b], [c, d]]`, each in `[0, 1]`.
    pub theta: [[f64; 2]; 2],
}

impl KroneckerSeed {
    /// The core–periphery seed `[0.9, 0.5; 0.5, 0.3]` (NetInf's default).
    pub fn core_periphery() -> Self {
        KroneckerSeed {
            theta: [[0.9, 0.5], [0.5, 0.3]],
        }
    }

    /// The hierarchical-community seed `[0.9, 0.1; 0.1, 0.9]`.
    pub fn hierarchical() -> Self {
        KroneckerSeed {
            theta: [[0.9, 0.1], [0.1, 0.9]],
        }
    }

    /// An Erdős–Rényi-like seed `[p, p; p, p]`.
    pub fn random(p: f64) -> Self {
        KroneckerSeed {
            theta: [[p, p], [p, p]],
        }
    }

    fn validate(&self) {
        for row in &self.theta {
            for &p in row {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "seed entries must be probabilities"
                );
            }
        }
    }

    /// Edge probability between nodes `u` and `v` in the `k`-th power.
    fn edge_prob(&self, u: usize, v: usize, k: u32) -> f64 {
        let mut p = 1.0;
        for bit in 0..k {
            let i = (u >> bit) & 1;
            let j = (v >> bit) & 1;
            p *= self.theta[i][j];
        }
        p
    }
}

/// Samples a directed stochastic Kronecker graph with `2^k` nodes.
///
/// Self-loops are skipped. Complexity is `O(4^k)` probability evaluations
/// (exact sampling; fine up to `k ≈ 12`).
///
/// # Panics
///
/// Panics if a seed entry is outside `[0, 1]` or `k > 16`.
pub fn kronecker<R: Rng + ?Sized>(seed: &KroneckerSeed, k: u32, rng: &mut R) -> DiGraph {
    seed.validate();
    assert!(
        k <= 16,
        "k = {k} would produce 2^{k} nodes; exact sampling caps at 16"
    );
    let n = 1usize << k;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(seed.edge_prob(u, v, k)) {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = kronecker(&KroneckerSeed::core_periphery(), 6, &mut rng);
        assert_eq!(g.node_count(), 64);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn edge_count_matches_expectation() {
        // Expected edges = Σ_{u≠v} Π θ bits = (Σθ)^k − (θ00+θ11 diagonal
        // correction); check against a Monte-Carlo-friendly tolerance.
        let seed = KroneckerSeed::random(0.5);
        let k = 7; // 128 nodes
        let mut rng = StdRng::seed_from_u64(2);
        let g = kronecker(&seed, k, &mut rng);
        let n = 128f64;
        let expected = n * n * 0.5f64.powi(k as i32) - n * 0.5f64.powi(k as i32);
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 5.0 * expected.sqrt(),
            "edges {m}, expected ~{expected}"
        );
    }

    #[test]
    fn core_periphery_has_a_core() {
        // Node 0 (all-zero bits) hits θ00 = 0.9 on every bit: it must be
        // among the highest-degree nodes.
        let mut rng = StdRng::seed_from_u64(3);
        let g = kronecker(&KroneckerSeed::core_periphery(), 7, &mut rng);
        let deg0 = g.degree(0);
        let mean = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            deg0 as f64 > 3.0 * mean,
            "core node degree {deg0} vs mean {mean}"
        );
    }

    #[test]
    fn hierarchical_prefers_same_prefix() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = kronecker(&KroneckerSeed::hierarchical(), 7, &mut rng);
        // Edges within the same half (same top bit) should dominate.
        let n = g.node_count();
        let same = g
            .edges()
            .filter(|&(u, v)| (u as usize) / (n / 2) == (v as usize) / (n / 2))
            .count();
        assert!(
            same * 2 > g.edge_count(),
            "{same} same-half edges of {}",
            g.edge_count()
        );
    }

    #[test]
    #[should_panic(expected = "must be probabilities")]
    fn invalid_seed_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        kronecker(
            &KroneckerSeed {
                theta: [[1.5, 0.0], [0.0, 0.0]],
            },
            2,
            &mut rng,
        );
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = kronecker(&KroneckerSeed::random(0.9), 5, &mut rng);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }
}
