//! Classic random-graph generators: Erdős–Rényi and Barabási–Albert.
//!
//! These are not used by the paper's headline experiments but serve as
//! well-understood substrates for tests, examples and extra ablations.

use super::degree_sequence::shuffle;
use crate::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

/// Directed Erdős–Rényi `G(n, p)`: every ordered pair `(u, v)`, `u != v`,
/// is an edge independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v && rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Directed Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges
/// chosen uniformly at random.
///
/// # Panics
///
/// Panics if `m > n * (n - 1)`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= max_edges,
        "m = {m} exceeds the {max_edges} possible edges"
    );
    let mut b = GraphBuilder::new(n);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && chosen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment with `k` edges per arriving node,
/// each oriented uniformly at random (so hubs both influence and are
/// influenced).
///
/// The first `k + 1` nodes form a directed cycle seed so every node has
/// positive degree before attachment begins.
///
/// # Panics
///
/// Panics if `k == 0` or `n <= k`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> DiGraph {
    assert!(k >= 1, "k must be positive");
    assert!(n > k, "need more than k = {k} nodes, got {n}");

    let mut b = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoint_pool: Vec<NodeId> = Vec::new();

    let seed = k + 1;
    for u in 0..seed {
        let v = (u + 1) % seed;
        add_oriented(&mut b, u as NodeId, v as NodeId, rng);
        endpoint_pool.push(u as NodeId);
        endpoint_pool.push(v as NodeId);
    }

    for u in seed..n {
        let mut picked: Vec<NodeId> = Vec::with_capacity(k);
        let mut guard = 0usize;
        while picked.len() < k && guard < 100 * k {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if t != u as NodeId && !picked.contains(&t) {
                picked.push(t);
            }
            guard += 1;
        }
        // Fallback for pathological rejection streaks: fill from the oldest
        // nodes, which always exist and are distinct.
        let mut filler = 0 as NodeId;
        while picked.len() < k {
            if filler != u as NodeId && !picked.contains(&filler) {
                picked.push(filler);
            }
            filler += 1;
        }
        shuffle(&mut picked, rng);
        for &t in &picked {
            add_oriented(&mut b, u as NodeId, t, rng);
            endpoint_pool.push(u as NodeId);
            endpoint_pool.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where every node is
/// connected to its `k` nearest neighbors on each side, with each lattice
/// edge rewired to a uniform random target with probability `rewire`; each
/// resulting undirected edge is oriented uniformly at random.
///
/// Small-world graphs interpolate between high-clustering lattices
/// (`rewire = 0`) and random graphs (`rewire = 1`), which makes them a
/// useful stress test between the paper's clustered LFR networks and
/// unstructured baselines.
///
/// # Panics
///
/// Panics if `k == 0`, `2k >= n`, or `rewire` is not in `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, rewire: f64, rng: &mut R) -> DiGraph {
    assert!(k >= 1, "k must be positive");
    assert!(2 * k < n, "ring lattice needs n > 2k (n = {n}, k = {k})");
    assert!(
        (0.0..=1.0).contains(&rewire),
        "rewire must be a probability"
    );

    let mut undirected: std::collections::BTreeSet<(NodeId, NodeId)> =
        std::collections::BTreeSet::new();
    let canon = |a: usize, b: usize| {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        (a as NodeId, b as NodeId)
    };
    for u in 0..n {
        for off in 1..=k {
            undirected.insert(canon(u, (u + off) % n));
        }
    }
    // Rewire pass: each original lattice edge may be replaced.
    let lattice: Vec<(NodeId, NodeId)> = undirected.iter().copied().collect();
    for (u, v) in lattice {
        if rewire > 0.0 && rng.gen_bool(rewire) {
            let mut guard = 0;
            loop {
                let w = rng.gen_range(0..n);
                guard += 1;
                if guard > 100 {
                    break;
                }
                let candidate = canon(u as usize, w);
                if w != u as usize && w != v as usize && !undirected.contains(&candidate) {
                    undirected.remove(&(u, v));
                    undirected.insert(candidate);
                    break;
                }
            }
        }
    }

    let mut b = GraphBuilder::new(n);
    for (u, v) in undirected {
        add_oriented(&mut b, u, v, rng);
    }
    b.build()
}

fn add_oriented<R: Rng + ?Sized>(b: &mut GraphBuilder, u: NodeId, v: NodeId, rng: &mut R) {
    if rng.gen_bool(0.5) {
        b.add_edge(u, v);
    } else {
        b.add_edge(v, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = (n * (n - 1)) as f64 * p;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt(),
            "m = {m}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).edge_count(), 90);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = erdos_renyi_gnm(50, 200, &mut rng);
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_too_many_edges_panics() {
        let mut rng = StdRng::seed_from_u64(14);
        erdos_renyi_gnm(3, 7, &mut rng);
    }

    #[test]
    fn ba_edge_count_and_hubs() {
        let mut rng = StdRng::seed_from_u64(15);
        let n = 200;
        let k = 3;
        let g = barabasi_albert(n, k, &mut rng);
        // Seed cycle contributes k + 1 edges; each later node contributes k.
        assert_eq!(g.edge_count(), (k + 1) + (n - k - 1) * k);
        let max_deg = g.nodes().map(|u| g.degree(u)).max().expect("nonempty");
        let mean_deg = g.mean_degree();
        assert!(
            max_deg as f64 > 3.0 * mean_deg,
            "preferential attachment should produce hubs: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn ws_without_rewiring_is_a_lattice() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = watts_strogatz(20, 2, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 40, "n·k undirected edges");
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4, "node {u}");
        }
    }

    #[test]
    fn ws_rewiring_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(18);
        let g = watts_strogatz(50, 3, 0.3, &mut rng);
        assert_eq!(g.edge_count(), 150);
    }

    #[test]
    fn ws_full_rewiring_breaks_the_lattice() {
        let mut rng = StdRng::seed_from_u64(19);
        let lattice = watts_strogatz(100, 3, 0.0, &mut rng);
        let random = watts_strogatz(100, 3, 1.0, &mut rng);
        let cc = crate::stats::global_clustering;
        assert!(
            cc(&lattice) > 2.0 * cc(&random).max(0.01),
            "lattice clustering {} vs rewired {}",
            cc(&lattice),
            cc(&random)
        );
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn ws_rejects_tiny_rings() {
        let mut rng = StdRng::seed_from_u64(20);
        watts_strogatz(4, 2, 0.1, &mut rng);
    }

    #[test]
    fn ba_small() {
        let mut rng = StdRng::seed_from_u64(16);
        let g = barabasi_albert(3, 1, &mut rng);
        assert_eq!(g.node_count(), 3);
        assert!(g.edge_count() >= 2);
    }
}
