#![warn(missing_docs)]
//! # diffnet-graph
//!
//! Directed-graph substrate for diffusion network inference.
//!
//! This crate provides the graph machinery that every other `diffnet` crate
//! builds on:
//!
//! * [`DiGraph`] — a compact, immutable directed graph in CSR (compressed
//!   sparse row) form with O(log d) edge queries and O(1) neighbor slices.
//! * [`GraphBuilder`] — incremental construction with deduplication and
//!   validation.
//! * [`generators`] — synthetic network generators, most importantly the
//!   [LFR benchmark](generators::lfr) used by the TENDS paper (Lancichinetti
//!   et al., *Phys. Rev. E* 2008), plus Erdős–Rényi, Barabási–Albert and
//!   configuration-model generators.
//! * [`stats`] — degree distributions, clustering, reciprocity and
//!   weak-connectivity statistics used to validate generated topologies.
//! * [`io`] — plain edge-list reading and writing.
//!
//! Nodes are dense indices `0..n` represented as [`NodeId`] (`u32`); this is
//! the natural fit for the inference algorithms, which treat the node set as
//! given and only infer edges.
//!
//! ## Example
//!
//! ```
//! use diffnet_graph::{DiGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(1, 3);
//! let g: DiGraph = b.build();
//!
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(1, 2));
//! assert_eq!(g.out_neighbors(1), &[2, 3]);
//! ```

mod digraph;
pub mod generators;
pub mod io;
pub mod stats;

pub use digraph::{DiGraph, EdgeIter, GraphBuilder, NodeId};
