//! Subcommand implementations.

use crate::args::{ArgError, ParsedArgs};
use diffnet_baselines::{Lift, MulTree, NetInf, NetRate, PathReconstruction};
use diffnet_graph::generators::{
    barabasi_albert, erdos_renyi_gnm, kronecker, watts_strogatz, KroneckerSeed, Lfr, Orientation,
};
use diffnet_graph::stats::GraphStats;
use diffnet_graph::DiGraph;
use diffnet_metrics::EdgeSetComparison;
use diffnet_observe::{CheckpointInfo, FaultPlan, Json, Recorder, RunReport};
use diffnet_serve::{Client, Limits, ServeConfig, Server};
use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade, LinearThreshold, ObservationSet};
use diffnet_tends::{
    estimate_propagation_probabilities, CorrelationMeasure, DirectionPolicy, EstimateConfig,
    RobustOptions, SearchParams, Tends, TendsConfig, ThresholdMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Duration;

/// Exit code for a partial reconstruction: the command produced output,
/// but some nodes failed and are listed in the report.
pub const EXIT_PARTIAL: i32 = 3;

/// The text a successful command prints, plus the process exit code it
/// should carry. Derefs to `str` so callers that only want the text can
/// treat it like one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandOutput {
    text: String,
    exit_code: i32,
}

impl CommandOutput {
    fn success(text: String) -> CommandOutput {
        CommandOutput { text, exit_code: 0 }
    }

    fn partial(text: String) -> CommandOutput {
        CommandOutput {
            text,
            exit_code: EXIT_PARTIAL,
        }
    }

    /// The exit code the process should terminate with: 0 on full
    /// success, [`EXIT_PARTIAL`] when the output is a degraded result.
    pub fn exit_code(&self) -> i32 {
        self.exit_code
    }
}

impl std::ops::Deref for CommandOutput {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

impl std::fmt::Display for CommandOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs a full command line (everything after the program name) and
/// returns the text to print on success together with the exit code.
pub fn run(argv: &[String]) -> Result<CommandOutput, ArgError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(ArgError::new("missing command; try `diffnet help`"));
    };
    // `trace` takes positional operands (`trace render FILE`), which the
    // flag parser rejects by design — dispatch it before parsing.
    if command == "trace" {
        return trace_cmd(rest).map(CommandOutput::success);
    }
    let parsed = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "generate" => generate(&parsed).map(CommandOutput::success),
        "simulate" => simulate(&parsed).map(CommandOutput::success),
        "infer" => infer(&parsed),
        "eval" => eval(&parsed).map(CommandOutput::success),
        "estimate" => estimate(&parsed).map(CommandOutput::success),
        "stats" => stats(&parsed).map(CommandOutput::success),
        "report-check" => report_check(&parsed).map(CommandOutput::success),
        "metrics-lint" => metrics_lint(&parsed).map(CommandOutput::success),
        "serve" => serve(&parsed).map(CommandOutput::success),
        "loadgen" => loadgen(&parsed).map(CommandOutput::success),
        "submit" => submit(&parsed),
        "job" => job_status(&parsed),
        "help" | "--help" | "-h" => Ok(CommandOutput::success(crate::USAGE.to_string())),
        other => Err(ArgError::new(format!(
            "unknown command {other:?}; try `diffnet help`"
        ))),
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> ArgError {
    ArgError::new(format!("{context}: {e}"))
}

fn load_graph(path: &str) -> Result<DiGraph, ArgError> {
    diffnet_graph::io::load_edge_list(path, None)
        .map_err(|e| io_err(&format!("cannot load graph {path:?}"), e))
}

fn generate(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&[
        "model",
        "out",
        "n",
        "k",
        "t",
        "m",
        "seed",
        "reciprocal",
        "mixing",
        "rewire",
        "power",
    ])?;
    let model = args.required("model")?;
    let out = args.required("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let graph = match model {
        "lfr" => {
            let n: usize = args.get_or("n", 200)?;
            let k: f64 = args.get_or("k", 4.0)?;
            let t: f64 = args.get_or("t", 2.0)?;
            let mut cfg = Lfr::new(n, k, t);
            cfg.mixing = args.get_or("mixing", cfg.mixing)?;
            if args.has_flag("reciprocal") {
                cfg.orientation = Orientation::Reciprocal;
            }
            cfg.generate(&mut rng)
                .map_err(|e| io_err("LFR generation failed", e))?
        }
        "er" => {
            let n: usize = args.get_or("n", 200)?;
            let m: usize = args.get_or("m", 4 * 200)?;
            erdos_renyi_gnm(n, m, &mut rng)
        }
        "ba" => {
            let n: usize = args.get_or("n", 200)?;
            let k: usize = args.get_or("k", 3)?;
            barabasi_albert(n, k, &mut rng)
        }
        "ws" => {
            let n: usize = args.get_or("n", 200)?;
            let k: usize = args.get_or("k", 3)?;
            let rewire: f64 = args.get_or("rewire", 0.1)?;
            watts_strogatz(n, k, rewire, &mut rng)
        }
        "kronecker" => {
            let power: u32 = args.get_or("power", 8)?;
            kronecker(&KroneckerSeed::core_periphery(), power, &mut rng)
        }
        "netsci" => diffnet_datasets::netsci_like(seed),
        "dunf" => diffnet_datasets::dunf_like(seed),
        other => {
            return Err(ArgError::new(format!(
                "unknown model {other:?} (lfr, er, ba, ws, kronecker, netsci, dunf)"
            )))
        }
    };

    diffnet_graph::io::save_edge_list(&graph, out)
        .map_err(|e| io_err(&format!("cannot write {out:?}"), e))?;
    Ok(format!(
        "generated {model} network: {} nodes, {} edges -> {out}",
        graph.node_count(),
        graph.edge_count()
    ))
}

fn simulate(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&[
        "graph",
        "out",
        "observations",
        "model",
        "alpha",
        "beta",
        "mu",
        "sigma",
        "seed",
    ])?;
    let graph = load_graph(args.required("graph")?)?;
    let out = args.required("out")?;
    let alpha: f64 = args.get_or("alpha", 0.15)?;
    let beta: usize = args.get_or("beta", 150)?;
    let mu: f64 = args.get_or("mu", 0.3)?;
    let sigma: f64 = args.get_or("sigma", 0.05)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let model = args.optional("model").unwrap_or("ic");

    let mut rng = StdRng::seed_from_u64(seed);
    let probs = EdgeProbs::gaussian(&graph, mu, sigma, &mut rng);
    let cfg = IcConfig {
        initial_ratio: alpha,
        num_processes: beta,
    };
    let obs = match model {
        "ic" => IndependentCascade::new(&graph, &probs).observe(cfg, &mut rng),
        "lt" => LinearThreshold::new(&graph, &probs).observe(cfg, &mut rng),
        other => {
            return Err(ArgError::new(format!(
                "unknown diffusion model {other:?} (ic, lt)"
            )))
        }
    };

    diffnet_simulate::io::save_status_matrix(&obs.statuses, out)
        .map_err(|e| io_err(&format!("cannot write {out:?}"), e))?;
    let mut report = format!(
        "simulated {beta} {model} processes on {} nodes (infected fraction {:.1}%) -> {out}",
        graph.node_count(),
        100.0 * obs.statuses.infected_fraction()
    );
    if let Some(obs_path) = args.optional("observations") {
        diffnet_simulate::io::save_observations(&obs, obs_path)
            .map_err(|e| io_err(&format!("cannot write {obs_path:?}"), e))?;
        report.push_str(&format!(
            "\nfull observations (cascades + sources) -> {obs_path}"
        ));
    }
    Ok(report)
}

fn load_observations_arg(args: &ParsedArgs, algo: &str) -> Result<ObservationSet, ArgError> {
    let path = args.optional("observations").ok_or_else(|| {
        ArgError::new(format!(
            "algorithm {algo:?} needs --observations (from `simulate --observations`)"
        ))
    })?;
    diffnet_simulate::io::load_observations(path)
        .map_err(|e| io_err(&format!("cannot load observations {path:?}"), e))
}

fn budget_arg(args: &ParsedArgs, algo: &str) -> Result<usize, ArgError> {
    args.optional("edges")
        .ok_or_else(|| ArgError::new(format!("algorithm {algo:?} needs --edges (the budget m)")))?
        .parse()
        .map_err(|_| ArgError::new("invalid value for --edges"))
}

/// Resolves the `--simd` override (falling back to `DIFFNET_SIMD`) and
/// installs it process-wide before any kernel use. Returns the resolved
/// kernel table so callers can report the dispatch tier.
fn resolve_simd(args: &ParsedArgs) -> Result<&'static diffnet_simulate::Kernels, ArgError> {
    match args.optional("simd") {
        Some(raw) => {
            let mode = diffnet_simulate::parse_simd(Some(raw)).map_err(|bad| {
                ArgError::new(format!(
                    "invalid value for --simd: {bad:?} (auto, avx2, popcnt, scalar)"
                ))
            })?;
            Ok(diffnet_simulate::simd::set_mode(mode))
        }
        None => Ok(diffnet_simulate::simd::kernels()),
    }
}

/// Resolves the `--memory-budget` byte budget (falling back to
/// `DIFFNET_MEMORY_BUDGET`). Accepts a `K`/`M`/`G` suffix: `512M`, `2G`.
/// Setting a budget switches `infer` onto the streamed IMI pipeline.
fn resolve_memory_budget(args: &ParsedArgs) -> Result<Option<u64>, ArgError> {
    if let Some(raw) = args.optional("memory-budget") {
        return diffnet_serve::parse_size(raw).map(Some).ok_or_else(|| {
            ArgError::new(format!(
                "invalid value for --memory-budget: {raw:?} (bytes with optional K/M/G suffix)"
            ))
        });
    }
    match std::env::var("DIFFNET_MEMORY_BUDGET") {
        Ok(raw) => diffnet_serve::parse_size(&raw).map(Some).ok_or_else(|| {
            ArgError::new(format!(
                "invalid DIFFNET_MEMORY_BUDGET: {raw:?} (bytes with optional K/M/G suffix)"
            ))
        }),
        Err(_) => Ok(None),
    }
}

/// Resolves the `--shard-index`/`--shard-count` pair: both or neither,
/// index strictly below count.
fn resolve_shard(args: &ParsedArgs) -> Result<Option<(usize, usize)>, ArgError> {
    match (args.optional("shard-index"), args.optional("shard-count")) {
        (None, None) => Ok(None),
        (Some(_), None) | (None, Some(_)) => Err(ArgError::new(
            "--shard-index and --shard-count must be given together",
        )),
        (Some(_), Some(_)) => {
            let index: usize = args.get_required("shard-index")?;
            let count: usize = args.get_required("shard-count")?;
            if count == 0 || index >= count {
                return Err(ArgError::new(format!(
                    "--shard-index {index} out of range for --shard-count {count}"
                )));
            }
            Ok(Some((index, count)))
        }
    }
}

fn infer(args: &ParsedArgs) -> Result<CommandOutput, ArgError> {
    args.expect_known(&[
        "statuses",
        "observations",
        "out",
        "algorithm",
        "edges",
        "threshold-scale",
        "mi",
        "threads",
        "symmetrize",
        "mutual-only",
        "trace",
        "run-report",
        "checkpoint",
        "resume",
        "checkpoint-interval",
        "simd",
        "memory-budget",
        "shard-index",
        "shard-count",
    ])?;
    let out = args.required("out")?;
    let algo = args.optional("algorithm").unwrap_or("tends");
    let simd_kernels = resolve_simd(args)?;
    if args.has_flag("resume") && args.optional("checkpoint").is_none() {
        return Err(ArgError::new("--resume needs --checkpoint FILE"));
    }
    if algo != "tends" {
        for opt in [
            "checkpoint",
            "checkpoint-interval",
            "memory-budget",
            "shard-index",
            "shard-count",
        ] {
            if args.optional(opt).is_some() {
                return Err(ArgError::new(format!(
                    "--{opt} is only supported by --algorithm tends"
                )));
            }
        }
    }
    let memory_budget = if algo == "tends" {
        resolve_memory_budget(args)?
    } else {
        None
    };
    let shard_spec = resolve_shard(args)?;
    let streamed = algo == "tends" && (memory_budget.is_some() || shard_spec.is_some());
    if shard_spec.is_some() && args.has_flag("mutual-only") {
        return Err(ArgError::new(
            "--mutual-only needs every node's parent set and cannot run on a shard; \
             run unsharded or post-process the merged edges",
        ));
    }

    // One recorder for the whole command: enabled only when the user asked
    // for observability, so the default path keeps the free no-op collector.
    // The streamed path also records, so eviction warnings can read the
    // candidate_evictions counter even without --trace/--run-report.
    let trace = args.has_flag("trace");
    let report_path = args.optional("run-report");
    let observing = trace || report_path.is_some();
    let owned_rec;
    let rec: &Recorder = if observing || streamed {
        owned_rec = Recorder::new();
        &owned_rec
    } else {
        Recorder::disabled()
    };
    // Resource profiling rides along with observability: window-scoped,
    // so the profile covers exactly this command's work.
    let profiler = observing.then(|| {
        diffnet_observe::ResourceProfiler::start(diffnet_observe::DEFAULT_SAMPLE_INTERVAL)
    });
    let mut report_threads = 1usize;
    // Degradation/checkpoint state filled in by the tends arm.
    let mut failed_nodes: Vec<u64> = Vec::new();
    let mut failure_notes: Vec<String> = Vec::new();
    let mut checkpoint_info: Option<CheckpointInfo> = None;
    let mut resumed_nodes = 0usize;

    let mut streamed_notes: Vec<String> = Vec::new();
    let (graph, detail) = match algo {
        "tends" => {
            let statuses_path = args.required("statuses")?;
            let threshold = match args.optional("threshold-scale") {
                Some(raw) => ThresholdMode::ScaledAuto(
                    raw.parse()
                        .map_err(|_| ArgError::new("invalid value for --threshold-scale"))?,
                ),
                None => ThresholdMode::Auto,
            };
            let direction = if args.has_flag("symmetrize") {
                DirectionPolicy::Symmetrize
            } else if args.has_flag("mutual-only") {
                DirectionPolicy::MutualOnly
            } else {
                DirectionPolicy::AsIs
            };
            let mut cfg = TendsConfig {
                correlation: if args.has_flag("mi") {
                    CorrelationMeasure::Mi
                } else {
                    CorrelationMeasure::Imi
                },
                threshold,
                search: SearchParams::default(),
                direction,
                threads: args.get_or("threads", 1)?,
                memory_budget,
                shard: None,
            };
            report_threads = cfg.threads.max(1);
            let fault = FaultPlan::from_env()
                .map_err(|e| ArgError::new(format!("invalid DIFFNET_FAULT: {e}")))?;
            let options = RobustOptions {
                checkpoint: args.optional("checkpoint").map(PathBuf::from),
                resume: args.has_flag("resume"),
                checkpoint_interval: args.get_or("checkpoint-interval", 8)?,
                fault: &fault,
                cancel: None,
                revision: 0,
            };
            let partial = if streamed {
                // Out-of-core: mmap the statuses straight into the column
                // bitsets — the row-major matrix and the dense correlation
                // matrix are never materialized.
                let cols = {
                    let _p = rec.phase("load_statuses");
                    diffnet_simulate::io::load_status_columns(statuses_path).map_err(|e| {
                        io_err(&format!("cannot load statuses {statuses_path:?}"), e)
                    })?
                };
                let shard = shard_spec.map(|(index, count)| {
                    diffnet_tends::plan_shards(cols.num_nodes(), count)[index]
                });
                cfg.shard = shard;
                if let Some(budget) = memory_budget {
                    let estimate = diffnet_tends::stream::estimate_streamed_bytes(
                        cols.num_nodes(),
                        cols.num_processes(),
                        shard.map_or(cols.num_nodes(), |s| s.len()),
                        cfg.threads,
                        cfg.search.max_candidates,
                        memory_budget,
                    );
                    if estimate > budget {
                        streamed_notes.push(format!(
                            "WARNING: estimated peak working set ≈ {} MiB exceeds \
                             --memory-budget {} MiB; split the run across more shards \
                             or fewer threads to stay within the budget",
                            estimate >> 20,
                            budget >> 20
                        ));
                    }
                }
                Tends::with_config(cfg)
                    .reconstruct_robust_from_columns(&cols, rec, &options)
                    .map_err(|e| ArgError::new(e.to_string()))?
            } else {
                let statuses = {
                    let _p = rec.phase("load_statuses");
                    diffnet_simulate::io::load_status_matrix(statuses_path).map_err(|e| {
                        io_err(&format!("cannot load statuses {statuses_path:?}"), e)
                    })?
                };
                Tends::with_config(cfg)
                    .reconstruct_robust(&statuses, rec, &options)
                    .map_err(|e| ArgError::new(e.to_string()))?
            };
            if streamed {
                let evicted = rec
                    .snapshot()
                    .counters
                    .get("candidate_evictions")
                    .copied()
                    .unwrap_or(0);
                if evicted > 0 {
                    streamed_notes.push(format!(
                        "WARNING: {evicted} above-τ candidate(s) dropped by the top-{} \
                         candidate bound; weak parents may be missed",
                        cfg.search.max_candidates
                    ));
                }
            }
            failed_nodes = partial.failed_nodes.iter().map(|&v| u64::from(v)).collect();
            failure_notes = partial
                .errors
                .iter()
                .map(|(v, e)| format!("node {v}: {e}"))
                .collect();
            resumed_nodes = partial.resumed_nodes;
            if let Some(path) = &options.checkpoint {
                checkpoint_info = Some(CheckpointInfo {
                    path: path.display().to_string(),
                    resumed_nodes: partial.resumed_nodes,
                    flushes: partial.checkpoint_flushes,
                    delta_records: partial.delta_records,
                });
            }
            let result = partial.result;
            (result.graph, format!("τ = {:.4}", result.tau))
        }
        "netrate" => {
            let obs = load_observations_arg(args, algo)?;
            let weighted = NetRate::new().infer_observed(&obs, rec);
            let m = budget_arg(args, algo)?;
            (
                weighted.top_m(m),
                format!("{} scored pairs", weighted.len()),
            )
        }
        "multree" => {
            let obs = load_observations_arg(args, algo)?;
            let m = budget_arg(args, algo)?;
            (MulTree::new().infer(&obs, m), String::new())
        }
        "lift" => {
            let obs = load_observations_arg(args, algo)?;
            let m = budget_arg(args, algo)?;
            (Lift::new().infer(&obs, m), String::new())
        }
        "netinf" => {
            let obs = load_observations_arg(args, algo)?;
            let m = budget_arg(args, algo)?;
            (NetInf::new().infer(&obs, m), String::new())
        }
        "path" => {
            let obs = load_observations_arg(args, algo)?;
            let m = budget_arg(args, algo)?;
            (PathReconstruction::new().infer(&obs, m), String::new())
        }
        other => {
            return Err(ArgError::new(format!(
                "unknown algorithm {other:?} (tends, netrate, multree, lift, netinf, path)"
            )))
        }
    };

    diffnet_graph::io::save_edge_list(&graph, out)
        .map_err(|e| io_err(&format!("cannot write {out:?}"), e))?;
    let mut report = format!("{algo}: inferred {} edges -> {out}", graph.edge_count());
    if !detail.is_empty() {
        report.push_str(&format!(" ({detail})"));
    }
    if resumed_nodes > 0 {
        report.push_str(&format!(
            "\nresumed {resumed_nodes} node(s) from checkpoint"
        ));
    }
    if !failed_nodes.is_empty() {
        report.push_str(&format!(
            "\nWARNING: partial reconstruction; {} node(s) failed: {failed_nodes:?}",
            failed_nodes.len()
        ));
        for note in &failure_notes {
            report.push_str(&format!("\n  {note}"));
        }
    }
    for note in &streamed_notes {
        report.push_str(&format!("\n{note}"));
    }

    if observing {
        let mut run_report = RunReport::new(algo, rec.snapshot(), report_threads);
        run_report.failed_nodes = failed_nodes.clone();
        run_report.checkpoint = checkpoint_info;
        let requested = diffnet_simulate::simd::requested_mode();
        if requested != diffnet_simulate::SimdMode::Auto {
            run_report.simd = Some(requested.to_string());
        }
        run_report.simd_dispatch = Some(simd_kernels.dispatch().to_string());
        if let Some(p) = profiler {
            run_report.resources = Some(p.stop());
        }
        if run_report.snapshot.phases.is_empty() {
            eprintln!("warning: algorithm {algo:?} is not instrumented; run report is empty");
        }
        if trace {
            eprint!("{}", run_report.render_trace());
        }
        if let Some(path) = report_path {
            std::fs::write(path, run_report.to_pretty_json())
                .map_err(|e| io_err(&format!("cannot write run report {path:?}"), e))?;
            report.push_str(&format!("\nrun report -> {path}"));
        }
    }
    Ok(if failed_nodes.is_empty() {
        CommandOutput::success(report)
    } else {
        CommandOutput::partial(report)
    })
}

fn eval(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&["truth", "inferred"])?;
    let truth = load_graph(args.required("truth")?)?;
    let inferred = load_graph(args.required("inferred")?)?;
    if truth.node_count() != inferred.node_count() {
        return Err(ArgError::new(format!(
            "node-count mismatch: truth has {}, inferred has {}",
            truth.node_count(),
            inferred.node_count()
        )));
    }
    let cmp = EdgeSetComparison::against_truth(&truth, &inferred);
    Ok(format!(
        "edges: truth {} / inferred {}\nTP {}  FP {}  FN {}\nprecision {:.4}  recall {:.4}  F-score {:.4}",
        truth.edge_count(),
        inferred.edge_count(),
        cmp.true_positives,
        cmp.false_positives,
        cmp.false_negatives,
        cmp.precision(),
        cmp.recall(),
        cmp.f_score()
    ))
}

fn estimate(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&["graph", "statuses", "out"])?;
    let graph = load_graph(args.required("graph")?)?;
    let statuses_path = args.required("statuses")?;
    let statuses = diffnet_simulate::io::load_status_matrix(statuses_path)
        .map_err(|e| io_err(&format!("cannot load statuses {statuses_path:?}"), e))?;
    if statuses.num_nodes() != graph.node_count() {
        return Err(ArgError::new(format!(
            "statuses cover {} nodes but the graph has {}",
            statuses.num_nodes(),
            graph.node_count()
        )));
    }
    let est = estimate_propagation_probabilities(&statuses, &graph, &EstimateConfig::default())
        .map_err(|e| ArgError::new(e.to_string()))?;
    let out = args.required("out")?;
    let mut text = String::from("# source target probability\n");
    for (u, v) in graph.edges() {
        let p = est.get(&graph, u, v).expect("edge exists");
        text.push_str(&format!("{u} {v} {p:.6}\n"));
    }
    std::fs::write(out, text).map_err(|e| io_err(&format!("cannot write {out:?}"), e))?;
    let mean = if est.edge_probs.is_empty() {
        0.0
    } else {
        est.edge_probs.iter().sum::<f64>() / est.edge_probs.len() as f64
    };
    Ok(format!(
        "estimated propagation probabilities for {} edges (mean {:.3}) -> {out}",
        graph.edge_count(),
        mean
    ))
}

fn stats(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&["graph"])?;
    let graph = load_graph(args.required("graph")?)?;
    let s = GraphStats::of(&graph);
    Ok(format!(
        "nodes {}\nedges {}\nmean out-degree {:.3}\ndegree std {:.3}\nmax degree {}\nreciprocity {:.3}\nclustering {:.3}\nweak components {}",
        s.nodes,
        s.edges,
        s.mean_out_degree,
        s.degree_std,
        s.max_degree,
        s.reciprocity,
        s.clustering,
        s.weak_components
    ))
}

/// Phases a TENDS run report must contain — the `report-check` default.
const TENDS_PHASES: &[&str] = &[
    "load_statuses",
    "status_columns",
    "correlation_matrix",
    "threshold",
    "candidate_pruning",
    "parent_search",
    "direction",
];

/// Counters that are non-zero on any TENDS run with at least one node —
/// the `report-check` default. (Every node scores at least its empty
/// parent set, which costs one workspace rebase and refinement and one
/// score-cache miss. Cache *hits* need a non-empty candidate set, so they
/// are not in the default list.)
const TENDS_NONZERO_COUNTERS: &[&str] = &[
    "combinations_scored",
    "workspace_refinements",
    "workspace_rebases",
    "score_cache_misses",
];

fn report_check(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&["report", "phases", "counters"])?;
    let path = args.required("report")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| io_err(&format!("cannot read report {path:?}"), e))?;
    let split = |raw: &str| -> Vec<String> {
        raw.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    };
    let phases: Vec<String> = match args.optional("phases") {
        Some(raw) => split(raw),
        None => TENDS_PHASES.iter().map(|s| s.to_string()).collect(),
    };
    let counters: Vec<String> = match args.optional("counters") {
        Some(raw) => split(raw),
        None => TENDS_NONZERO_COUNTERS
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let phase_refs: Vec<&str> = phases.iter().map(String::as_str).collect();
    let counter_refs: Vec<&str> = counters.iter().map(String::as_str).collect();
    diffnet_observe::validate_report_json(&text, &phase_refs, &counter_refs)
        .map_err(|e| ArgError::new(format!("run report {path:?} invalid: {e}")))?;
    Ok(format!(
        "report {path} OK: {} phase(s) timed, {} counter(s) non-zero",
        phase_refs.len(),
        counter_refs.len()
    ))
}

/// `diffnet trace render FILE [--timeline] [--collapsed]`: renders a
/// recorded span tree as a text timeline and/or flamegraph-collapsed
/// stacks. `FILE` may be a `--run-report` file, a `/v1/jobs/{id}/trace`
/// response, or a bare trace object.
fn trace_cmd(rest: &[String]) -> Result<String, ArgError> {
    const TRACE_USAGE: &str = "usage: diffnet trace render FILE [--timeline] [--collapsed]";
    let Some((action, rest)) = rest.split_first() else {
        return Err(ArgError::new(TRACE_USAGE));
    };
    if action != "render" {
        return Err(ArgError::new(format!(
            "unknown trace action {action:?}; {TRACE_USAGE}"
        )));
    }
    let Some((file, flags)) = rest.split_first() else {
        return Err(ArgError::new(TRACE_USAGE));
    };
    let args = ParsedArgs::parse(flags)?;
    args.expect_known(&["timeline", "collapsed"])?;
    let text = std::fs::read_to_string(file)
        .map_err(|e| io_err(&format!("cannot read trace {file:?}"), e))?;
    let root = diffnet_observe::parse_json(&text)
        .map_err(|e| ArgError::new(format!("trace {file:?} is not JSON: {e}")))?;
    let trace = root
        .get("runtime")
        .and_then(|r| r.get("trace"))
        .or_else(|| root.get("trace"))
        .unwrap_or(&root);
    let (spans, dropped) = diffnet_observe::spans_from_json(trace)
        .map_err(|e| ArgError::new(format!("trace {file:?} invalid: {e}")))?;
    let collapsed = args.has_flag("collapsed");
    let timeline = args.has_flag("timeline") || !collapsed;
    let mut out = String::new();
    if timeline {
        out.push_str(&diffnet_observe::render_timeline(&spans, dropped));
    }
    if collapsed {
        if timeline {
            out.push('\n');
        }
        out.push_str(&diffnet_observe::collapse_stacks(&spans));
    }
    Ok(out)
}

/// `diffnet metrics-lint --file FILE`: checks a scraped Prometheus text
/// exposition for format violations.
fn metrics_lint(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&["file"])?;
    let path = args.required("file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| io_err(&format!("cannot read exposition {path:?}"), e))?;
    let families = diffnet_observe::lint_exposition(&text)
        .map_err(|e| ArgError::new(format!("exposition {path:?} invalid: {e}")))?;
    Ok(format!("exposition {path} OK: {families} metric families"))
}

/// Parses an optional duration flag (`5s`, `750ms`, bare seconds) with a
/// default.
fn duration_arg(args: &ParsedArgs, key: &str, default: Duration) -> Result<Duration, ArgError> {
    match args.optional(key) {
        Some(raw) => diffnet_loadgen::parse_duration(raw)
            .map_err(|e| ArgError::new(format!("invalid value for --{key}: {e}"))),
        None => Ok(default),
    }
}

fn serve(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&[
        "addr",
        "data-dir",
        "http-workers",
        "job-workers",
        "max-body-bytes",
        "port-file",
        "simd",
        "slow-request-secs",
        "no-access-log",
        "max-connections",
        "max-inflight",
        "idle-timeout",
        "read-timeout",
        "drain-timeout",
        "max-queued-jobs",
    ])?;
    // Jobs run in-process, so the override applies to every job this
    // daemon executes.
    resolve_simd(args)?;
    let defaults = diffnet_serve::Tuning::default();
    let tuning = diffnet_serve::Tuning {
        max_connections: args.get_or("max-connections", defaults.max_connections)?,
        max_inflight_per_conn: args.get_or("max-inflight", defaults.max_inflight_per_conn)?,
        idle_timeout: duration_arg(args, "idle-timeout", defaults.idle_timeout)?,
        request_read_timeout: duration_arg(args, "read-timeout", defaults.request_read_timeout)?,
        drain_timeout: duration_arg(args, "drain-timeout", defaults.drain_timeout)?,
        ..defaults
    };
    let config = ServeConfig {
        addr: args
            .optional("addr")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        data_dir: PathBuf::from(args.required("data-dir")?),
        http_workers: args.get_or("http-workers", 4)?,
        job_workers: args.get_or("job-workers", 1)?,
        limits: Limits {
            max_body_bytes: args.get_or("max-body-bytes", Limits::default().max_body_bytes)?,
            ..Limits::default()
        },
        port_file: args.optional("port-file").map(PathBuf::from),
        slow_request_secs: args.get_or("slow-request-secs", 1.0)?,
        access_log: !args.has_flag("no-access-log"),
        tuning,
        max_queued_jobs: args.get_or("max-queued-jobs", ServeConfig::default().max_queued_jobs)?,
    };
    let server = Server::bind(&config).map_err(|e| io_err("cannot start server", e))?;
    let addr = server.addr();
    // Stderr, so scripts capturing stdout only see the final summary.
    eprintln!(
        "diffnet-serve listening on {addr} (data dir {})",
        config.data_dir.display()
    );
    server
        .serve_forever()
        .map_err(|e| io_err("server error", e))?;
    Ok(format!("server on {addr} stopped; jobs are resumable"))
}

/// `diffnet loadgen`: drive a running daemon with configurable traffic
/// and report throughput, latency percentiles, and error classes.
fn loadgen(args: &ParsedArgs) -> Result<String, ArgError> {
    args.expect_known(&[
        "server",
        "connections",
        "duration",
        "warmup",
        "repeats",
        "mix",
        "target-rps",
        "no-keep-alive",
        "timeout",
        "json",
    ])?;
    let addr = resolve_server(args)?;
    let mut config = diffnet_loadgen::LoadgenConfig::new(addr);
    config.connections = args.get_or("connections", config.connections)?;
    config.duration = duration_arg(args, "duration", config.duration)?;
    config.warmup = duration_arg(args, "warmup", config.warmup)?;
    config.repeats = args.get_or("repeats", config.repeats)?;
    config.keep_alive = !args.has_flag("no-keep-alive");
    config.timeout = duration_arg(args, "timeout", config.timeout)?;
    if let Some(raw) = args.optional("target-rps") {
        let rps: f64 = raw
            .parse()
            .map_err(|_| ArgError::new("invalid value for --target-rps"))?;
        if !rps.is_finite() || rps <= 0.0 {
            return Err(ArgError::new("--target-rps must be positive"));
        }
        config.target_rps = Some(rps);
    }
    if let Some(spec) = args.optional("mix") {
        config.mix = diffnet_loadgen::Mix::parse(spec)
            .map_err(|e| ArgError::new(format!("invalid --mix: {e}")))?;
    }
    let summary = diffnet_loadgen::run(&config).map_err(|e| io_err("load run failed", e))?;
    if args.has_flag("json") {
        return Ok(summary.to_json(&config).to_pretty());
    }
    let mut text = String::new();
    for (i, r) in summary.reports.iter().enumerate() {
        text.push_str(&format!(
            "window {i}: {} req in {:.2}s — {:.1} rps ok ({:.1} total) \
             p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms \
             [429:{} 503:{} 4xx:{} 5xx:{} timeout:{} io:{}]\n",
            r.requests,
            r.elapsed.as_secs_f64(),
            r.ok_rps(),
            r.total_rps(),
            r.hist.quantile(0.50) * 1e3,
            r.hist.quantile(0.95) * 1e3,
            r.hist.quantile(0.99) * 1e3,
            r.status_429,
            r.status_503,
            r.other_4xx,
            r.other_5xx,
            r.timeouts,
            r.io_errors,
        ));
    }
    let best = summary.best();
    text.push_str(&format!(
        "best: {:.1} rps over {} connections ({})",
        best.ok_rps(),
        config.connections,
        if config.keep_alive {
            "keep-alive"
        } else {
            "reconnect per request"
        }
    ));
    Ok(text)
}

fn resolve_server(args: &ParsedArgs) -> Result<std::net::SocketAddr, ArgError> {
    use std::net::ToSocketAddrs;
    let raw = args.required("server")?;
    raw.to_socket_addrs()
        .map_err(|e| io_err(&format!("cannot resolve --server {raw:?}"), e))?
        .next()
        .ok_or_else(|| ArgError::new(format!("--server {raw:?} resolved to no address")))
}

fn submit(args: &ParsedArgs) -> Result<CommandOutput, ArgError> {
    args.expect_known(&[
        "server",
        "statuses",
        "observations",
        "algorithm",
        "threads",
        "checkpoint-interval",
        "edges",
        "memory-budget",
        "shards",
        "merged-out",
        "wait",
        "timeout-secs",
    ])?;
    let addr = resolve_server(args)?;
    let algo = args.optional("algorithm").unwrap_or("tends");
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(ArgError::new("--shards must be at least 1"));
    }
    if algo != "tends" {
        for opt in ["memory-budget", "shards"] {
            if args.optional(opt).is_some() {
                return Err(ArgError::new(format!(
                    "--{opt} is only supported by --algorithm tends"
                )));
            }
        }
    }
    if args.optional("merged-out").is_some() && (shards < 2 || !args.has_flag("wait")) {
        return Err(ArgError::new(
            "--merged-out needs --shards >= 2 and --wait (it unions the shard edge lists)",
        ));
    }
    let input = if algo == "tends" {
        args.required("statuses")?
    } else {
        args.optional("observations")
            .ok_or_else(|| ArgError::new(format!("algorithm {algo:?} needs --observations")))?
    };
    let body = std::fs::read(input).map_err(|e| io_err(&format!("cannot read {input:?}"), e))?;
    let mut base_query = format!("/v1/jobs?algorithm={algo}");
    for key in ["threads", "checkpoint-interval", "edges", "memory-budget"] {
        if let Some(value) = args.optional(key) {
            base_query.push_str(&format!("&{key}={value}"));
        }
    }
    let client = Client::new(addr);

    // Submit one job per shard (one logical reconstruction split across
    // the daemon's job queue); unsharded submissions are the 1-shard case.
    let mut ids = Vec::with_capacity(shards);
    let mut text = String::new();
    for index in 0..shards {
        let mut query = base_query.clone();
        if shards > 1 {
            query.push_str(&format!("&shard-index={index}&shard-count={shards}"));
        }
        let (status, json) = client
            .post_json(&query, &body)
            .map_err(|e| io_err("submit failed", e))?;
        if status != 201 {
            return Err(ArgError::new(format!(
                "server rejected submission ({status}): {}",
                json.to_pretty().trim()
            )));
        }
        let id = json.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        if shards > 1 {
            text.push_str(&format!(
                "job {id} submitted ({algo} shard {index}/{shards}) to {addr}\n"
            ));
        } else {
            text.push_str(&format!("job {id} submitted ({algo}) to {addr}\n"));
        }
        ids.push(id);
    }
    let mut text = text.trim_end().to_string();
    if !args.has_flag("wait") {
        return Ok(CommandOutput::success(text));
    }

    let deadline = Duration::from_secs(args.get_or("timeout-secs", 600)?);
    let mut any_partial = false;
    for &id in &ids {
        let final_json = client
            .wait_for_job(id, deadline)
            .map_err(|e| io_err("waiting for job", e))?;
        let state = final_json
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        text.push_str(&format!("\njob {id} finished: {state}"));
        match state.as_str() {
            "failed" => {
                return Err(ArgError::new(format!(
                    "job {id} failed: {}",
                    final_json
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                )))
            }
            "partial" => any_partial = true,
            _ => {}
        }
    }

    // Merge step: shard edge lists are disjoint views of one global
    // reconstruction, so their sorted union is the full edge set.
    if let Some(merged_out) = args.optional("merged-out") {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut nodes = 0usize;
        for &id in &ids {
            let (status, bytes) = client
                .get(&format!("/v1/jobs/{id}/edges"))
                .map_err(|e| io_err(&format!("cannot fetch job {id} edges"), e))?;
            if status != 200 {
                return Err(ArgError::new(format!(
                    "server returned {status} for job {id} edges: {}",
                    String::from_utf8_lossy(&bytes).trim()
                )));
            }
            let part = diffnet_graph::io::read_edge_list(&bytes[..], None)
                .map_err(|e| io_err(&format!("cannot parse job {id} edges"), e))?;
            nodes = nodes.max(part.node_count());
            edges.extend(part.edges());
        }
        edges.sort_unstable();
        edges.dedup();
        let merged = DiGraph::from_edges(nodes, &edges);
        diffnet_graph::io::save_edge_list(&merged, merged_out)
            .map_err(|e| io_err(&format!("cannot write {merged_out:?}"), e))?;
        text.push_str(&format!(
            "\nmerged {} edges from {} shard(s) -> {merged_out}",
            merged.edge_count(),
            ids.len()
        ));
    }
    if any_partial {
        Ok(CommandOutput::partial(text))
    } else {
        Ok(CommandOutput::success(text))
    }
}

fn job_status(args: &ParsedArgs) -> Result<CommandOutput, ArgError> {
    args.expect_known(&[
        "server",
        "id",
        "wait",
        "timeout-secs",
        "edges-out",
        "report-out",
    ])?;
    let addr = resolve_server(args)?;
    let id: u64 = args.get_required("id")?;
    let client = Client::new(addr);
    let json = if args.has_flag("wait") {
        let deadline = Duration::from_secs(args.get_or("timeout-secs", 600)?);
        client
            .wait_for_job(id, deadline)
            .map_err(|e| io_err("waiting for job", e))?
    } else {
        let (status, json) = client
            .get_json(&format!("/v1/jobs/{id}"))
            .map_err(|e| io_err("status query failed", e))?;
        if status != 200 {
            return Err(ArgError::new(format!(
                "server returned {status}: {}",
                json.to_pretty().trim()
            )));
        }
        json
    };
    let state = json
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let mut text = json.to_pretty().trim_end().to_string();
    for (key, route, label) in [
        ("edges-out", "edges", "edges"),
        ("report-out", "report", "run report"),
    ] {
        let Some(path) = args.optional(key) else {
            continue;
        };
        let (status, bytes) = client
            .get(&format!("/v1/jobs/{id}/{route}"))
            .map_err(|e| io_err(&format!("cannot fetch job {label}"), e))?;
        if status != 200 {
            return Err(ArgError::new(format!(
                "server returned {status} for job {id} {label}: {}",
                String::from_utf8_lossy(&bytes).trim()
            )));
        }
        std::fs::write(path, &bytes).map_err(|e| io_err(&format!("cannot write {path:?}"), e))?;
        text.push_str(&format!("\n{label} -> {path}"));
    }
    if state == "partial" {
        Ok(CommandOutput::partial(text))
    } else {
        Ok(CommandOutput::success(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<CommandOutput, ArgError> {
        let owned: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("diffnet_cli_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_tokens(&["help"]).expect("help");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run_tokens(&["frobnicate"]).is_err());
    }

    #[test]
    fn full_pipeline_round_trip() {
        let truth = tmp("truth.edges");
        let statuses = tmp("statuses.txt");
        let obs = tmp("obs.txt");
        let inferred = tmp("inferred.edges");

        let g = run_tokens(&[
            "generate",
            "--model",
            "lfr",
            "--n",
            "60",
            "--k",
            "4",
            "--t",
            "2",
            "--seed",
            "5",
            "--reciprocal",
            "--out",
            &truth,
        ])
        .expect("generate");
        assert!(g.contains("60 nodes"));

        let s = run_tokens(&[
            "simulate",
            "--graph",
            &truth,
            "--alpha",
            "0.2",
            "--beta",
            "120",
            "--mu",
            "0.35",
            "--seed",
            "6",
            "--out",
            &statuses,
            "--observations",
            &obs,
        ])
        .expect("simulate");
        assert!(s.contains("120 ic processes"));

        let i = run_tokens(&["infer", "--statuses", &statuses, "--out", &inferred]).expect("infer");
        assert!(i.contains("tends"));

        let e = run_tokens(&["eval", "--truth", &truth, "--inferred", &inferred]).expect("eval");
        assert!(e.contains("F-score"));
        let f: f64 = e
            .lines()
            .last()
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .expect("parse F");
        assert!(f > 0.4, "pipeline F-score {f} too low:\n{e}");

        // Cascade-based algorithm through the same files.
        let i2 = run_tokens(&[
            "infer",
            "--algorithm",
            "multree",
            "--observations",
            &obs,
            "--edges",
            "200",
            "--out",
            &inferred,
        ])
        .expect("multree infer");
        assert!(i2.contains("multree"));
    }

    #[test]
    fn run_report_round_trip_through_report_check() {
        let truth = tmp("report_truth.edges");
        let statuses = tmp("report_statuses.txt");
        let inferred = tmp("report_inferred.edges");
        let report = tmp("report_run.json");

        run_tokens(&[
            "generate", "--model", "er", "--n", "30", "--m", "60", "--seed", "9", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate", "--graph", &truth, "--beta", "100", "--seed", "10", "--out", &statuses,
        ])
        .expect("simulate");
        let out = run_tokens(&[
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &inferred,
            "--run-report",
            &report,
        ])
        .expect("infer with report");
        assert!(out.contains("run report ->"));

        // The emitted JSON passes the default TENDS schema check...
        let check = run_tokens(&["report-check", "--report", &report]).expect("report-check");
        assert!(check.contains("OK"));

        // ...and contains the headline observability values.
        let text = std::fs::read_to_string(&report).expect("report written");
        let json = diffnet_observe::parse_json(&text).expect("valid JSON");
        assert!(json.get("values").and_then(|v| v.get("tau")).is_some());
        assert!(json
            .get("histograms")
            .and_then(|h| h.get("candidate_set_size"))
            .is_some());
        assert!(json
            .get("runtime")
            .and_then(|r| r.get("worker_chunks"))
            .and_then(|c| c.get("parent_search"))
            .is_some());

        // Asking for a counter the run cannot produce fails the check.
        let err = run_tokens(&[
            "report-check",
            "--report",
            &report,
            "--counters",
            "no_such_counter",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("no_such_counter"));
    }

    #[test]
    fn report_check_rejects_non_json() {
        let bogus = tmp("bogus_report.json");
        std::fs::write(&bogus, "not json at all").expect("write");
        let err = run_tokens(&["report-check", "--report", &bogus]).unwrap_err();
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn netrate_report_contains_its_phases() {
        let truth = tmp("nr_truth.edges");
        let statuses = tmp("nr_statuses.txt");
        let obs = tmp("nr_obs.txt");
        let inferred = tmp("nr_inferred.edges");
        let report = tmp("nr_run.json");
        run_tokens(&[
            "generate", "--model", "er", "--n", "20", "--m", "40", "--seed", "11", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate",
            "--graph",
            &truth,
            "--beta",
            "80",
            "--seed",
            "12",
            "--out",
            &statuses,
            "--observations",
            &obs,
        ])
        .expect("simulate");
        run_tokens(&[
            "infer",
            "--algorithm",
            "netrate",
            "--observations",
            &obs,
            "--edges",
            "40",
            "--out",
            &inferred,
            "--run-report",
            &report,
        ])
        .expect("netrate infer");
        let check = run_tokens(&[
            "report-check",
            "--report",
            &report,
            "--phases",
            "netrate_compile,netrate_ascent",
            "--counters",
            "netrate_pairs,netrate_iterations",
        ])
        .expect("netrate report-check");
        assert!(check.contains("OK"));
    }

    #[test]
    fn stats_reports_counts() {
        let truth = tmp("stats.edges");
        run_tokens(&[
            "generate", "--model", "er", "--n", "30", "--m", "90", "--out", &truth,
        ])
        .expect("generate");
        let out = run_tokens(&["stats", "--graph", &truth]).expect("stats");
        assert!(out.contains("nodes 30"));
        assert!(out.contains("edges 90"));
    }

    #[test]
    fn cascade_algorithms_require_observations() {
        let err = run_tokens(&["infer", "--algorithm", "netrate", "--out", "x"]).unwrap_err();
        assert!(err.to_string().contains("--observations"));
    }

    #[test]
    fn budget_algorithms_require_edges() {
        let obs = tmp("need_edges_obs.txt");
        let truth = tmp("need_edges.edges");
        run_tokens(&[
            "generate", "--model", "er", "--n", "20", "--m", "40", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate",
            "--graph",
            &truth,
            "--beta",
            "10",
            "--out",
            &tmp("need_edges_statuses.txt"),
            "--observations",
            &obs,
        ])
        .expect("simulate");
        let err = run_tokens(&[
            "infer",
            "--algorithm",
            "lift",
            "--observations",
            &obs,
            "--out",
            "x",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--edges"));
    }

    #[test]
    fn lt_model_simulates() {
        let truth = tmp("lt.edges");
        run_tokens(&[
            "generate", "--model", "ba", "--n", "40", "--k", "2", "--out", &truth,
        ])
        .expect("generate");
        let out = run_tokens(&[
            "simulate",
            "--graph",
            &truth,
            "--model",
            "lt",
            "--beta",
            "20",
            "--out",
            &tmp("lt_statuses.txt"),
        ])
        .expect("simulate lt");
        assert!(out.contains("lt processes"));
    }

    #[test]
    fn estimate_writes_probability_file() {
        let truth = tmp("est_truth.edges");
        let statuses = tmp("est_statuses.txt");
        let out = tmp("est_probs.txt");
        run_tokens(&[
            "generate", "--model", "er", "--n", "25", "--m", "75", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate", "--graph", &truth, "--beta", "80", "--out", &statuses,
        ])
        .expect("simulate");
        let report = run_tokens(&[
            "estimate",
            "--graph",
            &truth,
            "--statuses",
            &statuses,
            "--out",
            &out,
        ])
        .expect("estimate");
        assert!(report.contains("75 edges"));
        let content = std::fs::read_to_string(&out).expect("file written");
        // Header plus one line per edge, each with a parsable probability.
        let lines: Vec<&str> = content.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 75);
        for l in lines {
            let p: f64 = l
                .split_whitespace()
                .nth(2)
                .expect("prob column")
                .parse()
                .expect("parsable");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn checkpoint_then_resume_is_byte_identical() {
        let truth = tmp("ck_truth.edges");
        let statuses = tmp("ck_statuses.txt");
        let fresh = tmp("ck_fresh.edges");
        let resumed = tmp("ck_resumed.edges");
        let ck = tmp("ck.json");
        let _ = std::fs::remove_file(&ck);
        run_tokens(&[
            "generate", "--model", "er", "--n", "30", "--m", "60", "--seed", "21", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate", "--graph", &truth, "--beta", "100", "--seed", "22", "--out", &statuses,
        ])
        .expect("simulate");
        let first = run_tokens(&[
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &fresh,
            "--checkpoint",
            &ck,
            "--checkpoint-interval",
            "4",
        ])
        .expect("infer with checkpoint");
        assert_eq!(first.exit_code(), 0);
        // The second run restores every node from the finished checkpoint
        // and must reproduce the edge list byte for byte.
        let second = run_tokens(&[
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &resumed,
            "--checkpoint",
            &ck,
            "--resume",
        ])
        .expect("resumed infer");
        assert!(second.contains("resumed 30 node(s)"), "{}", &*second);
        assert_eq!(
            std::fs::read(&fresh).expect("fresh"),
            std::fs::read(&resumed).expect("resumed")
        );
    }

    #[test]
    fn resume_requires_checkpoint() {
        let err = run_tokens(&["infer", "--statuses", "x", "--out", "y", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("--checkpoint"));
    }

    #[test]
    fn streamed_infer_matches_dense_infer_byte_for_byte() {
        let truth = tmp("stream_truth.edges");
        let statuses = tmp("stream_statuses.txt");
        let dense = tmp("stream_dense.edges");
        let streamed = tmp("stream_streamed.edges");
        let report = tmp("stream_run.json");
        run_tokens(&[
            "generate", "--model", "er", "--n", "40", "--m", "80", "--seed", "31", "--out", &truth,
        ])
        .expect("generate");
        run_tokens(&[
            "simulate", "--graph", &truth, "--beta", "110", "--seed", "32", "--out", &statuses,
        ])
        .expect("simulate");
        run_tokens(&["infer", "--statuses", &statuses, "--out", &dense]).expect("dense infer");
        let out = run_tokens(&[
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &streamed,
            "--memory-budget",
            "16M",
            "--run-report",
            &report,
        ])
        .expect("streamed infer");
        assert_eq!(out.exit_code(), 0);
        assert_eq!(
            std::fs::read(&dense).expect("dense edges"),
            std::fs::read(&streamed).expect("streamed edges"),
            "streamed pipeline must reproduce the dense edge list byte for byte"
        );

        // The streamed run report has its own phase sequence; report-check
        // passes with the streamed phase list.
        let check = run_tokens(&[
            "report-check",
            "--report",
            &report,
            "--phases",
            "load_statuses,tau_sample,streamed_fold,parent_search,direction",
            "--counters",
            "tau_sample_pairs,correlation_pairs,combinations_scored",
        ])
        .expect("streamed report-check");
        assert!(check.contains("OK"));

        // Sharded runs under the same budget union to the same edge set.
        let mut union: Vec<(u32, u32)> = Vec::new();
        for index in 0..3 {
            let part = tmp(&format!("stream_shard{index}.edges"));
            run_tokens(&[
                "infer",
                "--statuses",
                &statuses,
                "--out",
                &part,
                "--memory-budget",
                "16M",
                "--shard-index",
                &index.to_string(),
                "--shard-count",
                "3",
            ])
            .expect("shard infer");
            let g = diffnet_graph::io::load_edge_list(&part, None).expect("parse shard");
            assert_eq!(g.node_count(), 40, "shard output keeps the global n");
            union.extend(g.edges());
        }
        union.sort_unstable();
        union.dedup();
        let dense_graph = diffnet_graph::io::load_edge_list(&dense, None).expect("parse dense");
        assert_eq!(union, dense_graph.edge_vec());
    }

    #[test]
    fn streamed_options_are_validated() {
        let err = run_tokens(&[
            "infer",
            "--statuses",
            "x",
            "--out",
            "y",
            "--memory-budget",
            "12Q",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("12Q"), "{err}");

        let err = run_tokens(&[
            "infer",
            "--statuses",
            "x",
            "--out",
            "y",
            "--shard-index",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--shard-count"), "{err}");

        let err = run_tokens(&[
            "infer",
            "--statuses",
            "x",
            "--out",
            "y",
            "--shard-index",
            "3",
            "--shard-count",
            "3",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        let err = run_tokens(&[
            "infer",
            "--statuses",
            "x",
            "--out",
            "y",
            "--shard-index",
            "0",
            "--shard-count",
            "2",
            "--mutual-only",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--mutual-only"), "{err}");

        let err = run_tokens(&[
            "infer",
            "--algorithm",
            "netrate",
            "--out",
            "y",
            "--memory-budget",
            "1G",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("tends"), "{err}");

        let err = run_tokens(&[
            "submit",
            "--server",
            "127.0.0.1:1",
            "--statuses",
            "x",
            "--shards",
            "0",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");

        let err = run_tokens(&[
            "submit",
            "--server",
            "127.0.0.1:1",
            "--statuses",
            "x",
            "--shards",
            "2",
            "--merged-out",
            "m.edges",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--wait"), "{err}");
    }

    #[test]
    fn checkpoint_is_tends_only() {
        let err = run_tokens(&[
            "infer",
            "--algorithm",
            "netrate",
            "--out",
            "y",
            "--checkpoint",
            "c",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("tends"));
    }

    #[test]
    fn invalid_simd_mode_is_rejected_before_any_work() {
        // Parse failure must surface as a typed ArgError (and must not
        // install anything in the process-wide dispatcher — the tests in
        // this binary share it).
        let err =
            run_tokens(&["infer", "--statuses", "x", "--out", "y", "--simd", "sse9"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sse9") && msg.contains("scalar"), "{msg}");
    }

    #[test]
    fn unknown_options_are_rejected_per_command() {
        let err = run_tokens(&["eval", "--truth", "a", "--bogus", "b"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn hostile_in_degree_fails_cleanly_not_abort() {
        // A user-supplied topology can declare any in-degree; the noisy-OR
        // sufficient statistics are 2^{in-degree} counts per node, so a
        // 26-parent hub must surface as a command error (exercising the
        // typed ComboSizeError path), never a process abort.
        let truth = tmp("hostile_truth.edges");
        let statuses = tmp("hostile_statuses.txt");
        let edges: Vec<(u32, u32)> = (0..26).map(|u| (u, 26)).collect();
        let g = diffnet_graph::DiGraph::from_edges(27, &edges);
        diffnet_graph::io::save_edge_list(&g, &truth).expect("write graph");
        let m = diffnet_simulate::StatusMatrix::new(10, 27);
        diffnet_simulate::io::save_status_matrix(&m, &statuses).expect("write statuses");
        let err = run_tokens(&[
            "estimate",
            "--graph",
            &truth,
            "--statuses",
            &statuses,
            "--out",
            &tmp("hostile_probs.txt"),
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("26") && msg.contains("too large"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn trace_render_renders_timeline_and_collapsed() {
        let path = tmp("trace_render.json");
        // A bare trace object, as returned by GET /v1/jobs/{id}/trace.
        std::fs::write(
            &path,
            r#"{"spans":[
                {"id":1,"parent":null,"name":"parent_search","start_s":0.0,"end_s":1.0,"thread":"main","attrs":{}},
                {"id":2,"parent":1,"name":"node_search","start_s":0.1,"end_s":0.9,"thread":"worker-0","attrs":{"node":3}}
            ],"dropped":0}"#,
        )
        .expect("write trace");

        let timeline = run_tokens(&["trace", "render", &path]).expect("timeline");
        let text = timeline.to_string();
        assert!(text.contains("parent_search"), "timeline:\n{text}");
        assert!(text.contains("node_search"));

        let collapsed = run_tokens(&["trace", "render", &path, "--collapsed"]).expect("collapsed");
        assert!(
            collapsed.to_string().contains("parent_search;node_search"),
            "collapsed stacks:\n{collapsed}"
        );

        // The same trace nested under runtime.trace (a run report) works too.
        let report_path = tmp("trace_render_report.json");
        let inner = std::fs::read_to_string(&path).expect("read back");
        std::fs::write(
            &report_path,
            format!("{{\"runtime\":{{\"trace\":{inner}}}}}"),
        )
        .expect("write report");
        let nested = run_tokens(&["trace", "render", &report_path]).expect("nested");
        assert!(nested.to_string().contains("parent_search"));

        // Missing action / unknown action are argument errors.
        assert!(run_tokens(&["trace"]).is_err());
        let err = run_tokens(&["trace", "frobnicate", &path]).unwrap_err();
        assert!(err.to_string().contains("unknown trace action"));
    }

    #[test]
    fn metrics_lint_accepts_good_and_rejects_bad() {
        let good = tmp("lint_good.prom");
        std::fs::write(
            &good,
            "# HELP diffnet_jobs_submitted jobs submitted.\n\
             # TYPE diffnet_jobs_submitted counter\n\
             diffnet_jobs_submitted 3\n",
        )
        .expect("write good");
        let out = run_tokens(&["metrics-lint", "--file", &good]).expect("lint good");
        assert!(out.contains("metric families"), "output: {out}");

        let bad = tmp("lint_bad.prom");
        std::fs::write(
            &bad,
            "# TYPE diffnet_x counter\n# TYPE diffnet_x gauge\ndiffnet_x 1\n",
        )
        .expect("write bad");
        let err = run_tokens(&["metrics-lint", "--file", &bad]).unwrap_err();
        assert!(err.to_string().contains("invalid"), "error: {err}");
    }
}
