#![warn(missing_docs)]
//! # diffnet-cli
//!
//! The `diffnet` command-line tool: generate diffusion networks, simulate
//! diffusion processes, infer topologies from the observations, and
//! evaluate inferred edge sets — each step reading and writing plain text
//! files so pipelines compose with standard tooling.
//!
//! ```sh
//! diffnet generate --model lfr --n 200 --k 4 --t 2 --seed 1 --out truth.edges
//! diffnet simulate --graph truth.edges --alpha 0.15 --beta 150 --mu 0.3 \
//!     --seed 2 --out statuses.txt --observations obs.txt
//! diffnet infer --statuses statuses.txt --out inferred.edges
//! diffnet eval --truth truth.edges --inferred inferred.edges
//! ```

mod args;
mod commands;

pub use args::{ArgError, ParsedArgs};
pub use commands::{run, CommandOutput, EXIT_PARTIAL};

/// Usage text printed by `diffnet help` and on errors.
pub const USAGE: &str = "\
diffnet — diffusion network inference toolkit (TENDS, ICDE 2020)

USAGE:
  diffnet <command> [--option value ...]

COMMANDS:
  generate   Generate a diffusion network
             --model lfr|er|ba|ws|kronecker|netsci|dunf  --out FILE
             [--n N] [--k K] [--t T] [--m M] [--mixing X] [--rewire X]
             [--power P] [--seed S] [--reciprocal]
  simulate   Simulate diffusion processes on a network
             --graph FILE  --out FILE  [--observations FILE] [--model ic|lt]
             [--alpha A] [--beta B] [--mu MU] [--sigma SD] [--seed S]
  infer      Infer a topology from observations
             --statuses FILE --out FILE  [--algorithm tends|netrate|multree|lift|netinf|path]
             [--observations FILE] [--edges M] [--threshold-scale X] [--mi]
             [--threads T] [--simd auto|avx2|popcnt|scalar]
             [--symmetrize | --mutual-only]
             [--memory-budget BYTES[K|M|G]] [--shard-index I --shard-count S]
             [--trace] [--run-report FILE]
             [--checkpoint FILE] [--resume] [--checkpoint-interval N]
  eval       Score an inferred edge set against the ground truth
             --truth FILE --inferred FILE
  report-check  Validate a --run-report JSON file (schema + counters)
             --report FILE  [--phases a,b,...] [--counters a,b,...]
  trace      Render a recorded span tree (run report or /trace response)
             trace render FILE  [--timeline] [--collapsed]
  metrics-lint  Lint a scraped Prometheus text exposition
             --file FILE
  estimate   Fit per-edge propagation probabilities for a topology
             --graph FILE --statuses FILE --out FILE
  stats      Print summary statistics of a network
             --graph FILE
  serve      Run the inference daemon (HTTP/1.1 job API over TCP)
             --data-dir DIR  [--addr HOST:PORT] [--http-workers N]
             [--job-workers N] [--max-body-bytes N] [--port-file FILE]
             [--simd auto|avx2|popcnt|scalar]
             [--slow-request-secs S] [--no-access-log]
             [--max-connections N] [--max-inflight N] [--max-queued-jobs N]
             [--idle-timeout DUR] [--read-timeout DUR] [--drain-timeout DUR]
  loadgen    Drive a running daemon with generated traffic
             --server HOST:PORT  [--connections N] [--duration DUR]
             [--warmup DUR] [--repeats N] [--mix healthz|submit|append
             or weighted, e.g. healthz=9,submit=1] [--target-rps R]
             [--no-keep-alive] [--timeout DUR] [--json]
  submit     Submit a job to a running daemon
             --server HOST:PORT  --statuses FILE | --observations FILE
             [--algorithm A] [--threads T] [--checkpoint-interval N]
             [--edges M] [--memory-budget BYTES[K|M|G]]
             [--shards S [--merged-out FILE]] [--wait] [--timeout-secs S]
  job        Query a job on a running daemon (and fetch its outputs)
             --server HOST:PORT  --id N  [--wait] [--timeout-secs S]
             [--edges-out FILE] [--report-out FILE]
  help       Show this message

Cascade-based algorithms (netrate, multree, netinf, path) and lift need
--observations (written by `simulate --observations`); tends needs only
--statuses. multree/lift/netinf/path need --edges (the budget m).

Observability: `infer --trace` prints per-phase wall times and counters to
stderr; `infer --run-report FILE` writes the structured JSON run report
(instrumented algorithms: tends, netrate), which carries a nested span
tree under `runtime.trace` and an RSS/CPU resource profile under
`runtime.resources`. `report-check` validates such a file (including the
trace and resource schemas) and exits non-zero on violations. `trace
render` turns a recorded span tree into a text timeline (default) or
flamegraph-collapsed stacks (`--collapsed`); `metrics-lint` checks a
scraped /v1/metrics exposition for format violations.

SIMD: the bit-counting kernels pick the fastest tier the CPU supports
(AVX2, then POPCNT, then portable scalar) at startup. `--simd MODE` or
DIFFNET_SIMD=MODE forces a tier; every tier produces bit-identical output,
so `scalar` is a safe cross-check. The requested mode is recorded in the
run report's deterministic section, the resolved tier under `runtime`.

Scaling (tends only): `infer --memory-budget 512M` (or
DIFFNET_MEMORY_BUDGET) switches onto the out-of-core streamed IMI
pipeline — the status file is memory-mapped into column bitsets, the
dense correlation matrix is never built, and per-node candidates live in
bounded sparse accumulators. `--shard-index I --shard-count S` restricts
the run to one node-range shard; the sorted union of the shard edge
lists (same budget everywhere) is byte-identical to the unsharded run.
`submit --shards S --wait --merged-out FILE` fans one reconstruction out
across S daemon jobs and merges the edges client-side.

Robustness (tends only): `infer --checkpoint FILE` persists per-node
progress atomically every --checkpoint-interval nodes (default 8);
re-running with `--resume` skips completed nodes and produces the same
output bit for bit. Per-node failures degrade gracefully: the surviving
edges are still written, the failed nodes are listed in the report and
run report, and the process exits with code 3 instead of 0.

Serving: `serve` exposes the pipeline as a zero-dependency HTTP daemon
(POST /v1/jobs, GET /v1/jobs/{id}, /edges, /report, POST
/v1/jobs/{id}/cascades, GET /v1/metrics, /v1/healthz). Requests are
handled by an epoll event loop with HTTP/1.1 keep-alive and pipelining;
overload answers are typed (429 past the per-connection in-flight
budget, 503 when the request or job queue is full, 408 on stalled
request heads) and tunable via the serve flags above (DUR accepts 5s,
750ms, 2m). Jobs are durable: state and checkpoints live under
--data-dir, and a killed or SIGTERM'd server resumes interrupted jobs
on restart with bit-identical results. `submit`/`job` are the built-in
client for scripts and CI.

Load generation: `loadgen` drives a daemon from N concurrent
connections, closed-loop by default or open-loop at `--target-rps`,
mixing healthz probes, full submit→poll→edges round-trips, and cascade
appends (`--mix healthz=9,submit=1`). It reports ok/total rps, p50/p95
/p99 latency from fine-grained histograms, and per-class error counts
(429/503/timeouts); `--json` emits the structured report, `--repeats`
re-measures, and the warmup window is discarded.
";
