//! The `diffnet` binary: see [`diffnet_cli::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match diffnet_cli::run(&argv) {
        Ok(output) => {
            println!("{output}");
            if output.exit_code() != 0 {
                std::process::exit(output.exit_code());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", diffnet_cli::USAGE);
            std::process::exit(2);
        }
    }
}
