//! A small `--flag value` argument parser.
//!
//! Deliberately dependency-free: the workspace's approved crate list has
//! no CLI parser, and the option surface here is small enough that a
//! table-driven parser stays readable.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument-parsing and validation errors, with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError {
    message: String,
}

impl ArgError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ArgError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses `--key value` pairs and bare `--flag`s (an option whose next
    /// token starts with `--` or is absent is a flag).
    pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let tok = &args[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::new(format!(
                    "unexpected positional argument {tok:?} (options are --key value)"
                )));
            };
            if key.is_empty() {
                return Err(ArgError::new("empty option name '--'"));
            }
            match args.get(i + 1) {
                Some(val) if !val.starts_with("--") => {
                    if options.insert(key.to_string(), val.clone()).is_some() {
                        return Err(ArgError::new(format!("duplicate option --{key}")));
                    }
                    i += 2;
                }
                _ => {
                    flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(ParsedArgs { options, flags })
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError::new(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError::new(format!("invalid value {raw:?} for --{key}"))),
        }
    }

    /// A required parsed value.
    pub fn get_required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|_| ArgError::new(format!("invalid value {raw:?} for --{key}")))
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects unknown options/flags (typo protection).
    pub fn expect_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(ArgError::new(format!(
                    "unknown option --{key} (expected one of: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, ArgError> {
        let owned: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&owned)
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--n", "100", "--seed", "7"]).expect("parse");
        assert_eq!(a.required("n").expect("n"), "100");
        assert_eq!(a.get_or::<u64>("seed", 0).expect("seed"), 7);
    }

    #[test]
    fn flags_without_values() {
        let a = parse(&["--quiet", "--n", "5"]).expect("parse");
        assert!(a.has_flag("quiet"));
        assert!(!a.has_flag("verbose"));
        assert_eq!(a.get_required::<usize>("n").expect("n"), 5);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]).expect("parse");
        assert_eq!(a.get_or::<f64>("alpha", 0.15).expect("alpha"), 0.15);
        assert_eq!(a.optional("missing"), None);
    }

    #[test]
    fn positional_rejected() {
        assert!(parse(&["generate"]).is_err());
    }

    #[test]
    fn duplicate_rejected() {
        assert!(parse(&["--n", "1", "--n", "2"]).is_err());
    }

    #[test]
    fn invalid_value_reported() {
        let a = parse(&["--n", "abc"]).expect("parse");
        let err = a.get_required::<usize>("n").unwrap_err();
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn missing_required_reported() {
        let a = parse(&[]).expect("parse");
        assert!(a.required("out").unwrap_err().to_string().contains("--out"));
    }

    #[test]
    fn unknown_option_rejected() {
        let a = parse(&["--typo", "1"]).expect("parse");
        let err = a.expect_known(&["n", "seed"]).unwrap_err();
        assert!(err.to_string().contains("--typo"));
    }
}
