//! End-to-end SIMD dispatch tests: spawn the real `diffnet` binary with
//! every forced kernel tier (via `--simd` and via `DIFFNET_SIMD`) and
//! demand byte-identical edge lists and deterministic report sections —
//! at one worker thread and at four. Subprocesses are the only way to
//! exercise the forced process-wide dispatch: the kernel table resolves
//! once per process.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_diffnet")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("diffnet_simd_modes");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name).to_string_lossy().into_owned()
}

fn run_ok(args: &[&str], env: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(bin());
    cmd.args(args).env_remove("DIFFNET_SIMD");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn diffnet");
    assert!(
        out.status.success(),
        "diffnet {args:?} (env {env:?}) failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Generates a graph and simulates statuses once per test.
fn make_inputs(tag: &str) -> String {
    let truth = tmp(&format!("{tag}_truth.edges"));
    let statuses = tmp(&format!("{tag}_statuses.txt"));
    run_ok(
        &[
            "generate", "--model", "er", "--n", "40", "--m", "140", "--seed", "71", "--out", &truth,
        ],
        &[],
    );
    run_ok(
        &[
            "simulate", "--graph", &truth, "--beta", "150", "--seed", "72", "--out", &statuses,
        ],
        &[],
    );
    statuses
}

#[test]
fn forced_dispatch_tiers_are_bit_identical_across_threads() {
    let statuses = make_inputs("tiers");
    let mut reference: Option<Vec<u8>> = None;
    for mode in ["auto", "scalar", "popcnt", "avx2"] {
        for threads in ["1", "4"] {
            let out = tmp(&format!("tiers_{mode}_{threads}.edges"));
            let report = tmp(&format!("tiers_{mode}_{threads}.json"));
            run_ok(
                &[
                    "infer",
                    "--statuses",
                    &statuses,
                    "--threads",
                    threads,
                    "--simd",
                    mode,
                    "--out",
                    &out,
                    "--run-report",
                    &report,
                ],
                &[],
            );
            let edges = std::fs::read(&out).expect("edge list");
            match &reference {
                None => reference = Some(edges),
                Some(want) => assert_eq!(
                    want, &edges,
                    "--simd {mode} --threads {threads} diverged from the reference edge list"
                ),
            }
            // The run report records the requested mode (deterministic
            // section, omitted for the auto default) and the resolved
            // tier (runtime section, always present).
            let text = std::fs::read_to_string(&report).expect("report");
            let json = diffnet_observe::parse_json(&text).expect("report JSON");
            let recorded = json.get("simd").and_then(diffnet_observe::Json::as_str);
            if mode == "auto" {
                assert_eq!(recorded, None, "auto default must not be recorded");
            } else {
                assert_eq!(recorded, Some(mode));
            }
            let dispatch = json
                .get("runtime")
                .and_then(|r| r.get("simd_dispatch"))
                .and_then(diffnet_observe::Json::as_str)
                .expect("runtime.simd_dispatch");
            assert!(
                ["avx2", "popcnt", "scalar"].contains(&dispatch),
                "unexpected dispatch tier {dispatch:?}"
            );
            if mode == "scalar" {
                assert_eq!(dispatch, "scalar", "forced scalar must not be upgraded");
            }
        }
    }
}

#[test]
fn env_knob_matches_flag_and_bad_values_warn() {
    let statuses = make_inputs("env");
    let flag_out = tmp("env_flag.edges");
    run_ok(
        &[
            "infer",
            "--statuses",
            &statuses,
            "--simd",
            "scalar",
            "--out",
            &flag_out,
        ],
        &[],
    );
    let env_out = tmp("env_var.edges");
    let env_report = tmp("env_var.json");
    run_ok(
        &[
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &env_out,
            "--run-report",
            &env_report,
        ],
        &[("DIFFNET_SIMD", "scalar")],
    );
    assert_eq!(
        std::fs::read(&flag_out).expect("flag run"),
        std::fs::read(&env_out).expect("env run"),
        "--simd scalar and DIFFNET_SIMD=scalar must agree"
    );
    // The env override is configuration like the flag: recorded in the
    // deterministic report section.
    let text = std::fs::read_to_string(&env_report).expect("report");
    let json = diffnet_observe::parse_json(&text).expect("report JSON");
    assert_eq!(
        json.get("simd").and_then(diffnet_observe::Json::as_str),
        Some("scalar")
    );

    // A malformed value warns and falls back to auto instead of silently
    // proceeding or failing the run.
    let bad_out = tmp("env_bad.edges");
    let out = Command::new(bin())
        .args(["infer", "--statuses", &statuses, "--out", &bad_out])
        .env("DIFFNET_SIMD", "sse9")
        .output()
        .expect("spawn diffnet");
    assert!(out.status.success(), "malformed env must not fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("DIFFNET_SIMD") && stderr.contains("sse9"),
        "missing warning, stderr:\n{stderr}"
    );
    assert_eq!(
        std::fs::read(&flag_out).expect("flag run"),
        std::fs::read(&bad_out).expect("bad-env run"),
        "fallback run must still produce the canonical edge list"
    );

    // An invalid --simd value, by contrast, is a hard usage error.
    let rejected = Command::new(bin())
        .args([
            "infer",
            "--statuses",
            &statuses,
            "--simd",
            "sse9",
            "--out",
            &bad_out,
        ])
        .output()
        .expect("spawn diffnet");
    assert!(!rejected.status.success(), "--simd sse9 must be rejected");
}
