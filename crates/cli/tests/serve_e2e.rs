//! End-to-end daemon tests: spawn the real `diffnet` binary as a server,
//! drive it with the built-in client over loopback, and demand that
//! HTTP-submitted jobs produce output byte-identical to offline
//! `diffnet infer` — including after the server is killed mid-job and
//! restarted, and across concurrent jobs.

use std::net::SocketAddr;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

use diffnet_observe::Json;
use diffnet_serve::Client;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_diffnet")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("diffnet_serve_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name).to_string_lossy().into_owned()
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn diffnet");
    assert!(
        out.status.success(),
        "diffnet {args:?} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn make_inputs(tag: &str, seed: u64) -> String {
    let truth = tmp(&format!("{tag}_truth.edges"));
    let statuses = tmp(&format!("{tag}_statuses.txt"));
    run_ok(&[
        "generate",
        "--model",
        "er",
        "--n",
        "30",
        "--m",
        "90",
        "--seed",
        &seed.to_string(),
        "--out",
        &truth,
    ]);
    run_ok(&[
        "simulate",
        "--graph",
        &truth,
        "--beta",
        "120",
        "--seed",
        &(seed + 1).to_string(),
        "--out",
        &statuses,
    ]);
    statuses
}

fn deterministic_report(path: &str) -> Json {
    let text = std::fs::read_to_string(path).expect("report file");
    let mut json = diffnet_observe::parse_json(&text).expect("report JSON");
    json.remove("runtime");
    json
}

/// A spawned server process, killed on drop so a failing assertion never
/// leaks a listener into later tests.
struct ServerProc {
    child: std::process::Child,
}

impl ServerProc {
    /// Waits (bounded) for the process to exit on its own.
    fn wait_exit(&mut self) -> std::process::ExitStatus {
        for _ in 0..600 {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("server process did not exit");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(
    data_dir: &str,
    tag: &str,
    extra: &[&str],
    fault: Option<&str>,
) -> (ServerProc, SocketAddr) {
    let port_file = tmp(&format!("{tag}_port.txt"));
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve",
        "--data-dir",
        data_dir,
        "--addr",
        "127.0.0.1:0",
        "--port-file",
        &port_file,
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if let Some(plan) = fault {
        cmd.env("DIFFNET_FAULT", plan);
    }
    let child = cmd.spawn().expect("spawn server");
    let mut proc = ServerProc { child };
    for _ in 0..200 {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                // The port file is written after bind, so the listener
                // is already accepting.
                return (proc, addr);
            }
        }
        if let Some(status) = proc.child.try_wait().expect("try_wait") {
            panic!("server exited early with {status}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("server never wrote its port file");
}

fn shut_down(mut proc: ServerProc, addr: SocketAddr) {
    Client::new(addr).shutdown().expect("shutdown endpoint");
    let status = proc.wait_exit();
    assert!(status.success(), "clean shutdown exits 0, got {status}");
}

#[test]
fn served_job_matches_offline_infer_at_1_and_4_threads() {
    let statuses = make_inputs("match", 41);
    let data_dir = tmp("match_data");
    let _ = std::fs::remove_dir_all(&data_dir);
    let (proc, addr) = start_server(&data_dir, "match", &[], None);

    for (job_id, threads) in [(1u64, "1"), (2u64, "4")] {
        let ref_out = tmp(&format!("match_ref_{threads}.edges"));
        let ref_report = tmp(&format!("match_ref_{threads}.json"));
        run_ok(&[
            "infer",
            "--statuses",
            &statuses,
            "--threads",
            threads,
            "--out",
            &ref_out,
            "--run-report",
            &ref_report,
        ]);

        // Submit over HTTP with the built-in client subcommands.
        let submitted = run_ok(&[
            "submit",
            "--server",
            &addr.to_string(),
            "--statuses",
            &statuses,
            "--threads",
            threads,
            "--wait",
        ]);
        assert!(
            submitted.contains(&format!("job {job_id} submitted"))
                && submitted.contains("finished: done"),
            "stdout: {submitted}"
        );
        let served_out = tmp(&format!("match_served_{threads}.edges"));
        let served_report = tmp(&format!("match_served_{threads}.json"));
        let fetched = run_ok(&[
            "job",
            "--server",
            &addr.to_string(),
            "--id",
            &job_id.to_string(),
            "--edges-out",
            &served_out,
            "--report-out",
            &served_report,
        ]);
        assert!(fetched.contains("\"state\": \"done\""), "stdout: {fetched}");

        assert_eq!(
            std::fs::read(&ref_out).expect("reference edges"),
            std::fs::read(&served_out).expect("served edges"),
            "threads={threads}: HTTP-submitted edges must be byte-identical"
        );
        assert_eq!(
            deterministic_report(&ref_report),
            deterministic_report(&served_report),
            "threads={threads}: deterministic report sections must match"
        );
        // The served report additionally carries the job record, inside
        // the runtime section only.
        let full = diffnet_observe::parse_json(
            &std::fs::read_to_string(&served_report).expect("served report"),
        )
        .expect("JSON");
        let job = full
            .get("runtime")
            .and_then(|r| r.get("job"))
            .expect("runtime.job");
        assert_eq!(job.get("id").and_then(Json::as_f64), Some(job_id as f64));
        assert_eq!(job.get("state").and_then(Json::as_str), Some("done"));
    }

    // A cascade-based baseline through the same pipe: submit an
    // observation set, run NetInf with an edge budget, compare bytes.
    let obs = tmp("match_obs.txt");
    run_ok(&[
        "simulate",
        "--graph",
        &tmp("match_truth.edges"),
        "--beta",
        "120",
        "--seed",
        "43",
        "--out",
        &tmp("match_statuses2.txt"),
        "--observations",
        &obs,
    ]);
    let ref_out = tmp("match_netinf_ref.edges");
    run_ok(&[
        "infer",
        "--algorithm",
        "netinf",
        "--observations",
        &obs,
        "--edges",
        "90",
        "--out",
        &ref_out,
    ]);
    run_ok(&[
        "submit",
        "--server",
        &addr.to_string(),
        "--algorithm",
        "netinf",
        "--observations",
        &obs,
        "--edges",
        "90",
        "--wait",
    ]);
    let served_out = tmp("match_netinf_served.edges");
    run_ok(&[
        "job",
        "--server",
        &addr.to_string(),
        "--id",
        "3",
        "--edges-out",
        &served_out,
    ]);
    assert_eq!(
        std::fs::read(&ref_out).expect("reference edges"),
        std::fs::read(&served_out).expect("served edges"),
        "netinf: HTTP-submitted edges must be byte-identical"
    );

    // Liveness + metrics over the same socket.
    let client = Client::new(addr);
    assert!(client.healthz().expect("healthz"));
    let metrics = client.metrics().expect("metrics");
    for needle in [
        "# TYPE diffnet_http_requests counter",
        "diffnet_jobs_submitted 3",
        "diffnet_jobs_completed 3",
    ] {
        assert!(
            metrics.contains(needle),
            "metrics missing {needle:?}:\n{metrics}"
        );
    }

    shut_down(proc, addr);
}

#[test]
fn kill_dash_nine_mid_job_then_restart_resumes_byte_identical() {
    let statuses = make_inputs("kill", 51);
    let ref_out = tmp("kill_ref.edges");
    run_ok(&["infer", "--statuses", &statuses, "--out", &ref_out]);

    let data_dir = tmp("kill_data");
    let _ = std::fs::remove_dir_all(&data_dir);
    // The fault plan SIGKILLs the whole server on the first checkpoint
    // flush — mid parent search, after that batch of nodes is durable.
    // Only the first flush has a deterministic ordinal: the greedy delta
    // writer may cover the rest of the run in a single later fsync.
    let (mut proc, addr) = start_server(&data_dir, "kill1", &[], Some("kill:checkpoint_flush:1"));
    let submitted = run_ok(&[
        "submit",
        "--server",
        &addr.to_string(),
        "--statuses",
        &statuses,
        "--checkpoint-interval",
        "2",
    ]);
    assert!(submitted.contains("job 1 submitted"), "stdout: {submitted}");
    let died = proc.wait_exit();
    assert!(!died.success(), "fault injection must abort the server");
    assert!(
        !Path::new(&data_dir).join("job-1/edges.txt").exists(),
        "a killed job must not have produced an edge list"
    );
    drop(proc);

    // Restart over the same data dir: the rescan finds job 1 `running`,
    // resumes it from its checkpoint, and finishes it unprompted.
    let (proc, addr) = start_server(&data_dir, "kill2", &[], None);
    let client = Client::new(addr);
    let status = client
        .wait_for_job(1, Duration::from_secs(60))
        .expect("resumed job finishes");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    let (code, served) = client.get("/v1/jobs/1/edges").expect("edges");
    assert_eq!(code, 200);
    assert_eq!(
        std::fs::read(&ref_out).expect("reference edges"),
        served,
        "edges after kill -9 + restart + resume must be byte-identical"
    );
    // The report proves it resumed rather than recomputed.
    let (code, report) = client.get("/v1/jobs/1/report").expect("report");
    assert_eq!(code, 200);
    let report = diffnet_observe::parse_json(std::str::from_utf8(&report).expect("utf8"))
        .expect("report JSON");
    let resumed = report
        .get("runtime")
        .and_then(|r| r.get("checkpoint"))
        .and_then(|c| c.get("resumed_nodes"))
        .and_then(Json::as_f64)
        .expect("runtime.checkpoint.resumed_nodes");
    assert!(resumed > 0.0, "restart must restore checkpointed nodes");
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("diffnet_jobs_resumed 1"),
        "metrics must count the resume:\n{metrics}"
    );
    shut_down(proc, addr);
}

#[test]
fn concurrent_jobs_and_cascade_append_stay_exact() {
    let statuses_a = make_inputs("conc_a", 61);
    let statuses_b = make_inputs("conc_b", 71);
    let data_dir = tmp("conc_data");
    let _ = std::fs::remove_dir_all(&data_dir);
    let (proc, addr) = start_server(&data_dir, "conc", &["--job-workers", "2"], None);
    let client = Client::new(addr);

    // Two distinct jobs in flight at once on two job workers.
    let full_a = std::fs::read(&statuses_a).expect("statuses a");
    let full_b = std::fs::read(&statuses_b).expect("statuses b");
    let (code, _) = client.post_json("/v1/jobs", &full_a).expect("submit a");
    assert_eq!(code, 201);
    let (code, _) = client.post_json("/v1/jobs", &full_b).expect("submit b");
    assert_eq!(code, 201);
    for (id, statuses) in [(1u64, &statuses_a), (2u64, &statuses_b)] {
        let state = client
            .wait_for_job(id, Duration::from_secs(60))
            .expect("job finishes");
        assert_eq!(state.get("state").and_then(Json::as_str), Some("done"));
        let ref_out = tmp(&format!("conc_ref_{id}.edges"));
        run_ok(&["infer", "--statuses", statuses, "--out", &ref_out]);
        let (code, served) = client.get(&format!("/v1/jobs/{id}/edges")).expect("edges");
        assert_eq!(code, 200);
        assert_eq!(
            std::fs::read(&ref_out).expect("reference edges"),
            served,
            "job {id}: concurrent jobs must not cross-contaminate"
        );
    }

    // Cascade streaming: a job over the first half of A's cascades, then
    // the second half appended, must equal one job over all of A.
    let matrix = diffnet_simulate::io::load_status_matrix(&statuses_a).expect("matrix");
    let rows: Vec<Vec<bool>> = (0..matrix.num_processes())
        .map(|l| {
            (0..matrix.num_nodes())
                .map(|i| matrix.get(l, i as u32))
                .collect()
        })
        .collect();
    let half = rows.len() / 2;
    let head = diffnet_simulate::StatusMatrix::from_rows(&rows[..half]);
    let tail = diffnet_simulate::StatusMatrix::from_rows(&rows[half..]);
    let mut head_bytes = Vec::new();
    diffnet_simulate::io::write_status_matrix(&head, &mut head_bytes).expect("serialize");
    let mut tail_bytes = Vec::new();
    diffnet_simulate::io::write_status_matrix(&tail, &mut tail_bytes).expect("serialize");

    let (code, job) = client
        .post_json("/v1/jobs", &head_bytes)
        .expect("submit head");
    assert_eq!(code, 201);
    let id = job.get("id").and_then(Json::as_f64).expect("id") as u64;
    client
        .wait_for_job(id, Duration::from_secs(60))
        .expect("head job finishes");

    // Appending while terminal re-queues with a bumped revision…
    let (code, updated) = client
        .post_json(&format!("/v1/jobs/{id}/cascades"), &tail_bytes)
        .expect("append");
    assert_eq!(code, 200, "{}", updated.to_pretty());
    assert_eq!(updated.get("revision").and_then(Json::as_f64), Some(2.0));
    let state = client
        .wait_for_job(id, Duration::from_secs(60))
        .expect("re-estimation finishes");
    assert_eq!(state.get("state").and_then(Json::as_str), Some("done"));
    let (code, served) = client.get(&format!("/v1/jobs/{id}/edges")).expect("edges");
    assert_eq!(code, 200);
    assert_eq!(
        std::fs::read(tmp("conc_ref_1.edges")).expect("reference edges"),
        served,
        "append(half, half) must equal one submission of the full matrix"
    );

    // …while appending to a mismatched shape is a typed client error.
    let narrow = diffnet_simulate::StatusMatrix::from_rows(&[vec![true; 5]]);
    let mut narrow_bytes = Vec::new();
    diffnet_simulate::io::write_status_matrix(&narrow, &mut narrow_bytes).expect("serialize");
    let (code, err) = client
        .post_json(&format!("/v1/jobs/{id}/cascades"), &narrow_bytes)
        .expect("bad append");
    assert_eq!(code, 422, "{}", err.to_pretty());

    shut_down(proc, addr);
}
