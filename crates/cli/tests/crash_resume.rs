//! End-to-end crash-safety tests: spawn the real `diffnet` binary, kill
//! it mid parent search through `DIFFNET_FAULT`, resume from the
//! checkpoint it left behind, and demand output that is byte-identical
//! to an uninterrupted run — at one worker thread and at four.

use std::path::Path;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_diffnet")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("diffnet_crash_resume");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name).to_string_lossy().into_owned()
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn diffnet");
    assert!(
        out.status.success(),
        "diffnet {args:?} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// A run report parsed with its (wall-time-bearing) `runtime` section
/// removed: what is left must be identical across resumed runs.
fn deterministic_report(path: &str) -> diffnet_observe::Json {
    let text = std::fs::read_to_string(path).expect("report file");
    let mut json = diffnet_observe::parse_json(&text).expect("report JSON");
    json.remove("runtime");
    json
}

/// Generates a graph and simulates statuses once per test binary run.
fn make_inputs(tag: &str) -> String {
    let truth = tmp(&format!("{tag}_truth.edges"));
    let statuses = tmp(&format!("{tag}_statuses.txt"));
    run_ok(&[
        "generate", "--model", "er", "--n", "30", "--m", "90", "--seed", "31", "--out", &truth,
    ]);
    run_ok(&[
        "simulate", "--graph", &truth, "--beta", "120", "--seed", "32", "--out", &statuses,
    ]);
    statuses
}

#[test]
fn kill_mid_search_then_resume_is_bit_identical() {
    let statuses = make_inputs("kill");
    for threads in ["1", "4"] {
        let ref_out = tmp(&format!("kill_ref_{threads}.edges"));
        let ref_report = tmp(&format!("kill_ref_{threads}.json"));
        let out = tmp(&format!("kill_resumed_{threads}.edges"));
        let report = tmp(&format!("kill_resumed_{threads}.json"));
        let ck = tmp(&format!("kill_ck_{threads}.json"));
        // Leftovers from a previous test-binary run would defeat the
        // "killed run leaves no output" assertions.
        for stale in [&ref_out, &ref_report, &out, &report, &ck] {
            let _ = std::fs::remove_file(stale);
        }

        run_ok(&[
            "infer",
            "--statuses",
            &statuses,
            "--threads",
            threads,
            "--out",
            &ref_out,
            "--run-report",
            &ref_report,
        ]);

        // Crash after the first checkpoint flush: the flushed batch is
        // durable, nothing past it is. The delta writer batches greedily
        // (one fsync covers whatever the pool produced meanwhile), so only
        // the first flush has a deterministic ordinal to arm.
        let crashed = Command::new(bin())
            .args([
                "infer",
                "--statuses",
                &statuses,
                "--threads",
                threads,
                "--out",
                &out,
                "--checkpoint",
                &ck,
                "--checkpoint-interval",
                "2",
            ])
            .env("DIFFNET_FAULT", "kill:checkpoint_flush:1")
            .output()
            .expect("spawn diffnet");
        assert!(
            !crashed.status.success(),
            "fault injection must abort the process"
        );
        assert!(
            !Path::new(&out).exists(),
            "a killed run must not leave an edge list"
        );
        assert!(
            Path::new(&ck).exists(),
            "the crash happens after an atomic flush, so the checkpoint survives"
        );

        let resumed = run_ok(&[
            "infer",
            "--statuses",
            &statuses,
            "--threads",
            threads,
            "--out",
            &out,
            "--checkpoint",
            &ck,
            "--resume",
            "--run-report",
            &report,
        ]);
        assert!(resumed.contains("resumed"), "stdout: {resumed}");
        assert_eq!(
            std::fs::read(&ref_out).expect("reference edges"),
            std::fs::read(&out).expect("resumed edges"),
            "threads={threads}: resumed edge list must be byte-identical"
        );
        assert_eq!(
            deterministic_report(&ref_report),
            deterministic_report(&report),
            "threads={threads}: deterministic report sections must match"
        );
    }
}

#[test]
fn injected_node_failures_exit_partial_with_failed_nodes_listed() {
    let statuses = make_inputs("partial");
    let out = tmp("partial_out.edges");
    let report = tmp("partial_run.json");
    let run = Command::new(bin())
        .args([
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &out,
            "--run-report",
            &report,
        ])
        .env("DIFFNET_FAULT", "io:node_search@3,io:node_search@7")
        .output()
        .expect("spawn diffnet");
    assert_eq!(
        run.status.code(),
        Some(3),
        "partial reconstruction exits 3:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains("partial reconstruction"),
        "stdout: {stdout}"
    );
    assert!(
        Path::new(&out).exists(),
        "the surviving edges are still written"
    );
    let json = deterministic_report(&report);
    let failed: Vec<u64> = json
        .get("failed_nodes")
        .and_then(|f| f.as_arr())
        .expect("failed_nodes array")
        .iter()
        .map(|v| v.as_f64().expect("node id") as u64)
        .collect();
    assert_eq!(failed, vec![3, 7]);
}

#[test]
fn corrupt_checkpoint_is_a_clean_error() {
    let statuses = make_inputs("corrupt");
    let out = tmp("corrupt_out.edges");
    let ck = tmp("corrupt_ck.json");
    std::fs::write(&ck, "{\"format\": \"diffnet-checkpoint\", \"vers").expect("write");
    let run = Command::new(bin())
        .args([
            "infer",
            "--statuses",
            &statuses,
            "--out",
            &out,
            "--checkpoint",
            &ck,
            "--resume",
        ])
        .output()
        .expect("spawn diffnet");
    assert_eq!(run.status.code(), Some(2), "corrupt checkpoint is an error");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("checkpoint"), "stderr: {stderr}");
}
