//! Influence maximization: choosing `k` seed nodes to maximize expected
//! spread (Kempe, Kleinberg & Tardos, KDD 2003).
//!
//! Expected IC spread is monotone and submodular in the seed set, so
//! greedy hill-climbing achieves a `1 − 1/e` approximation. Two variants
//! are provided: plain greedy (re-evaluates every candidate each round)
//! and CELF (Leskovec et al., KDD 2007), which exploits submodularity to
//! skip most re-evaluations — identical output up to Monte-Carlo noise,
//! far fewer simulations.

use crate::spread::SpreadEstimator;
use diffnet_graph::NodeId;
use rand::Rng;
use std::collections::BinaryHeap;

/// Plain greedy influence maximization: each round adds the node whose
/// addition maximizes estimated spread.
///
/// # Panics
///
/// Panics if `k` exceeds the node count.
pub fn greedy_influence_maximization<R: Rng + ?Sized>(
    est: &SpreadEstimator<'_>,
    k: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = est.graph().node_count();
    assert!(k <= n, "cannot pick {k} seeds from {n} nodes");
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut buf: Vec<NodeId> = Vec::with_capacity(k + 1);

    for _ in 0..k {
        let mut best: Option<(f64, NodeId)> = None;
        for v in 0..n as NodeId {
            if seeds.contains(&v) {
                continue;
            }
            buf.clear();
            buf.extend_from_slice(&seeds);
            buf.push(v);
            let s = est.spread(&buf, rng);
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, v));
            }
        }
        let (_, v) = best.expect("k <= n guarantees a candidate");
        seeds.push(v);
    }
    seeds
}

#[derive(PartialEq)]
struct CelfEntry {
    gain: f64,
    node: NodeId,
    round: usize,
}

impl Eq for CelfEntry {}

impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are not NaN")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// CELF influence maximization: lazy greedy with stale-gain
/// re-evaluation. Returns the seed set and the estimated spread of the
/// full set.
///
/// # Panics
///
/// Panics if `k` exceeds the node count.
pub fn celf_influence_maximization<R: Rng + ?Sized>(
    est: &SpreadEstimator<'_>,
    k: usize,
    rng: &mut R,
) -> (Vec<NodeId>, f64) {
    let n = est.graph().node_count();
    assert!(k <= n, "cannot pick {k} seeds from {n} nodes");

    // Initial marginal gains = singleton spreads.
    let mut heap: BinaryHeap<CelfEntry> = (0..n as NodeId)
        .map(|v| CelfEntry {
            gain: est.spread(&[v], rng),
            node: v,
            round: 0,
        })
        .collect();

    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut current_spread = 0.0;
    let mut round = 0usize;
    let mut buf: Vec<NodeId> = Vec::with_capacity(k + 1);

    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            seeds.push(top.node);
            current_spread += top.gain;
            round += 1;
        } else {
            buf.clear();
            buf.extend_from_slice(&seeds);
            buf.push(top.node);
            let fresh = est.spread(&buf, rng) - current_spread;
            heap.push(CelfEntry {
                gain: fresh,
                node: top.node,
                round,
            });
        }
    }
    // Re-estimate the final spread directly (the incremental sum carries
    // Monte-Carlo drift).
    let final_spread = if seeds.is_empty() {
        0.0
    } else {
        est.spread(&seeds, rng)
    };
    (seeds, final_spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_graph::DiGraph;
    use diffnet_simulate::EdgeProbs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two separate stars: the two hubs are the unique optimal seed pair.
    fn two_stars() -> DiGraph {
        let mut edges = Vec::new();
        for leaf in 1..6u32 {
            edges.push((0, leaf));
        }
        for leaf in 7..12u32 {
            edges.push((6, leaf));
        }
        DiGraph::from_edges(12, &edges)
    }

    #[test]
    fn greedy_finds_both_hubs() {
        let g = two_stars();
        let probs = EdgeProbs::constant(&g, 0.9);
        let est = SpreadEstimator::new(&g, &probs, 200);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seeds = greedy_influence_maximization(&est, 2, &mut rng);
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 6]);
    }

    #[test]
    fn celf_matches_greedy_on_clean_structure() {
        let g = two_stars();
        let probs = EdgeProbs::constant(&g, 0.9);
        let est = SpreadEstimator::new(&g, &probs, 200);
        let mut rng = StdRng::seed_from_u64(2);
        let (mut seeds, spread) = celf_influence_maximization(&est, 2, &mut rng);
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 6]);
        assert!(spread > 9.0, "two 0.9-stars spread ~10.8, got {spread}");
    }

    #[test]
    fn celf_uses_fewer_evaluations_than_greedy_would() {
        // Indirect check via wall-clock-free proxy: CELF on a larger graph
        // must terminate with the full seed budget.
        let mut rng = StdRng::seed_from_u64(3);
        let g = diffnet_graph::generators::barabasi_albert(60, 2, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.2);
        let est = SpreadEstimator::new(&g, &probs, 50);
        let (seeds, spread) = celf_influence_maximization(&est, 5, &mut rng);
        assert_eq!(seeds.len(), 5);
        assert!(
            spread >= 5.0,
            "spread at least covers the seeds, got {spread}"
        );
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 5, "seeds must be distinct");
    }

    #[test]
    fn zero_budget() {
        let g = two_stars();
        let probs = EdgeProbs::constant(&g, 0.5);
        let est = SpreadEstimator::new(&g, &probs, 10);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(greedy_influence_maximization(&est, 0, &mut rng).is_empty());
        let (seeds, spread) = celf_influence_maximization(&est, 0, &mut rng);
        assert!(seeds.is_empty());
        assert_eq!(spread, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn oversized_budget_rejected() {
        let g = DiGraph::empty(3);
        let probs = EdgeProbs::constant(&g, 0.5);
        let est = SpreadEstimator::new(&g, &probs, 10);
        let mut rng = StdRng::seed_from_u64(5);
        greedy_influence_maximization(&est, 4, &mut rng);
    }
}
