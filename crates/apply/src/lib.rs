#![warn(missing_docs)]
//! # diffnet-apply
//!
//! Downstream applications of a (reconstructed) diffusion network — the
//! paper's motivation for topology inference is that "knowledge of these
//! influence relationships is crucial … for designing effective strategies
//! to promote or prevent future diffusions":
//!
//! * [`spread`] — Monte-Carlo estimation of expected influence spread
//!   under the independent-cascade model.
//! * [`influence`] — influence maximization: greedy hill-climbing with the
//!   CELF lazy-evaluation optimization (Leskovec et al., KDD 2007),
//!   `1 − 1/e` approximation guarantee by submodularity.
//! * [`immunize`] — immunization: choosing nodes to remove so as to
//!   minimize expected spread from random seeding.
//!
//! All functions accept any [`diffnet_graph::DiGraph`] — ground truth or
//! the output of `diffnet_tends::Tends::reconstruct` — which is exactly
//! the point: once the topology is inferred, the whole toolbox applies.

pub mod immunize;
pub mod influence;
pub mod spread;

pub use immunize::greedy_immunization;
pub use influence::{celf_influence_maximization, greedy_influence_maximization};
pub use spread::{estimate_spread, SpreadEstimator};
