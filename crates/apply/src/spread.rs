//! Monte-Carlo estimation of expected influence spread.

use diffnet_graph::{DiGraph, NodeId};
use diffnet_simulate::{EdgeProbs, IndependentCascade, ProbShapeError};
use rand::Rng;

/// Estimates the expected number of infected nodes when seeding `seeds`
/// on `graph`, averaging `trials` independent-cascade simulations.
///
/// # Panics
///
/// Panics if `trials == 0` or `probs` does not cover the graph's edges.
pub fn estimate_spread<R: Rng + ?Sized>(
    graph: &DiGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "at least one trial required");
    let sim = IndependentCascade::new(graph, probs);
    let total: usize = (0..trials)
        .map(|_| sim.run_once(seeds, rng).infected_count())
        .sum();
    total as f64 / trials as f64
}

/// A reusable spread estimator that owns its simulation budget, for
/// algorithms that evaluate many candidate seed sets.
#[derive(Debug)]
pub struct SpreadEstimator<'a> {
    graph: &'a DiGraph,
    probs: &'a EdgeProbs,
    trials: usize,
}

impl<'a> SpreadEstimator<'a> {
    /// Binds an estimator with a fixed per-evaluation trial budget.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `probs` mismatches the graph. Use
    /// [`SpreadEstimator::try_new`] when the pairing is caller input.
    pub fn new(graph: &'a DiGraph, probs: &'a EdgeProbs, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial required");
        Self::try_new(graph, probs, trials).expect("edge probabilities must cover every edge")
    }

    /// [`new`](Self::new) with the probs/graph shape mismatch as a typed
    /// error. `trials == 0` still panics — that is a budget bug, not a
    /// data-shape problem.
    pub fn try_new(
        graph: &'a DiGraph,
        probs: &'a EdgeProbs,
        trials: usize,
    ) -> Result<Self, ProbShapeError> {
        assert!(trials > 0, "at least one trial required");
        probs.validate_for(graph)?;
        Ok(SpreadEstimator {
            graph,
            probs,
            trials,
        })
    }

    /// Expected spread of a seed set.
    pub fn spread<R: Rng + ?Sized>(&self, seeds: &[NodeId], rng: &mut R) -> f64 {
        estimate_spread(self.graph, self.probs, seeds, self.trials, rng)
    }

    /// The bound graph.
    pub fn graph(&self) -> &DiGraph {
        self.graph
    }

    /// Trials per evaluation.
    pub fn trials(&self) -> usize {
        self.trials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_chain_spread() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = EdgeProbs::constant(&g, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = estimate_spread(&g, &probs, &[0], 10, &mut rng);
        assert_eq!(s, 4.0);
    }

    #[test]
    fn zero_probability_spread_is_seed_count() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let probs = EdgeProbs::constant(&g, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let s = estimate_spread(&g, &probs, &[0, 3], 5, &mut rng);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn spread_is_monotone_in_seed_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = diffnet_graph::generators::erdos_renyi_gnm(50, 200, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.2);
        let est = SpreadEstimator::new(&g, &probs, 400);
        let small = est.spread(&[0], &mut rng);
        let large = est.spread(&[0, 1, 2, 3], &mut rng);
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn single_edge_expectation() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let probs = EdgeProbs::constant(&g, 0.3);
        let mut rng = StdRng::seed_from_u64(4);
        let s = estimate_spread(&g, &probs, &[0], 20_000, &mut rng);
        assert!((s - 1.3).abs() < 0.02, "spread {s}");
    }

    #[test]
    fn mismatched_probs_are_a_typed_error() {
        let small = DiGraph::from_edges(3, &[(0, 1)]);
        let big = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let probs = EdgeProbs::constant(&small, 0.5);
        let err = SpreadEstimator::try_new(&big, &probs, 10).expect_err("shape mismatch");
        assert_eq!(
            err,
            ProbShapeError {
                expected: 3,
                found: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let g = DiGraph::empty(2);
        let probs = EdgeProbs::constant(&g, 0.5);
        SpreadEstimator::new(&g, &probs, 0);
    }
}
