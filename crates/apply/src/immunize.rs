//! Immunization: removing nodes to *minimize* expected diffusion spread —
//! the "prevent future diffusions" side of the paper's motivation.
//!
//! Greedy node removal: each round, remove the node whose removal most
//! reduces the expected spread from random seeding (estimated by Monte
//! Carlo over both the seed draw and the cascade). Spread reduction is
//! not submodular in general, so no approximation guarantee is claimed;
//! greedy is the standard practical heuristic.

use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_simulate::{EdgeProbs, IndependentCascade, ProbShapeError};
use rand::Rng;

/// Expected spread from `num_seeds` uniformly random (non-immunized)
/// seeds, with `immunized` nodes removed from the graph dynamics.
fn random_seed_spread<R: Rng + ?Sized>(
    graph: &DiGraph,
    probs: &EdgeProbs,
    immunized: &[bool],
    num_seeds: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let candidates: Vec<NodeId> = graph.nodes().filter(|&v| !immunized[v as usize]).collect();
    if candidates.is_empty() {
        return 0.0;
    }
    let num_seeds = num_seeds.min(candidates.len());
    let sim = IndependentCascade::new(graph, probs);
    let mut pool = candidates.clone();
    let mut total = 0usize;
    for _ in 0..trials {
        for i in 0..num_seeds {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let rec = sim.run_once(&pool[..num_seeds], rng);
        // Immunized nodes cannot be infected: they are counted out. (They
        // are never seeds; infection *through* them is prevented by graph
        // surgery in `greedy_immunization`.)
        total += rec.infected_count();
    }
    total as f64 / trials as f64
}

/// Removes all edges incident to `immunized` nodes.
fn strip(graph: &DiGraph, immunized: &[bool]) -> DiGraph {
    let mut b = GraphBuilder::new(graph.node_count());
    for (u, v) in graph.edges() {
        if !immunized[u as usize] && !immunized[v as usize] {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Greedily selects `budget` nodes to immunize so that the expected
/// spread from `num_seeds` random seeds is minimized. Returns the chosen
/// nodes in selection order.
///
/// `trials` Monte-Carlo runs are used per candidate evaluation; to keep
/// the cost bounded, each round only the `shortlist` highest-degree
/// remaining nodes are evaluated (degree is the classic immunization
/// prior; the Monte-Carlo pass then picks the best of them).
///
/// # Panics
///
/// Panics if `budget` exceeds the node count, `trials == 0`, or `probs`
/// mismatches the graph. Use [`try_greedy_immunization`] when the
/// probs/graph pairing is caller input.
pub fn greedy_immunization<R: Rng + ?Sized>(
    graph: &DiGraph,
    probs: &EdgeProbs,
    budget: usize,
    num_seeds: usize,
    trials: usize,
    shortlist: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    try_greedy_immunization(graph, probs, budget, num_seeds, trials, shortlist, rng)
        .expect("edge probabilities must cover every edge")
}

/// [`greedy_immunization`] with the probs/graph shape mismatch as a typed
/// error. Validating up front keeps `reindex_probs` — which looks every
/// surviving edge up in the original graph — an internal invariant rather
/// than a latent panic on bad input.
#[allow(clippy::too_many_arguments)]
pub fn try_greedy_immunization<R: Rng + ?Sized>(
    graph: &DiGraph,
    probs: &EdgeProbs,
    budget: usize,
    num_seeds: usize,
    trials: usize,
    shortlist: usize,
    rng: &mut R,
) -> Result<Vec<NodeId>, ProbShapeError> {
    assert!(budget <= graph.node_count(), "budget exceeds node count");
    assert!(trials > 0, "at least one trial required");
    probs.validate_for(graph)?;

    let mut immunized = vec![false; graph.node_count()];
    let mut chosen = Vec::with_capacity(budget);
    let mut current = strip(graph, &immunized);

    for _ in 0..budget {
        // Shortlist by degree in the current (already-stripped) graph.
        let mut candidates: Vec<NodeId> = current
            .nodes()
            .filter(|&v| !immunized[v as usize])
            .collect();
        candidates.sort_unstable_by_key(|&v| std::cmp::Reverse(current.degree(v)));
        candidates.truncate(shortlist.max(1));

        let mut best: Option<(f64, NodeId)> = None;
        for &v in &candidates {
            immunized[v as usize] = true;
            let g = strip(graph, &immunized);
            let p = reindex_probs(graph, probs, &g);
            let s = random_seed_spread(&g, &p, &immunized, num_seeds, trials, rng);
            immunized[v as usize] = false;
            if best.is_none_or(|(bs, _)| s < bs) {
                best = Some((s, v));
            }
        }
        let Some((_, v)) = best else { break };
        immunized[v as usize] = true;
        chosen.push(v);
        current = strip(graph, &immunized);
    }
    Ok(chosen)
}

/// Carries per-edge probabilities from `original` onto the surviving
/// edges of `stripped`.
fn reindex_probs(original: &DiGraph, probs: &EdgeProbs, stripped: &DiGraph) -> EdgeProbs {
    let values: Vec<f64> = stripped
        .edges()
        .map(|(u, v)| probs.get(original, u, v).expect("edge came from original"))
        .collect();
    EdgeProbs::from_vec(stripped, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A hub bridging two cliques: immunizing the hub should be optimal.
    fn barbell() -> DiGraph {
        let mut b = GraphBuilder::new(9);
        // Clique A: 0-3, clique B: 5-8, hub: 4.
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    b.add_edge(i, j);
                }
            }
        }
        for i in 5..9u32 {
            for j in 5..9u32 {
                if i != j {
                    b.add_edge(i, j);
                }
            }
        }
        for i in [3u32, 5] {
            b.add_reciprocal(4, i);
        }
        b.build()
    }

    #[test]
    fn immunizes_the_bridge_hub_first() {
        let g = barbell();
        let probs = EdgeProbs::constant(&g, 0.6);
        let mut rng = StdRng::seed_from_u64(11);
        let chosen = greedy_immunization(&g, &probs, 1, 1, 300, 9, &mut rng);
        assert_eq!(chosen.len(), 1);
        // The bridge (4) or its clique attachments (3, 5) cut the graph;
        // any of them is a defensible greedy pick under MC noise.
        assert!(
            [3, 4, 5].contains(&chosen[0]),
            "expected a bridge-adjacent pick, got {}",
            chosen[0]
        );
    }

    #[test]
    fn immunization_reduces_spread() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = diffnet_graph::generators::barabasi_albert(40, 2, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.4);
        let chosen = greedy_immunization(&g, &probs, 4, 3, 100, 8, &mut rng);
        assert_eq!(chosen.len(), 4);

        let mut immunized = vec![false; 40];
        for &v in &chosen {
            immunized[v as usize] = true;
        }
        let stripped = strip(&g, &immunized);
        let stripped_probs = reindex_probs(&g, &probs, &stripped);
        let before = random_seed_spread(&g, &probs, &[false; 40], 3, 400, &mut rng);
        let after = random_seed_spread(&stripped, &stripped_probs, &immunized, 3, 400, &mut rng);
        assert!(
            after < before,
            "immunization must reduce spread: {after} vs {before}"
        );
    }

    #[test]
    fn zero_budget_is_noop() {
        let g = barbell();
        let probs = EdgeProbs::constant(&g, 0.5);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(greedy_immunization(&g, &probs, 0, 2, 10, 5, &mut rng).is_empty());
    }

    #[test]
    fn mismatched_probs_are_a_typed_error() {
        let g = barbell();
        let other = DiGraph::from_edges(9, &[(0, 1)]);
        let probs = EdgeProbs::constant(&other, 0.5);
        let mut rng = StdRng::seed_from_u64(15);
        let err =
            try_greedy_immunization(&g, &probs, 1, 1, 10, 5, &mut rng).expect_err("shape mismatch");
        assert_eq!(err.expected, g.edge_count());
        assert_eq!(err.found, 1);
    }

    #[test]
    fn chosen_nodes_are_distinct() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = diffnet_graph::generators::erdos_renyi_gnm(30, 120, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.3);
        let chosen = greedy_immunization(&g, &probs, 5, 3, 30, 6, &mut rng);
        let unique: std::collections::HashSet<_> = chosen.iter().collect();
        assert_eq!(unique.len(), chosen.len());
    }
}
