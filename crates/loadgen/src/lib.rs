//! `diffnet-loadgen` — a traffic harness for the diffnet daemon.
//!
//! Drives the HTTP API from many concurrent connections in either
//! closed-loop (each connection fires its next request as soon as the
//! previous one answers — measures capacity) or open-loop mode (requests
//! are launched on a fixed global schedule regardless of completions —
//! measures behavior at a target arrival rate, exposing queueing).
//! Workload mixes cover the three traffic shapes the daemon serves:
//! cheap inline probes (`healthz`), the full inference round-trip
//! (`submit` → poll → `edges`), and incremental re-estimation
//! (`append` cascades to a standing job).
//!
//! Latency is recorded into [`diffnet_observe::DurationHistogram`]s
//! (per-worker, merged at the end), so `p50`/`p95`/`p99` resolve at
//! microsecond granularity; responses are accounted by class — `2xx`,
//! throttles (`429`), shed load (`503`), other `4xx`/`5xx`, timeouts,
//! transport errors — because under deliberate overload an error *is* a
//! result, not a failure of the harness. A warmup window (discarded) and
//! repeat windows (all reported) follow the same run-twice-report-both
//! convention as the bench harness.
//!
//! The crate is a library (used by `diffnet loadgen` and the
//! `serve_loopback` bench) with no dependencies beyond the workspace.

#![warn(missing_docs)]

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use diffnet_observe::{DurationHistogram, Json};
use diffnet_serve::{Client, Method};

/// Which request shape a worker fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `GET /v1/healthz` — the cheapest inline route; measures the
    /// reactor's request-handling floor.
    Healthz,
    /// `POST /v1/jobs` with a small status matrix, poll to a terminal
    /// state, then `GET /v1/jobs/{id}/edges` — the full inference
    /// round-trip, measured as one operation.
    Submit,
    /// `POST /v1/jobs/{id}/cascades` against a standing job created
    /// during setup — incremental re-estimation traffic.
    Append,
}

impl Workload {
    /// Parses a workload name (`healthz`, `submit`, `append`).
    pub fn parse(name: &str) -> Result<Workload, String> {
        match name {
            "healthz" => Ok(Workload::Healthz),
            "submit" => Ok(Workload::Submit),
            "append" => Ok(Workload::Append),
            other => Err(format!(
                "unknown workload {other:?} (expected healthz, submit, or append)"
            )),
        }
    }
}

/// A weighted workload mix, e.g. `healthz=9,submit=1`.
#[derive(Clone, Debug)]
pub struct Mix {
    entries: Vec<(Workload, u32)>,
    /// The flattened weighted rotation each worker walks (offset by its
    /// index), so the mix is deterministic without randomness.
    pattern: Vec<Workload>,
}

impl Mix {
    /// A single-workload mix.
    pub fn single(w: Workload) -> Mix {
        Mix::new(vec![(w, 1)]).expect("single-entry mix")
    }

    /// Builds a mix from `(workload, weight)` pairs.
    pub fn new(entries: Vec<(Workload, u32)>) -> Result<Mix, String> {
        if entries.is_empty() || entries.iter().all(|&(_, w)| w == 0) {
            return Err("workload mix has no positive weights".to_string());
        }
        let mut pattern = Vec::new();
        for &(w, weight) in &entries {
            for _ in 0..weight {
                pattern.push(w);
            }
        }
        Ok(Mix { entries, pattern })
    }

    /// Parses `name[=weight][,name[=weight]]…`, e.g. `healthz` or
    /// `healthz=9,submit=1`.
    pub fn parse(spec: &str) -> Result<Mix, String> {
        let mut entries = Vec::new();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, weight) = match part.split_once('=') {
                Some((n, w)) => (
                    n,
                    w.parse::<u32>()
                        .map_err(|_| format!("bad weight in {part:?}"))?,
                ),
                None => (part, 1),
            };
            entries.push((Workload::parse(name)?, weight));
        }
        Mix::new(entries)
    }

    /// Whether any entry uses `workload`.
    pub fn uses(&self, workload: Workload) -> bool {
        self.entries.iter().any(|&(w, wt)| w == workload && wt > 0)
    }

    fn pick(&self, step: usize) -> Workload {
        self.pattern[step % self.pattern.len()]
    }

    fn spec_string(&self) -> String {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(w, weight)| format!("{}={weight}", format!("{w:?}").to_lowercase()))
            .collect();
        parts.join(",")
    }
}

/// How the generator is wired up.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// The daemon to drive.
    pub addr: SocketAddr,
    /// Concurrent connections (one worker thread each).
    pub connections: usize,
    /// Length of each measured window.
    pub duration: Duration,
    /// Discarded warmup window before the first measurement (zero to
    /// skip).
    pub warmup: Duration,
    /// Measured windows to run; every window is reported.
    pub repeats: usize,
    /// Reuse each worker's connection across requests; `false` dials a
    /// fresh connection per request (the pre-reactor behavior).
    pub keep_alive: bool,
    /// `Some(rps)` switches to open-loop mode at that global arrival
    /// rate, spread evenly over the workers; `None` is closed-loop.
    pub target_rps: Option<f64>,
    /// The workload mix.
    pub mix: Mix,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl LoadgenConfig {
    /// A closed-loop healthz config against `addr`; callers override
    /// fields from there.
    pub fn new(addr: SocketAddr) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            connections: 4,
            duration: Duration::from_secs(5),
            warmup: Duration::from_secs(1),
            repeats: 1,
            keep_alive: true,
            target_rps: None,
            mix: Mix::single(Workload::Healthz),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Counts and latency for one measured window.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Operations completed (any outcome).
    pub requests: u64,
    /// Operations whose final status was 2xx.
    pub ok: u64,
    /// `429 Too Many Requests` (per-connection throttle).
    pub status_429: u64,
    /// `503 Service Unavailable` (queue full / capacity).
    pub status_503: u64,
    /// Other `4xx` responses.
    pub other_4xx: u64,
    /// Other `5xx` responses.
    pub other_5xx: u64,
    /// Requests that hit the client socket timeout.
    pub timeouts: u64,
    /// Other transport errors (refused, reset, protocol).
    pub io_errors: u64,
    /// Wall time of the window.
    pub elapsed: Duration,
    /// Merged per-operation latency across all workers.
    pub hist: DurationHistogram,
}

impl LoadReport {
    /// Successful operations per second over the window.
    pub fn ok_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// All completed operations per second over the window.
    pub fn total_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }

    fn absorb(&mut self, t: &LoadReport) {
        self.requests += t.requests;
        self.ok += t.ok;
        self.status_429 += t.status_429;
        self.status_503 += t.status_503;
        self.other_4xx += t.other_4xx;
        self.other_5xx += t.other_5xx;
        self.timeouts += t.timeouts;
        self.io_errors += t.io_errors;
        self.hist.merge(&t.hist);
    }

    /// The window as a JSON object (the `diffnet loadgen` output shape).
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.push("requests", self.requests);
        j.push("ok", self.ok);
        j.push("rps", round3(self.ok_rps()));
        j.push("total_rps", round3(self.total_rps()));
        j.push("elapsed_s", round3(self.elapsed.as_secs_f64()));
        j.push("latency_p50_s", self.hist.quantile(0.50));
        j.push("latency_p95_s", self.hist.quantile(0.95));
        j.push("latency_p99_s", self.hist.quantile(0.99));
        let mut errors = Json::object();
        errors.push("status_429", self.status_429);
        errors.push("status_503", self.status_503);
        errors.push("other_4xx", self.other_4xx);
        errors.push("other_5xx", self.other_5xx);
        errors.push("timeouts", self.timeouts);
        errors.push("io_errors", self.io_errors);
        j.push("errors", errors);
        j
    }
}

/// All measured windows of one run.
#[derive(Clone, Debug)]
pub struct LoadSummary {
    /// One report per repeat, in order.
    pub reports: Vec<LoadReport>,
}

impl LoadSummary {
    /// The repeat with the highest successful throughput — the number a
    /// capacity claim should quote (the slowest window includes noise the
    /// fastest one proves is not inherent).
    pub fn best(&self) -> &LoadReport {
        self.reports
            .iter()
            .max_by(|a, b| a.ok_rps().total_cmp(&b.ok_rps()))
            .expect("at least one repeat")
    }

    /// The whole run as JSON: config echo, per-repeat windows, and the
    /// best window hoisted to the top level.
    pub fn to_json(&self, config: &LoadgenConfig) -> Json {
        let mut j = Json::object();
        let mut cfg = Json::object();
        cfg.push("addr", config.addr.to_string());
        cfg.push("connections", config.connections as u64);
        cfg.push("duration_s", round3(config.duration.as_secs_f64()));
        cfg.push("warmup_s", round3(config.warmup.as_secs_f64()));
        cfg.push("repeats", config.repeats.max(1) as u64);
        cfg.push("keep_alive", config.keep_alive);
        match config.target_rps {
            Some(r) => {
                cfg.push("target_rps", r);
            }
            None => {
                cfg.push("mode", "closed-loop");
            }
        }
        cfg.push("mix", config.mix.spec_string());
        j.push("config", cfg);
        j.push("best", self.best().to_json());
        let windows: Vec<Json> = self.reports.iter().map(LoadReport::to_json).collect();
        j.push("repeats", Json::Arr(windows));
        j
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Parses a human duration: `5s`, `750ms`, `2m`, or bare seconds
/// (`0.5`).
pub fn parse_duration(raw: &str) -> Result<Duration, String> {
    let raw = raw.trim();
    let (digits, scale) = if let Some(d) = raw.strip_suffix("ms") {
        (d, 0.001)
    } else if let Some(d) = raw.strip_suffix('s') {
        (d, 1.0)
    } else if let Some(d) = raw.strip_suffix('m') {
        (d, 60.0)
    } else {
        (raw, 1.0)
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {raw:?} (expected e.g. 5s, 750ms, 2m)"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("bad duration {raw:?}"));
    }
    Ok(Duration::from_secs_f64(value * scale))
}

/// A deterministic status matrix (cascades over a ring) in the submit
/// wire format — the same generator the serve tests use.
pub fn sample_statuses_body(beta: usize, n: usize) -> Vec<u8> {
    let mut out = String::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for l in 0..beta {
        let mut row = vec![false; n];
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let start = (state >> 33) as usize % n;
        for k in 0..1 + (l % (n / 2)) {
            row[(start + k) % n] = true;
        }
        let cells: Vec<&str> = row.iter().map(|&b| if b { "1" } else { "0" }).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out.into_bytes()
}

/// Per-run fixtures: the standing job the `append` workload targets.
struct Setup {
    append_job: Option<u64>,
}

fn prepare(config: &LoadgenConfig) -> io::Result<Setup> {
    let client = Client::with_timeout(config.addr, config.timeout);
    if !client.healthz()? {
        return Err(io::Error::other("server failed healthz before the run"));
    }
    let append_job = if config.mix.uses(Workload::Append) {
        let (status, doc) = client.post_json("/v1/jobs", &sample_statuses_body(10, 6))?;
        if status != 201 {
            return Err(io::Error::other(format!(
                "append-target submit returned {status}: {}",
                doc.to_pretty().trim()
            )));
        }
        let id = doc
            .get("id")
            .and_then(Json::as_f64)
            .ok_or_else(|| io::Error::other("submit response has no id"))? as u64;
        client.wait_for_job(id, Duration::from_secs(60))?;
        Some(id)
    } else {
        None
    };
    Ok(Setup { append_job })
}

/// Runs the configured load: setup, warmup (discarded), then
/// `repeats` measured windows.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadSummary> {
    if config.connections == 0 {
        return Err(io::Error::other("connections must be at least 1"));
    }
    let setup = prepare(config)?;
    if !config.warmup.is_zero() {
        run_window(config, &setup, config.warmup)?;
    }
    let mut reports = Vec::new();
    for _ in 0..config.repeats.max(1) {
        reports.push(run_window(config, &setup, config.duration)?);
    }
    Ok(LoadSummary { reports })
}

fn run_window(config: &LoadgenConfig, setup: &Setup, window: Duration) -> io::Result<LoadReport> {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(config.connections + 1));
    let tallies: Arc<Mutex<Vec<LoadReport>>> = Arc::new(Mutex::new(Vec::new()));
    // Open loop: each worker fires every `connections / rps` seconds,
    // with start offsets staggering the fleet across one period.
    let period = config
        .target_rps
        .map(|rps| Duration::from_secs_f64(config.connections as f64 / rps.max(0.001)));
    let mut handles = Vec::new();
    for worker in 0..config.connections {
        let cfg = config.clone();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let tallies = Arc::clone(&tallies);
        let append_job = setup.append_job;
        handles.push(std::thread::spawn(move || {
            let client = Client::with_timeout(cfg.addr, cfg.timeout);
            let mut tally = LoadReport::default();
            barrier.wait();
            let start = Instant::now();
            let mut next = period.map(|p| {
                start
                    + Duration::from_secs_f64(
                        p.as_secs_f64() * worker as f64 / cfg.connections as f64,
                    )
            });
            let mut step = worker;
            while !stop.load(Ordering::Relaxed) {
                if let (Some(p), Some(n)) = (period, next.as_mut()) {
                    let now = Instant::now();
                    if now < *n {
                        std::thread::sleep((*n - now).min(Duration::from_millis(50)));
                        continue;
                    }
                    *n += p;
                }
                let workload = cfg.mix.pick(step);
                step += 1;
                let began = Instant::now();
                let outcome = run_op(&cfg, &client, workload, append_job);
                tally.hist.record(began.elapsed().as_secs_f64());
                tally.requests += 1;
                match outcome {
                    Outcome::Status(s) if (200..300).contains(&s) => tally.ok += 1,
                    Outcome::Status(429) => tally.status_429 += 1,
                    Outcome::Status(503) => tally.status_503 += 1,
                    Outcome::Status(s) if s >= 500 => tally.other_5xx += 1,
                    Outcome::Status(_) => tally.other_4xx += 1,
                    Outcome::TimedOut => tally.timeouts += 1,
                    Outcome::IoError => tally.io_errors += 1,
                }
            }
            tally.elapsed = start.elapsed();
            tallies.lock().expect("tally lock").push(tally);
        }));
    }
    barrier.wait();
    let began = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().map_err(|_| io::Error::other("worker panicked"))?;
    }
    let mut merged = LoadReport {
        elapsed: began.elapsed(),
        ..LoadReport::default()
    };
    for t in tallies.lock().expect("tally lock").iter() {
        merged.absorb(t);
    }
    Ok(merged)
}

enum Outcome {
    Status(u16),
    TimedOut,
    IoError,
}

fn classify(err: &io::Error) -> Outcome {
    match err.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => Outcome::TimedOut,
        _ => Outcome::IoError,
    }
}

fn run_op(
    config: &LoadgenConfig,
    pooled: &Client,
    workload: Workload,
    append_job: Option<u64>,
) -> Outcome {
    // keep_alive=false measures the reconnect-per-request protocol: a
    // fresh client per operation dials a fresh connection.
    let fresh;
    let client = if config.keep_alive {
        pooled
    } else {
        fresh = Client::with_timeout(config.addr, config.timeout);
        &fresh
    };
    match workload {
        Workload::Healthz => match client.get("/v1/healthz") {
            Ok((status, _)) => Outcome::Status(status),
            Err(e) => classify(&e),
        },
        Workload::Submit => {
            let (status, doc) = match client.post_json("/v1/jobs", &sample_statuses_body(10, 6)) {
                Ok(r) => r,
                Err(e) => return classify(&e),
            };
            if status != 201 {
                return Outcome::Status(status);
            }
            let Some(id) = doc.get("id").and_then(Json::as_f64).map(|v| v as u64) else {
                return Outcome::IoError;
            };
            if let Err(e) = client.wait_for_job(id, config.timeout) {
                return classify(&e);
            }
            match client.get(&format!("/v1/jobs/{id}/edges")) {
                Ok((status, _)) => Outcome::Status(status),
                Err(e) => classify(&e),
            }
        }
        Workload::Append => {
            let Some(id) = append_job else {
                return Outcome::IoError;
            };
            match client.request(
                Method::Post,
                &format!("/v1/jobs/{id}/cascades"),
                &sample_statuses_body(5, 6),
            ) {
                Ok((status, _)) => Outcome::Status(status),
                Err(e) => classify(&e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_duration_accepts_units_and_bare_seconds() {
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("750ms").unwrap(), Duration::from_millis(750));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("0.5").unwrap(), Duration::from_millis(500));
        assert!(parse_duration("five").is_err());
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn mix_parses_weights_and_rotates_deterministically() {
        let mix = Mix::parse("healthz=3,submit=1").expect("mix");
        let picks: Vec<Workload> = (0..8).map(|i| mix.pick(i)).collect();
        assert_eq!(picks.iter().filter(|&&w| w == Workload::Healthz).count(), 6);
        assert_eq!(picks.iter().filter(|&&w| w == Workload::Submit).count(), 2);
        assert!(mix.uses(Workload::Submit));
        assert!(!mix.uses(Workload::Append));
        assert!(Mix::parse("bogus").is_err());
        assert!(Mix::parse("healthz=0").is_err());
    }

    #[test]
    fn report_json_carries_error_classes_and_percentiles() {
        let mut r = LoadReport {
            requests: 10,
            ok: 8,
            status_429: 1,
            status_503: 1,
            elapsed: Duration::from_secs(2),
            ..LoadReport::default()
        };
        for _ in 0..10 {
            r.hist.record(0.002);
        }
        let j = r.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_f64), Some(10.0));
        assert_eq!(j.get("rps").and_then(Json::as_f64), Some(4.0));
        let errors = j.get("errors").expect("errors");
        assert_eq!(errors.get("status_429").and_then(Json::as_f64), Some(1.0));
        assert_eq!(errors.get("status_503").and_then(Json::as_f64), Some(1.0));
        let p50 = j.get("latency_p50_s").and_then(Json::as_f64).expect("p50");
        assert!((0.002..0.0026).contains(&p50), "{p50}");
    }

    #[test]
    fn closed_loop_healthz_run_against_a_live_server() {
        let dir = std::env::temp_dir().join(format!("diffnet-loadgen-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = diffnet_serve::Server::bind(&diffnet_serve::ServeConfig {
            data_dir: dir.clone(),
            access_log: false,
            ..diffnet_serve::ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let handle = std::thread::spawn(move || server.serve_forever());

        let config = LoadgenConfig {
            connections: 2,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
            ..LoadgenConfig::new(addr)
        };
        let summary = run(&config).expect("load run");
        let best = summary.best();
        assert!(best.ok > 0, "no successful requests");
        assert_eq!(best.io_errors, 0, "{best:?}");
        assert!(
            best.hist.quantile(0.5) > 0.0,
            "degenerate latency histogram"
        );
        let json = summary.to_json(&config);
        assert!(json.get("best").is_some() && json.get("config").is_some());

        Client::new(addr).shutdown().expect("shutdown");
        handle.join().expect("join").expect("serve");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
