//! The nonblocking reactor: an `epoll(7)` event loop over raw FFI.
//!
//! One thread owns every socket. The listener, an `eventfd(2)` doorbell,
//! and all client connections are registered level-triggered on one
//! epoll instance; readiness drives the incremental parser
//! ([`crate::http::parse_buffered`]) and the write-buffer flusher, so a
//! slow or hostile client costs one bounded [`Conn`] instead of a
//! blocked thread. FFI is confined to this module (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `eventfd` / `read` / `write` / `close`),
//! mirroring the `mmap(2)`/`signal(2)` precedents elsewhere in the
//! workspace — std already links libc, so no crate is needed.
//!
//! # Request flow
//!
//! Parsed requests are answered in arrival order per connection
//! (pipelining): each gets an ordered response slot. Cheap routes
//! (healthz, metrics, status queries, shutdown) are handled inline on
//! the loop; routes that touch the job store (submit, cascades, output
//! reads) are dispatched to a small request-worker pool whose
//! completions come back through a lock-protected queue plus the
//! eventfd doorbell — the reactor never blocks on disk or on the job
//! manager, and responses flush as soon as their turn comes.
//!
//! # Bounds and backpressure
//!
//! Everything a client can grow is capped:
//!
//! * the read buffer holds at most one partial request (head + body
//!   caps) plus one read chunk — requests are parsed out between read
//!   chunks, and while the write buffer is saturated the connection's
//!   read interest is deregistered entirely, letting TCP push back on
//!   the peer without the level-triggered loop spinning;
//! * more than [`Tuning::max_inflight_per_conn`] unanswered requests on
//!   one connection → `429` with `Retry-After`;
//! * a full request-worker queue → `503` (and a full job queue is the
//!   job manager's own `503`);
//! * more than [`Tuning::max_connections`] open connections → the
//!   accept is answered `503` and closed; a persistent `accept(2)`
//!   failure (fd exhaustion) deregisters the listener for a short
//!   backoff instead of spinning on the un-acceptable backlog entry;
//! * a request that does not complete within
//!   [`Tuning::request_read_timeout`] of its first byte → `408` and
//!   close (slowloris defense); a connection idle beyond
//!   [`Tuning::idle_timeout`] with nothing in flight is closed
//!   silently. Closing a connection never touches jobs the client
//!   submitted — they are owned by the [`crate::job::JobManager`].
//!
//! # Shutdown
//!
//! When the shutdown flag flips (signal, `POST /v1/shutdown`, or
//! [`crate::server::Server::request_shutdown`]), the reactor stops
//! accepting and stops reading, drains every in-flight response (bounded
//! by [`Tuning::drain_timeout`]), then joins the request workers. Job
//! workers are joined by the caller afterwards, preserving the PR-5
//! contract that in-flight jobs checkpoint and stay resumable.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{parse_buffered, truncation_error, Parsed, Request, Response};
use crate::server::{endpoint_metric, route, route_is_heavy, Shared};

// ---------------------------------------------------------------------------
// Raw epoll / eventfd FFI. Linux-specific by design: the daemon targets
// the same hosts the benches run on, and std links libc already.

// Field layout must match the kernel ABI, which differs per target:
// x86/x86_64 pack the struct (`data` at offset 4, size 12); every other
// Linux architecture aligns it naturally (`data` at offset 8, size 16),
// mirroring libc's definition.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;

/// A level-triggered epoll instance.
struct Poller {
    epfd: RawFd,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 allocates a new fd; no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for readiness; returns `(token, events)` pairs. A signal
    /// interruption returns an empty batch (the caller's loop re-checks
    /// its shutdown flags).
    fn wait(&self, buf: &mut Vec<(u64, u32)>, timeout: Duration) -> io::Result<()> {
        const MAX_EVENTS: usize = 256;
        let mut events: [EpollEvent; MAX_EVENTS] = unsafe { std::mem::zeroed() };
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        // SAFETY: the events array lives across the call and maxevents
        // matches its length.
        let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as c_int, ms) };
        buf.clear();
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in events.iter().take(n as usize) {
            buf.push((ev.data, ev.events));
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own.
        unsafe { close(self.epfd) };
    }
}

/// The `eventfd(2)` doorbell: request workers (and shutdown requests)
/// ring it to wake the reactor out of `epoll_wait` immediately.
pub(crate) struct Wakeup {
    fd: RawFd,
}

impl Wakeup {
    pub(crate) fn new() -> io::Result<Wakeup> {
        // SAFETY: eventfd allocates a new fd; no pointers involved.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Wakeup { fd })
    }

    /// Adds 1 to the eventfd counter, waking an `epoll_wait`er.
    pub(crate) fn ring(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live stack value. An EAGAIN
        // (counter saturated) still leaves the fd readable, which is all
        // a doorbell needs.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Clears the counter so the level-triggered registration goes quiet.
    fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reading 8 bytes into a live stack value.
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Request-worker pool: heavy routes run here so the loop never blocks.

struct WorkItem {
    token: u64,
    seq: u64,
    request: Request,
}

struct Completion {
    token: u64,
    seq: u64,
    response: Response,
}

pub(crate) struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
    ready: Condvar,
    cap: usize,
}

impl WorkQueue {
    fn new(cap: usize) -> WorkQueue {
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless the queue is at capacity (the 503 signal).
    fn try_push(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut q = self.items.lock().expect("work queue lock");
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }
}

fn worker_loop(shared: &Shared, work: &WorkQueue, completions: &Mutex<Vec<Completion>>) {
    loop {
        let item = {
            let mut q = work.items.lock().expect("work queue lock");
            loop {
                if let Some(item) = q.pop_front() {
                    break item;
                }
                // Drain queued requests even while shutting down — the
                // reactor holds their connections open until answered.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = work
                    .ready
                    .wait_timeout(q, Duration::from_millis(200))
                    .expect("work queue lock")
                    .0;
            }
        };
        let response = route(shared, &item.request);
        completions
            .lock()
            .expect("completion lock")
            .push(Completion {
                token: item.token,
                seq: item.seq,
                response,
            });
        shared.wakeup.ring();
    }
}

// ---------------------------------------------------------------------------
// Connection state machine.

/// Reactor knobs; [`Default`] is production-shaped, tests shrink the
/// timeouts.
#[derive(Clone, Copy, Debug)]
pub struct Tuning {
    /// Open-connection cap; accepts beyond it are answered `503`.
    pub max_connections: usize,
    /// Unanswered pipelined requests allowed per connection before
    /// `429`.
    pub max_inflight_per_conn: usize,
    /// Close a connection with nothing buffered and nothing in flight
    /// after this long (advertised via `Keep-Alive: timeout=`).
    pub idle_timeout: Duration,
    /// A request must arrive completely within this long of its first
    /// byte, else `408` + close.
    pub request_read_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight responses.
    pub drain_timeout: Duration,
    /// Request-worker queue capacity; overflow is `503`.
    pub worker_queue_cap: usize,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            max_connections: 1024,
            max_inflight_per_conn: 16,
            idle_timeout: Duration::from_secs(30),
            request_read_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            worker_queue_cap: 256,
        }
    }
}

/// Pause further reads once this much response data is buffered — the
/// client is not draining, so TCP should push back on it.
const WRITE_BUF_PAUSE: usize = 256 * 1024;

/// How long the listener stays deregistered after a persistent accept
/// failure (EMFILE/ENFILE fd exhaustion and the like) before retrying.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(100);

/// One ordered response slot: `bytes` is `None` while the request is in
/// flight on a worker.
struct SlotState {
    seq: u64,
    bytes: Option<Vec<u8>>,
    /// `Connection: close` (or protocol error): stop after flushing this
    /// response.
    close_after: bool,
    /// Telemetry captured at parse time, consumed when the response is
    /// recorded.
    started: Instant,
    metric: &'static str,
    method: String,
    path: String,
    request_id: String,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    written: usize,
    pending: VecDeque<SlotState>,
    next_seq: u64,
    /// Requests answered on this connection so far (for the keep-alive
    /// reuse counter).
    answered: u64,
    last_activity: Instant,
    /// When the current partial request started arriving.
    partial_since: Option<Instant>,
    /// No more requests will be read (close requested, protocol error,
    /// peer EOF, or shutdown drain).
    stop_reading: bool,
    /// Close once every pending response has flushed.
    close_after_flush: bool,
    /// Interest currently registered with epoll.
    registered: u32,
}

impl Conn {
    fn unanswered(&self) -> usize {
        self.pending.iter().filter(|s| s.bytes.is_none()).count()
    }

    /// Reads pause while this much response data sits unflushed: the
    /// peer is not draining, so read interest is dropped (level-
    /// triggered epoll would otherwise spin on the readable socket) and
    /// TCP pushes back until [`Reactor::flush_conn`] drains the buffer
    /// and re-arms it.
    fn read_paused(&self) -> bool {
        self.write_buf.len() - self.written > WRITE_BUF_PAUSE
    }
}

struct ConnSlot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_for(index: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | index as u64
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

// ---------------------------------------------------------------------------
// The reactor proper.

pub(crate) struct Reactor {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<Shared>,
    tuning: Tuning,
    slots: Vec<ConnSlot>,
    free: Vec<usize>,
    open: usize,
    work: Arc<WorkQueue>,
    completions: Arc<Mutex<Vec<Completion>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    accepting: bool,
    /// Set after a persistent accept error: the listener is deregistered
    /// until this instant so the loop keeps servicing (and closing)
    /// existing connections instead of spinning on the dead accept.
    accept_paused_until: Option<Instant>,
    draining_since: Option<Instant>,
    last_sweep: Instant,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        request_workers: usize,
        tuning: Tuning,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        poller.add(shared.wakeup.fd, EPOLLIN, TOKEN_WAKEUP)?;
        let work = Arc::new(WorkQueue::new(tuning.worker_queue_cap));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::new();
        for i in 0..request_workers.max(1) {
            let s = Arc::clone(&shared);
            let w = Arc::clone(&work);
            let c = Arc::clone(&completions);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("diffnet-http-{i}"))
                    .spawn(move || worker_loop(&s, &w, &c))?,
            );
        }
        Ok(Reactor {
            poller,
            listener,
            shared,
            tuning,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            work,
            completions,
            workers,
            accepting: true,
            accept_paused_until: None,
            draining_since: None,
            last_sweep: Instant::now(),
        })
    }

    /// Runs the event loop until shutdown completes. Returns after every
    /// connection is drained (or the drain deadline passes) and the
    /// request workers are joined.
    pub(crate) fn run(mut self) -> io::Result<()> {
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            let shutting_down =
                self.shared.shutdown.load(Ordering::SeqCst) || crate::server::signalled();
            if shutting_down {
                self.enter_drain();
                if self.drain_finished() {
                    break;
                }
            }
            self.poller.wait(&mut events, Duration::from_millis(100))?;
            self.shared.rec.add("reactor_wakeups", 1);
            for &(token, mask) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.shared.wakeup.drain(),
                    _ => self.conn_ready(token, mask),
                }
            }
            self.apply_completions();
            self.sweep_timers();
            self.resume_accepts();
        }
        // Propagate shutdown to the worker pool and join it; queued
        // requests were answered during the drain above (or their
        // connections are closed, making completions no-ops).
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.work.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        Ok(())
    }

    // -- accept path ------------------------------------------------------

    fn accept_ready(&mut self) {
        if !self.accepting || self.accept_paused_until.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The peer aborted between readiness and accept: that
                // connection is gone, but the next one may be fine.
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionAborted
                        || e.kind() == io::ErrorKind::ConnectionReset =>
                {
                    continue
                }
                Err(_) => {
                    // Persistent failure (EMFILE/ENFILE fd exhaustion,
                    // ENOMEM, …): the pending connection stays in the
                    // backlog, so with level-triggered readiness an
                    // immediate retry would spin the loop forever.
                    // Deregister the listener for a backoff so the loop
                    // keeps servicing — and eventually closing, which
                    // frees fds — the connections it already has.
                    self.shared.rec.add("http_accept_errors", 1);
                    self.poller.delete(self.listener.as_raw_fd());
                    self.accept_paused_until = Some(Instant::now() + ACCEPT_ERROR_BACKOFF);
                    break;
                }
            }
        }
    }

    /// Re-registers the listener once an accept-error backoff expires.
    fn resume_accepts(&mut self) {
        let Some(until) = self.accept_paused_until else {
            return;
        };
        if !self.accepting {
            // A drain started meanwhile; it owns the listener's fate.
            self.accept_paused_until = None;
            return;
        }
        if Instant::now() >= until
            && self
                .poller
                .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                .is_ok()
        {
            self.accept_paused_until = None;
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.shared.fault.hit(crate::server::FAULT_ACCEPT).is_err() {
            // Injected accept fault: count it and drop the connection
            // without reading a byte.
            self.shared.rec.add("accept_faults", 1);
            return;
        }
        if self.open >= self.tuning.max_connections {
            // Best-effort rejection: the socket is fresh, so a small
            // response almost always fits in the send buffer without
            // blocking.
            self.shared.rec.add("http_rejected_capacity", 1);
            let mut s = stream;
            let _ = s.set_nonblocking(true);
            let _ = Response::error(503, "connection capacity reached").write_to(&mut s);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(ConnSlot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let gen = self.slots[index].gen;
        let token = token_for(index, gen);
        if self
            .poller
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            self.free.push(index);
            return;
        }
        self.slots[index].conn = Some(Conn {
            stream,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            answered: 0,
            last_activity: Instant::now(),
            partial_since: None,
            stop_reading: false,
            close_after_flush: false,
            registered: EPOLLIN | EPOLLRDHUP,
        });
        self.open += 1;
        self.shared.rec.add("http_connections_opened", 1);
        self.shared
            .rec
            .value("http_connections_open", self.open as f64);
    }

    // -- connection readiness ---------------------------------------------

    fn slot_index(&self, token: u64) -> Option<usize> {
        let index = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let slot = self.slots.get(index)?;
        if slot.gen != gen || slot.conn.is_none() {
            return None; // stale event for a recycled slot
        }
        Some(index)
    }

    fn conn_ready(&mut self, token: u64, mask: u32) {
        let Some(index) = self.slot_index(token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(index);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_ready(index);
        }
        if self.slots[index].conn.is_some() && mask & EPOLLOUT != 0 {
            self.flush_conn(index);
        }
    }

    fn read_ready(&mut self, index: usize) {
        let mut chunk = [0u8; 64 * 1024];
        let mut peer_closed = false;
        loop {
            {
                let conn = self.slots[index].conn.as_mut().expect("live conn");
                if conn.stop_reading || conn.read_paused() {
                    // Readiness on a connection we will not read right
                    // now: level-triggered epoll would spin on it, so
                    // drop read interest (keeping write interest if a
                    // flush is still pending). A backpressure pause is
                    // re-armed by flush_conn once the buffer drains;
                    // stop_reading never is.
                    let still_writing = conn.written < conn.write_buf.len();
                    Self::update_interest(&self.poller, conn, still_writing);
                    return;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        peer_closed = true;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if conn.partial_since.is_none() {
                            conn.partial_since = Some(conn.last_activity);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close_conn(index);
                        return;
                    }
                }
            }
            // Parse and flush between chunks, not after the whole burst:
            // a client pipelining at line rate keeps the socket readable,
            // and only parse/flush move the in-flight and write-buffer
            // budgets the pause check above reads — this bounds read_buf
            // to one partial request plus one chunk per iteration.
            self.parse_available(index);
            if self.slots[index].conn.is_none() {
                return;
            }
            self.flush_conn(index);
            if self.slots[index].conn.is_none() {
                return;
            }
            if peer_closed {
                break;
            }
        }
        if peer_closed {
            let partial = {
                let conn = self.slots[index].conn.as_mut().expect("live conn");
                conn.stop_reading = true;
                !conn.read_buf.is_empty()
            };
            if partial {
                // Half-sent request at EOF: nothing more will arrive, so
                // answer with the typed truncation error (mid-head vs
                // mid-body) the blocking path also produces.
                let e = {
                    let conn = self.slots[index].conn.as_mut().expect("live conn");
                    let e = truncation_error(&conn.read_buf);
                    conn.read_buf.clear();
                    conn.partial_since = None;
                    e
                };
                self.shared.rec.add("http_protocol_errors", 1);
                self.push_error_slot(index, Response::error(e.status(), e.to_string()));
            }
            let conn = self.slots[index].conn.as_mut().expect("live conn");
            if conn.pending.is_empty() && conn.write_buf.len() == conn.written {
                self.close_conn(index);
                return;
            }
            conn.close_after_flush = true;
        }
        self.flush_conn(index);
    }

    /// Runs the incremental parser over whatever is buffered, filling
    /// response slots for every complete request.
    fn parse_available(&mut self, index: usize) {
        loop {
            let conn = self.slots[index].conn.as_mut().expect("live conn");
            if conn.stop_reading || conn.read_buf.is_empty() {
                return;
            }
            match parse_buffered(&conn.read_buf, &self.shared.limits) {
                Ok(Parsed::NeedMore) => {
                    if conn.partial_since.is_none() {
                        conn.partial_since = Some(Instant::now());
                    }
                    return;
                }
                Ok(Parsed::Complete { request, consumed }) => {
                    conn.read_buf.drain(..consumed);
                    if conn.read_buf.is_empty() {
                        conn.partial_since = None;
                    }
                    self.handle_request(index, request);
                }
                Err(e) => {
                    // Protocol error: answer it, then close — framing is
                    // unrecoverable, so the rest of the buffer is dead.
                    self.shared.rec.add("http_protocol_errors", 1);
                    let conn = self.slots[index].conn.as_mut().expect("live conn");
                    conn.read_buf.clear();
                    conn.partial_since = None;
                    self.push_error_slot(index, Response::error(e.status(), e.to_string()));
                    return;
                }
            }
            if self.slots[index].conn.is_none() {
                return;
            }
        }
    }

    /// Appends a close-after error response (protocol error, truncation,
    /// read timeout) behind any requests already pending, preserving
    /// pipelined response order, and stops further reads.
    fn push_error_slot(&mut self, index: usize, response: Response) {
        let rid = self.shared.generated_request_id();
        let seq = {
            let conn = self.slots[index].conn.as_mut().expect("live conn");
            conn.stop_reading = true;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.pending.push_back(SlotState {
                seq,
                bytes: None,
                close_after: true,
                started: Instant::now(),
                metric: "http_request_seconds_other",
                method: "-".to_string(),
                path: "-".to_string(),
                request_id: rid,
            });
            seq
        };
        self.fill_slot(index, seq, response);
    }

    fn handle_request(&mut self, index: usize, request: Request) {
        self.shared.rec.add("http_requests", 1);
        let keep_alive = request.wants_keep_alive() && self.draining_since.is_none();
        let rid = self.shared.request_id(&request);
        let metric = endpoint_metric(&request);
        let (seq, over_budget) = {
            let conn = self.slots[index].conn.as_mut().expect("live conn");
            let seq = conn.next_seq;
            conn.next_seq += 1;
            if conn.answered > 0 || !conn.pending.is_empty() {
                self.shared.rec.add("http_keepalive_reuses", 1);
            }
            let over = conn.unanswered() >= self.tuning.max_inflight_per_conn;
            conn.pending.push_back(SlotState {
                seq,
                bytes: None,
                close_after: !keep_alive,
                started: Instant::now(),
                metric,
                method: request.method.to_string(),
                path: request.path.clone(),
                request_id: rid,
            });
            if !keep_alive {
                conn.stop_reading = true;
            }
            (seq, over)
        };
        if over_budget {
            // The client has a full window of unanswered requests on
            // this connection: shed rather than buffer without bound.
            self.shared.rec.add("http_throttled_429", 1);
            let mut resp = Response::error(
                429,
                format!(
                    "more than {} requests in flight on this connection",
                    self.tuning.max_inflight_per_conn
                ),
            );
            resp.header("Retry-After", "1");
            self.fill_slot(index, seq, resp);
            return;
        }
        let token = self.slots[index].conn.as_ref().expect("live conn").token;
        if route_is_heavy(&request) {
            match self.work.try_push(WorkItem {
                token,
                seq,
                request,
            }) {
                Ok(()) => {}
                Err(_) => {
                    self.shared.rec.add("http_rejected_busy", 1);
                    self.fill_slot(index, seq, Response::error(503, "request queue full"));
                }
            }
        } else {
            let response = route(&self.shared, &request);
            self.fill_slot(index, seq, response);
        }
    }

    /// Stores a response into its ordered slot and records its
    /// telemetry; the caller flushes.
    fn fill_slot(&mut self, index: usize, seq: u64, mut response: Response) {
        let idle_secs = self.tuning.idle_timeout.as_secs();
        let Some(conn) = self.slots[index].conn.as_mut() else {
            return;
        };
        let Some(slot) = conn.pending.iter_mut().find(|s| s.seq == seq) else {
            return;
        };
        if response.status >= 400 {
            self.shared.rec.add("http_error_responses", 1);
        }
        response.header("X-Request-Id", slot.request_id.clone());
        let keep_alive = !slot.close_after;
        let mut bytes = Vec::with_capacity(256 + response.body.len());
        response.serialize_into(&mut bytes, keep_alive, idle_secs);
        slot.bytes = Some(bytes);

        let seconds = slot.started.elapsed().as_secs_f64();
        self.shared.rec.duration(slot.metric, seconds);
        let slow = seconds > self.shared.slow_request_secs;
        if slow {
            self.shared.rec.add("http_slow_requests", 1);
        }
        if self.shared.access_log || slow {
            let mut line = diffnet_observe::Json::object();
            line.push("request_id", slot.request_id.as_str());
            line.push("method", slot.method.as_str());
            line.push("path", slot.path.as_str());
            line.push("status", u64::from(response.status));
            line.push("duration_s", seconds);
            line.push("bytes", response.body.len());
            if slow {
                line.push("slow", true);
                line.push("threshold_s", self.shared.slow_request_secs);
            }
            eprintln!("[access] {}", line.to_compact());
        }
    }

    /// Moves ready responses (in order) into the write buffer and writes
    /// as much as the socket accepts.
    fn flush_conn(&mut self, index: usize) {
        let close_now = {
            let conn = self.slots[index].conn.as_mut().expect("live conn");
            while let Some(front) = conn.pending.front() {
                if front.bytes.is_none() {
                    break;
                }
                let slot = conn.pending.pop_front().expect("front exists");
                conn.write_buf
                    .extend_from_slice(&slot.bytes.expect("ready"));
                conn.answered += 1;
                if slot.close_after {
                    conn.close_after_flush = true;
                    conn.stop_reading = true;
                    break;
                }
            }
            let mut failed = false;
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if conn.written == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.written = 0;
            } else if conn.written > WRITE_BUF_PAUSE {
                // Reclaim flushed bytes so a slow reader does not pin
                // the full history of its responses.
                conn.write_buf.drain(..conn.written);
                conn.written = 0;
            }
            failed
                || (conn.close_after_flush && conn.write_buf.is_empty() && conn.pending.is_empty())
        };
        if close_now {
            self.close_conn(index);
            return;
        }
        let conn = self.slots[index].conn.as_mut().expect("live conn");
        Self::update_interest(&self.poller, conn, !conn.write_buf.is_empty());
    }

    /// Re-registers epoll interest to match what the connection can
    /// currently make progress on. `EPOLLRDHUP` rides with read interest
    /// only: once reads stop — permanently (`stop_reading`) or for a
    /// backpressure pause (`read_paused`) — a readable or half-closed
    /// peer would otherwise keep the level-triggered event hot and spin
    /// the loop.
    fn update_interest(poller: &Poller, conn: &mut Conn, want_write: bool) {
        let mut events = 0;
        if !conn.stop_reading && !conn.read_paused() {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if want_write {
            events |= EPOLLOUT;
        }
        if events != conn.registered
            && poller
                .modify(conn.stream.as_raw_fd(), events, conn.token)
                .is_ok()
        {
            conn.registered = events;
        }
    }

    fn close_conn(&mut self, index: usize) {
        if let Some(conn) = self.slots[index].conn.take() {
            self.poller.delete(conn.stream.as_raw_fd());
            self.slots[index].gen = self.slots[index].gen.wrapping_add(1);
            self.free.push(index);
            self.open -= 1;
            self.shared.rec.add("http_connections_closed", 1);
            self.shared
                .rec
                .value("http_connections_open", self.open as f64);
        }
    }

    // -- completions, timers, shutdown ------------------------------------

    fn apply_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut q = self.completions.lock().expect("completion lock");
            std::mem::take(&mut *q)
        };
        for c in done {
            if let Some(index) = self.slot_index(c.token) {
                self.fill_slot(index, c.seq, c.response);
                self.flush_conn(index);
            }
            // A completion for a closed connection is dropped: the job
            // itself (if any) lives on in the manager.
        }
    }

    fn sweep_timers(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < Duration::from_millis(250) {
            return;
        }
        self.last_sweep = now;
        for index in 0..self.slots.len() {
            let Some(conn) = self.slots[index].conn.as_ref() else {
                continue;
            };
            // Slowloris / stalled upload: a partial request must finish
            // within the read timeout of its first byte.
            if let Some(since) = conn.partial_since {
                if now.duration_since(since) > self.tuning.request_read_timeout {
                    self.shared.rec.add("http_read_timeouts", 1);
                    let conn = self.slots[index].conn.as_mut().expect("live conn");
                    conn.read_buf.clear();
                    conn.partial_since = None;
                    self.push_error_slot(index, Response::error(408, "request read timeout"));
                    self.flush_conn(index);
                    continue;
                }
            }
            let Some(conn) = self.slots[index].conn.as_ref() else {
                continue;
            };
            // Idle keep-alive connection with nothing in flight: close.
            // In-flight jobs are unaffected — they belong to the job
            // manager, not the connection.
            let idle = conn.pending.is_empty()
                && conn.read_buf.is_empty()
                && conn.write_buf.is_empty()
                && now.duration_since(conn.last_activity) > self.tuning.idle_timeout;
            if idle {
                self.shared.rec.add("http_idle_timeouts", 1);
                self.close_conn(index);
            }
        }
    }

    fn enter_drain(&mut self) {
        if self.draining_since.is_some() {
            return;
        }
        self.draining_since = Some(Instant::now());
        self.accepting = false;
        self.poller.delete(self.listener.as_raw_fd());
        for index in 0..self.slots.len() {
            let Some(conn) = self.slots[index].conn.as_mut() else {
                continue;
            };
            conn.stop_reading = true;
            conn.read_buf.clear();
            conn.partial_since = None;
            if conn.pending.is_empty() && conn.write_buf.len() == conn.written {
                self.close_conn(index);
            } else {
                conn.close_after_flush = true;
                Self::update_interest(
                    &self.poller,
                    self.slots[index].conn.as_mut().expect("live conn"),
                    true,
                );
            }
        }
    }

    fn drain_finished(&mut self) -> bool {
        let deadline_passed = self
            .draining_since
            .map(|t| t.elapsed() > self.tuning.drain_timeout)
            .unwrap_or(false);
        if deadline_passed {
            for index in 0..self.slots.len() {
                if self.slots[index].conn.is_some() {
                    self.close_conn(index);
                }
            }
            return true;
        }
        self.open == 0
    }
}
