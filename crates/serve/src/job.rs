//! The durable job queue behind the daemon.
//!
//! Every job lives in its own directory under the server data dir:
//!
//! ```text
//! data/job-7/
//!   job.json         # JobMeta — id, spec, state machine, shape, errors
//!   statuses.txt     # the uploaded status matrix (tends jobs)
//!   observations.txt # the uploaded observation set (baseline jobs)
//!   checkpoint.json  # PR-4 tends checkpoint; the durability log
//!   append.txt       # appended-only cascades awaiting the warm re-run
//!   pending-append-N.txt # appends buffered while the job was running
//!   edges.txt        # inferred edge list, written on completion
//!   report.json      # RunReport with a `runtime.job` section
//! ```
//!
//! `job.json` and every output are written with
//! [`diffnet_graph::io::save_atomic`] (temp + fsync + rename), so a
//! `kill -9` at any instant leaves either the old or the new file, never
//! a torn one. On startup [`JobManager::new`] rescans the data dir:
//! `queued` jobs are re-enqueued as-is, `running` jobs are re-enqueued
//! with `resume` semantics — the tends checkpoint restores every node
//! that completed before the crash, so the finished edge list is
//! byte-identical to an uninterrupted run.
//!
//! State machine: `queued → running → done | failed | partial`, plus the
//! transition `running → queued` taken only on disk, implicitly, when the
//! process dies or shuts down gracefully mid-job (the meta still says
//! `running`; the rescan treats that as "resume me"). Appending cascades
//! to a terminal job rewinds it to `queued` with a bumped `revision`; the
//! checkpoint (which carries the pair-count sufficient statistics) is
//! kept as the warm state, and the appended rows land in `append.txt` so
//! the re-run folds them in incrementally instead of re-searching every
//! node. Appends that arrive while the job is queued or running are
//! buffered as `pending-append-N.txt` and folded in — one revision bump
//! per batch — at the next terminal transition.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use diffnet_baselines::{Lift, MulTree, NetInf, NetRate, PathReconstruction};
use diffnet_graph::io::{save_atomic, save_edge_list};
use diffnet_graph::DiGraph;
use diffnet_observe::{
    parse_json, CheckpointInfo, FaultPlan, Json, Recorder, ResourceProfiler, RunReport, Snapshot,
    DEFAULT_SAMPLE_INTERVAL,
};
use diffnet_simulate::io::{
    load_status_columns, load_status_matrix, read_observations, read_status_matrix,
    save_status_matrix,
};
use diffnet_simulate::StatusMatrix;
use diffnet_tends::{plan_shards, NodeError, RobustOptions, Tends, TendsConfig};

/// Algorithms a job may request. `tends` takes a status matrix body;
/// the baselines take an observations body plus an edge budget.
pub const ALGORITHMS: &[&str] = &["tends", "netrate", "multree", "lift", "netinf", "path"];

/// Fault-injection site hit after every `job.json` flush.
pub const FAULT_JOB_FLUSH: &str = "job_flush";

const META_FORMAT: &str = "diffnet-job";
const META_VERSION: u64 = 1;

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (also the rewind target of a cascade append).
    Queued,
    /// A worker owns it. Found on disk at startup ⇒ the process died
    /// mid-job; the rescan re-enqueues it and the checkpoint resumes it.
    Running,
    /// Every node searched; outputs written.
    Done,
    /// The run itself errored (bad input, I/O failure); no outputs.
    Failed,
    /// Finished, but some nodes failed their search — the edge list
    /// covers the rest (mirrors the CLI's dedicated exit code).
    Partial,
}

impl JobState {
    /// Stable string form used on disk and over the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Partial => "partial",
        }
    }

    /// Parses the on-disk form.
    pub fn from_wire(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "partial" => JobState::Partial,
            _ => return None,
        })
    }

    /// True for `done`, `failed`, and `partial`.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Partial)
    }
}

/// Parses a byte-size value with an optional `K`/`M`/`G` suffix
/// (powers of 1024): `"512M"` → 512 MiB, `"65536"` → 65536 bytes.
/// Returns `None` on malformed input or overflow.
pub fn parse_size(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, mult) = match raw.as_bytes().last()? {
        b'k' | b'K' => (&raw[..raw.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&raw[..raw.len() - 1], 1u64 << 20),
        b'g' | b'G' => (&raw[..raw.len() - 1], 1u64 << 30),
        _ => (raw, 1u64),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// What the client asked for at submission time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// One of [`ALGORITHMS`].
    pub algorithm: String,
    /// Worker threads for the parent search (tends only; `0` = all cores).
    pub threads: usize,
    /// Checkpoint flush interval in completed nodes (tends only).
    pub checkpoint_interval: usize,
    /// Edge budget `m` — required by the baselines, ignored by tends.
    pub edges_budget: Option<usize>,
    /// Byte budget for the streamed IMI pipeline (tends only). Setting it
    /// switches the job onto the out-of-core sparse-candidate path.
    pub memory_budget: Option<u64>,
    /// This job's shard of a node-range-sharded reconstruction (tends
    /// only; requires `shard_count`). Shard jobs search only their node
    /// range; the client unions the per-shard edge lists.
    pub shard_index: Option<usize>,
    /// Total shards of the sharded reconstruction (tends only).
    pub shard_count: Option<usize>,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            algorithm: "tends".to_string(),
            threads: 1,
            checkpoint_interval: 8,
            edges_budget: None,
            memory_budget: None,
            shard_index: None,
            shard_count: None,
        }
    }
}

impl JobSpec {
    /// Validates algorithm/budget consistency; the message is surfaced to
    /// the client as a `422`.
    pub fn validate(&self) -> Result<(), String> {
        if !ALGORITHMS.contains(&self.algorithm.as_str()) {
            return Err(format!(
                "unknown algorithm {:?} (expected one of {ALGORITHMS:?})",
                self.algorithm
            ));
        }
        if self.algorithm != "tends" && self.edges_budget.is_none() {
            return Err(format!(
                "algorithm {:?} needs \"edges\" (the budget m)",
                self.algorithm
            ));
        }
        if self.algorithm != "tends" && (self.memory_budget.is_some() || self.shard_count.is_some())
        {
            return Err(format!(
                "algorithm {:?} does not support the streamed pipeline \
                 (memory-budget / shard-index / shard-count are tends-only)",
                self.algorithm
            ));
        }
        if self.shard_index.is_some() != self.shard_count.is_some() {
            return Err("shard-index and shard-count must be given together".to_string());
        }
        if let (Some(i), Some(c)) = (self.shard_index, self.shard_count) {
            if c == 0 || i >= c {
                return Err(format!("shard-index {i} out of range for shard-count {c}"));
            }
        }
        Ok(())
    }

    /// Whether the job runs the out-of-core streamed IMI pipeline.
    pub fn is_streamed(&self) -> bool {
        self.memory_budget.is_some() || self.shard_count.is_some()
    }

    /// Whether the job consumes a status matrix (vs an observation set).
    pub fn takes_statuses(&self) -> bool {
        self.algorithm == "tends"
    }
}

/// The persisted per-job record (`job.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobMeta {
    /// Server-assigned id, dense from 1.
    pub id: u64,
    /// The submission parameters.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Bumped by every cascade append; lets clients tell a re-estimation
    /// apart from the original run.
    pub revision: u64,
    /// Processes (cascades) in the current input.
    pub processes: usize,
    /// Nodes in the current input.
    pub nodes: usize,
    /// Nodes whose search failed on the last completed run.
    pub failed_nodes: Vec<u64>,
    /// Human-readable failure, when `state` is `failed`.
    pub error: Option<String>,
}

impl JobMeta {
    fn new(id: u64, spec: JobSpec, processes: usize, nodes: usize) -> JobMeta {
        JobMeta {
            id,
            spec,
            state: JobState::Queued,
            revision: 1,
            processes,
            nodes,
            failed_nodes: Vec::new(),
            error: None,
        }
    }

    /// Serializes to the `job.json` tree.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("format", META_FORMAT);
        root.push("version", META_VERSION);
        root.push("id", self.id);
        root.push("algorithm", self.spec.algorithm.as_str());
        root.push("threads", self.spec.threads);
        root.push("checkpoint_interval", self.spec.checkpoint_interval);
        if let Some(m) = self.spec.edges_budget {
            root.push("edges_budget", m);
        }
        if let Some(b) = self.spec.memory_budget {
            root.push("memory_budget", b);
        }
        if let Some(i) = self.spec.shard_index {
            root.push("shard_index", i);
        }
        if let Some(c) = self.spec.shard_count {
            root.push("shard_count", c);
        }
        root.push("state", self.state.as_str());
        root.push("revision", self.revision);
        root.push("processes", self.processes);
        root.push("nodes", self.nodes);
        root.push("failed_nodes", self.failed_nodes.as_slice());
        if let Some(e) = &self.error {
            root.push("error", e.as_str());
        }
        root
    }

    /// Parses a `job.json` tree, rejecting wrong formats and versions.
    pub fn from_json(root: &Json) -> Result<JobMeta, String> {
        let format = root.get("format").and_then(Json::as_str).unwrap_or("");
        if format != META_FORMAT {
            return Err(format!("not a {META_FORMAT} file (format {format:?})"));
        }
        let version = num(root, "version")?;
        if version != META_VERSION {
            return Err(format!("unsupported {META_FORMAT} version {version}"));
        }
        let state_raw = root
            .get("state")
            .and_then(Json::as_str)
            .ok_or("missing string field \"state\"")?;
        let state = JobState::from_wire(state_raw)
            .ok_or_else(|| format!("unknown job state {state_raw:?}"))?;
        let failed_nodes = root
            .get("failed_nodes")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"failed_nodes\"")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|f| f as u64)
                    .ok_or_else(|| "non-numeric entry in \"failed_nodes\"".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(JobMeta {
            id: num(root, "id")?,
            spec: JobSpec {
                algorithm: root
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"algorithm\"")?
                    .to_string(),
                threads: num(root, "threads")? as usize,
                checkpoint_interval: num(root, "checkpoint_interval")? as usize,
                edges_budget: root
                    .get("edges_budget")
                    .and_then(Json::as_f64)
                    .map(|f| f as usize),
                memory_budget: root
                    .get("memory_budget")
                    .and_then(Json::as_f64)
                    .map(|f| f as u64),
                shard_index: root
                    .get("shard_index")
                    .and_then(Json::as_f64)
                    .map(|f| f as usize),
                shard_count: root
                    .get("shard_count")
                    .and_then(Json::as_f64)
                    .map(|f| f as usize),
            },
            state,
            revision: num(root, "revision")?,
            processes: num(root, "processes")? as usize,
            nodes: num(root, "nodes")? as usize,
            failed_nodes,
            error: root.get("error").and_then(Json::as_str).map(String::from),
        })
    }
}

fn num(root: &Json, key: &str) -> Result<u64, String> {
    root.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// An API-facing job error: an HTTP status plus a message for the
/// `{"error": ...}` envelope.
#[derive(Debug)]
pub struct JobError {
    /// The HTTP status this error maps onto.
    pub status: u16,
    /// Human-readable description.
    pub message: String,
}

impl JobError {
    fn new(status: u16, message: impl Into<String>) -> JobError {
        JobError {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for JobError {}

struct Entry {
    meta: JobMeta,
    /// Live recorder while a worker runs the job, for progress queries.
    live: Option<Arc<Recorder>>,
}

struct ManagerState {
    jobs: BTreeMap<u64, Entry>,
    queue: VecDeque<u64>,
    next_id: u64,
}

/// The queue + worker pool + on-disk store, shared across handler threads.
pub struct JobManager {
    root: PathBuf,
    fault: Arc<FaultPlan>,
    shutdown: Arc<AtomicBool>,
    rec: Arc<Recorder>,
    state: Mutex<ManagerState>,
    available: Condvar,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Cap on jobs waiting in the queue; a submit beyond it is `503`
    /// (the explicit backpressure signal, distinct from the per-request
    /// worker queue). `usize::MAX` (the default) means unbounded.
    max_queued: AtomicUsize,
}

impl JobManager {
    /// Opens (or creates) the data dir, rescans persisted jobs, re-enqueues
    /// the unfinished ones, and starts `job_workers` worker threads.
    ///
    /// `shutdown` is the server-wide flag: once set, workers finish their
    /// cancellation-checkpointed node, persist, and exit. `rec` is the
    /// server recorder feeding `/v1/metrics`.
    pub fn new(
        data_dir: &Path,
        job_workers: usize,
        shutdown: Arc<AtomicBool>,
        rec: Arc<Recorder>,
        fault: Arc<FaultPlan>,
    ) -> io::Result<Arc<JobManager>> {
        fs::create_dir_all(data_dir)?;
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut next_id = 1u64;
        for entry in fs::read_dir(data_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let meta_path = entry.path().join("job.json");
            let text = fs::read_to_string(&meta_path)
                .map_err(|e| io::Error::other(format!("cannot read {meta_path:?}: {e}")))?;
            let json = parse_json(&text)
                .map_err(|e| io::Error::other(format!("corrupt {meta_path:?}: {e}")))?;
            let meta = JobMeta::from_json(&json)
                .map_err(|e| io::Error::other(format!("corrupt {meta_path:?}: {e}")))?;
            if meta.id != id {
                return Err(io::Error::other(format!(
                    "job dir {name:?} holds job id {}",
                    meta.id
                )));
            }
            next_id = next_id.max(id + 1);
            match meta.state {
                JobState::Queued => queue.push_back(id),
                JobState::Running => {
                    // The previous process died (or shut down) mid-job:
                    // the checkpoint carries the finished nodes, so this
                    // re-run resumes instead of restarting.
                    rec.add("jobs_resumed", 1);
                    queue.push_back(id);
                }
                _ => {}
            }
            jobs.insert(id, Entry { meta, live: None });
        }

        let manager = Arc::new(JobManager {
            root: data_dir.to_path_buf(),
            fault,
            shutdown,
            rec,
            state: Mutex::new(ManagerState {
                jobs,
                queue,
                next_id,
            }),
            available: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            max_queued: AtomicUsize::new(usize::MAX),
        });
        // Appends buffered by a previous process: terminal jobs fold them
        // in now; queued/running jobs fold them in when they next finish.
        let stranded: Vec<u64> = {
            let st = manager.state.lock().expect("state lock");
            st.jobs
                .iter()
                .filter(|(id, e)| {
                    e.meta.state.is_terminal() && !pending_paths(&manager.job_dir(**id)).is_empty()
                })
                .map(|(&id, _)| id)
                .collect()
        };
        for id in stranded {
            let mut st = manager.state.lock().expect("state lock");
            // Failure leaves the batch buffered for a later transition.
            let _ = manager.apply_pending_locked(&mut st, id);
        }
        let mut handles = Vec::new();
        for i in 0..job_workers.max(1) {
            let m = Arc::clone(&manager);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("diffnet-job-{i}"))
                    .spawn(move || m.worker_loop())?,
            );
        }
        *manager.workers.lock().expect("workers lock") = handles;
        Ok(manager)
    }

    /// The directory holding job `id`'s files.
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.root.join(format!("job-{id}"))
    }

    fn input_path(&self, meta: &JobMeta) -> PathBuf {
        let name = if meta.spec.takes_statuses() {
            "statuses.txt"
        } else {
            "observations.txt"
        };
        self.job_dir(meta.id).join(name)
    }

    /// Persists `meta` atomically and hits the `job_flush` fault site —
    /// the injection point for crash tests around state transitions.
    fn save_meta(&self, meta: &JobMeta) -> io::Result<()> {
        let dir = self.job_dir(meta.id);
        fs::create_dir_all(&dir)?;
        let json = meta.to_json();
        save_atomic(dir.join("job.json"), |w| {
            w.write_all(json.to_pretty().as_bytes())
        })?;
        self.fault.hit(FAULT_JOB_FLUSH)?;
        Ok(())
    }

    /// Caps the number of queued (not-yet-running) jobs; submits beyond
    /// the cap are rejected with a `503` so clients back off instead of
    /// growing the queue without bound.
    pub fn set_max_queued(&self, cap: usize) {
        self.max_queued.store(cap.max(1), Ordering::Relaxed);
    }

    /// Accepts a new job: validates the spec, parses the uploaded input
    /// (status matrix or observation set), persists everything, enqueues.
    pub fn submit(&self, spec: JobSpec, body: &[u8]) -> Result<JobMeta, JobError> {
        spec.validate().map_err(|e| JobError::new(422, e))?;
        // Queue-full check up front, before the body is parsed or
        // anything is persisted: shedding should be cheap.
        {
            let st = self.state.lock().expect("state lock");
            let cap = self.max_queued.load(Ordering::Relaxed);
            if st.queue.len() >= cap {
                self.rec.add("jobs_rejected_queue_full", 1);
                return Err(JobError::new(
                    503,
                    format!("job queue full ({} jobs queued, cap {cap})", st.queue.len()),
                ));
            }
        }
        let (processes, nodes) = if spec.takes_statuses() {
            let m = read_status_matrix(body)
                .map_err(|e| JobError::new(422, format!("bad status matrix: {e}")))?;
            if m.num_processes() == 0 || m.num_nodes() == 0 {
                return Err(JobError::new(422, "status matrix is empty"));
            }
            (m.num_processes(), m.num_nodes())
        } else {
            let obs = read_observations(body)
                .map_err(|e| JobError::new(422, format!("bad observations: {e}")))?;
            if obs.num_processes() == 0 || obs.num_nodes() == 0 {
                return Err(JobError::new(422, "observation set is empty"));
            }
            (obs.num_processes(), obs.num_nodes())
        };

        let mut st = self.state.lock().expect("state lock");
        let id = st.next_id;
        st.next_id += 1;
        let meta = JobMeta::new(id, spec, processes, nodes);
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)
            .map_err(|e| JobError::new(500, format!("cannot create job dir: {e}")))?;
        save_atomic(self.input_path(&meta), |w| w.write_all(body))
            .map_err(|e| JobError::new(500, format!("cannot store job input: {e}")))?;
        self.save_meta(&meta)
            .map_err(|e| JobError::new(500, format!("cannot persist job: {e}")))?;
        st.jobs.insert(
            id,
            Entry {
                meta: meta.clone(),
                live: None,
            },
        );
        st.queue.push_back(id);
        self.rec.add("jobs_submitted", 1);
        drop(st);
        self.available.notify_one();
        Ok(meta)
    }

    /// Appends cascades (extra status rows) to a tends job.
    ///
    /// On a terminal job the append is applied immediately: the combined
    /// matrix replaces `statuses.txt`, the appended-only rows land in
    /// `append.txt`, the checkpoint is *kept* (it carries the pair-count
    /// sufficient statistics the warm re-run folds onto), `revision` is
    /// bumped, and the job re-queues for incremental re-estimation.
    ///
    /// While the job is queued or running the append is buffered on disk
    /// (`pending-append-N.txt`) instead of returning `409`; every
    /// buffered batch is folded in — with a single revision bump — at
    /// the next terminal transition. Returns the job meta plus whether
    /// the append was buffered.
    pub fn append_cascades(&self, id: u64, body: &[u8]) -> Result<(JobMeta, bool), JobError> {
        let appended = read_status_matrix(body)
            .map_err(|e| JobError::new(422, format!("bad status matrix: {e}")))?;
        if appended.num_processes() == 0 {
            return Err(JobError::new(422, "no cascades in upload"));
        }

        let mut st = self.state.lock().expect("state lock");
        let entry = st
            .jobs
            .get_mut(&id)
            .ok_or_else(|| JobError::new(404, format!("no job {id}")))?;
        if !entry.meta.spec.takes_statuses() {
            return Err(JobError::new(
                409,
                format!(
                    "job {id} runs {:?}, which takes observations; cascade append only \
                     applies to status-matrix jobs",
                    entry.meta.spec.algorithm
                ),
            ));
        }
        if entry.meta.spec.is_streamed() {
            return Err(JobError::new(
                422,
                format!(
                    "job {id} runs the streamed pipeline (memory-budget / shards), which \
                     does not retain the dense sufficient statistics incremental append \
                     needs; submit the combined matrix as a new job instead"
                ),
            ));
        }
        if appended.num_nodes() != entry.meta.nodes {
            return Err(JobError::new(
                422,
                format!(
                    "appended cascades cover {} nodes but the job has {}",
                    appended.num_nodes(),
                    entry.meta.nodes
                ),
            ));
        }

        // Persist the batch before acknowledging: buffered appends must
        // survive a process restart just like every other transition.
        let dir = self.job_dir(id);
        let seq = next_pending_seq(&dir);
        save_status_matrix(&appended, dir.join(pending_name(seq)))
            .map_err(|e| JobError::new(500, format!("cannot store appended cascades: {e}")))?;
        self.rec
            .add("cascades_appended", appended.num_processes() as u64);
        if !entry.meta.state.is_terminal() {
            self.rec.add("appends_buffered", 1);
            return Ok((entry.meta.clone(), true));
        }
        let meta = self.apply_pending_locked(&mut st, id)?;
        drop(st);
        self.available.notify_one();
        Ok((meta, false))
    }

    /// Folds every buffered append batch into the job input, bumps the
    /// revision once, and re-queues. The caller holds the state lock and
    /// has checked the job is terminal. The checkpoint file survives —
    /// it is the warm state [`run_tends`](Self::run_tends) resumes from.
    fn apply_pending_locked(&self, st: &mut ManagerState, id: u64) -> Result<JobMeta, JobError> {
        let dir = self.job_dir(id);
        let pending = pending_paths(&dir);
        let entry = st
            .jobs
            .get_mut(&id)
            .ok_or_else(|| JobError::new(404, format!("no job {id}")))?;
        if pending.is_empty() {
            return Ok(entry.meta.clone());
        }
        let existing = load_status_matrix(dir.join("statuses.txt"))
            .map_err(|e| JobError::new(500, format!("cannot reload job input: {e}")))?;
        let mut batch: Option<StatusMatrix> = None;
        for path in &pending {
            let m = load_status_matrix(path)
                .map_err(|e| JobError::new(500, format!("cannot reload pending append: {e}")))?;
            batch = Some(match batch {
                None => m,
                Some(b) => concat_statuses(&b, &m),
            });
        }
        let batch = batch.expect("pending is non-empty");
        let combined = concat_statuses(&existing, &batch);
        // `append.txt` is the warm path's delta input: exactly the rows
        // not yet folded into the checkpoint's sufficient statistics.
        save_status_matrix(&batch, dir.join("append.txt"))
            .map_err(|e| JobError::new(500, format!("cannot store appended cascades: {e}")))?;
        save_status_matrix(&combined, dir.join("statuses.txt"))
            .map_err(|e| JobError::new(500, format!("cannot store combined input: {e}")))?;
        for stale in ["edges.txt", "report.json"] {
            let _ = fs::remove_file(dir.join(stale));
        }

        entry.meta.processes = combined.num_processes();
        entry.meta.revision += 1;
        entry.meta.state = JobState::Queued;
        entry.meta.failed_nodes.clear();
        entry.meta.error = None;
        let meta = entry.meta.clone();
        self.save_meta(&meta)
            .map_err(|e| JobError::new(500, format!("cannot persist job: {e}")))?;
        for path in pending {
            let _ = fs::remove_file(path);
        }
        st.queue.push_back(id);
        Ok(meta)
    }

    /// The job's current meta plus, while running, a live progress
    /// snapshot of its recorder.
    pub fn status(&self, id: u64) -> Option<(JobMeta, Option<Snapshot>)> {
        let st = self.state.lock().expect("state lock");
        let entry = st.jobs.get(&id)?;
        let snap = entry.live.as_ref().map(|r| r.snapshot());
        Some((entry.meta.clone(), snap))
    }

    /// All jobs, in id order.
    pub fn list(&self) -> Vec<JobMeta> {
        let st = self.state.lock().expect("state lock");
        st.jobs.values().map(|e| e.meta.clone()).collect()
    }

    /// Reads a finished job's output file (`edges.txt` or `report.json`).
    pub fn read_output(&self, id: u64, file: &str) -> Result<Vec<u8>, JobError> {
        let meta = self
            .status(id)
            .ok_or_else(|| JobError::new(404, format!("no job {id}")))?
            .0;
        match meta.state {
            JobState::Done | JobState::Partial => {}
            other => {
                return Err(JobError::new(
                    409,
                    format!(
                        "job {id} is {}; outputs exist once it finishes",
                        other.as_str()
                    ),
                ))
            }
        }
        fs::read(self.job_dir(id).join(file))
            .map_err(|e| JobError::new(500, format!("cannot read job output {file:?}: {e}")))
    }

    /// Signals the workers, wakes them, and joins them. In-flight tends
    /// jobs observe the flag through [`RobustOptions::cancel`], flush
    /// their checkpoint, and stay `running` on disk so the next process
    /// resumes them.
    pub fn shutdown_and_join(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
    }

    fn worker_loop(&self) {
        loop {
            let id = {
                let mut st = self.state.lock().expect("state lock");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(id) = st.queue.pop_front() {
                        break id;
                    }
                    st = self
                        .available
                        .wait_timeout(st, Duration::from_millis(200))
                        .expect("state lock")
                        .0;
                }
            };
            self.run_one(id);
        }
    }

    /// Claims job `id`, runs it, and persists the outcome.
    fn run_one(&self, id: u64) {
        let rec = Arc::new(Recorder::new());
        let meta = {
            let mut st = self.state.lock().expect("state lock");
            let Some(entry) = st.jobs.get_mut(&id) else {
                return;
            };
            entry.meta.state = JobState::Running;
            entry.meta.error = None;
            entry.live = Some(Arc::clone(&rec));
            entry.meta.clone()
        };
        if self.save_meta(&meta).is_err() {
            // Cannot record the claim; leave the job queued on disk and
            // give up this attempt rather than running unrecorded.
            let mut st = self.state.lock().expect("state lock");
            if let Some(entry) = st.jobs.get_mut(&id) {
                entry.meta.state = JobState::Queued;
                entry.live = None;
            }
            self.rec.add("jobs_failed", 1);
            return;
        }

        let outcome = if meta.spec.takes_statuses() {
            self.run_tends(&meta, &rec)
        } else {
            self.run_baseline(&meta, &rec)
        };

        let mut st = self.state.lock().expect("state lock");
        let Some(entry) = st.jobs.get_mut(&id) else {
            return;
        };
        entry.live = None;
        match outcome {
            Outcome::Interrupted => {
                // Leave `running` on disk: the startup rescan resumes it.
                self.rec.add("jobs_interrupted", 1);
                entry.meta.state = JobState::Running;
            }
            Outcome::Finished {
                state,
                failed_nodes,
                error,
            } => {
                entry.meta.state = state;
                entry.meta.failed_nodes = failed_nodes;
                entry.meta.error = error;
                let counter = match state {
                    JobState::Done => "jobs_completed",
                    JobState::Partial => "jobs_partial",
                    _ => "jobs_failed",
                };
                self.rec.add(counter, 1);
                let meta = entry.meta.clone();
                drop(st);
                let _ = self.save_meta(&meta);
                // Cascades appended mid-run were buffered; fold them in
                // (one revision bump for the whole batch) and re-queue.
                let mut st = self.state.lock().expect("state lock");
                if !pending_paths(&self.job_dir(id)).is_empty()
                    && self.apply_pending_locked(&mut st, id).is_ok()
                {
                    drop(st);
                    self.available.notify_one();
                }
            }
        }
    }

    fn run_tends(&self, meta: &JobMeta, rec: &Recorder) -> Outcome {
        let dir = self.job_dir(meta.id);
        // Window-scoped resource profile for the job; attached to the
        // report's runtime section. Early returns drop the profiler,
        // which just joins its sampler thread.
        let profiler = ResourceProfiler::start(DEFAULT_SAMPLE_INTERVAL);
        let checkpoint = dir.join("checkpoint.json");
        let options = RobustOptions {
            checkpoint: Some(checkpoint.clone()),
            resume: true,
            checkpoint_interval: meta.spec.checkpoint_interval,
            fault: self.fault.as_ref(),
            cancel: Some(&self.shutdown),
            // JobMeta revisions are 1-based (fresh submission = 1); the
            // tends sufficient-statistics revision is 0-based.
            revision: meta.revision.saturating_sub(1),
        };
        // Mirror the CLI's `infer` path exactly — same phases, same
        // config defaults — so the report's deterministic section is
        // byte-identical to an offline `diffnet infer` run.
        let run = if meta.spec.is_streamed() {
            // Out-of-core: mmap the statuses straight into the column
            // bitset and never materialize the row-major matrix or the
            // dense correlation matrix.
            let cols = {
                let _p = rec.phase("load_statuses");
                match load_status_columns(dir.join("statuses.txt")) {
                    Ok(c) => c,
                    Err(e) => return Outcome::failed(format!("cannot load statuses: {e}")),
                }
            };
            let shard = match (meta.spec.shard_index, meta.spec.shard_count) {
                (Some(i), Some(c)) => Some(plan_shards(cols.num_nodes(), c)[i]),
                _ => None,
            };
            let cfg = TendsConfig {
                threads: meta.spec.threads,
                memory_budget: meta.spec.memory_budget,
                shard,
                ..TendsConfig::default()
            };
            Tends::with_config(cfg).reconstruct_robust_from_columns(&cols, rec, &options)
        } else {
            let statuses = {
                let _p = rec.phase("load_statuses");
                match load_status_matrix(dir.join("statuses.txt")) {
                    Ok(m) => m,
                    Err(e) => return Outcome::failed(format!("cannot load statuses: {e}")),
                }
            };
            let cfg = TendsConfig {
                threads: meta.spec.threads,
                ..TendsConfig::default()
            };
            let tends = Tends::with_config(cfg);
            let append_input = dir.join("append.txt");
            if append_input.exists() && checkpoint.exists() {
                // Warm path: fold only the appended rows into the
                // checkpointed sufficient statistics and re-search only
                // the dirty nodes. Byte-identical to a fresh run over
                // the combined matrix, so a failure to warm-start
                // (foreign, stale, or corrupt checkpoint) just drops the
                // checkpoint and falls back to the full re-run.
                match load_status_matrix(&append_input) {
                    Ok(appended) => {
                        match tends.reconstruct_robust_append(&statuses, &appended, rec, &options) {
                            Ok(p) => {
                                let _ = fs::remove_file(&append_input);
                                Ok(p)
                            }
                            Err(e) => {
                                self.rec.add("append_cold_fallbacks", 1);
                                rec.add("append_cold_fallbacks", 1);
                                eprintln!(
                                    "job {}: warm append failed ({e}); re-running from scratch",
                                    meta.id
                                );
                                let _ = fs::remove_file(&checkpoint);
                                let _ = fs::remove_file(&append_input);
                                tends.reconstruct_robust(&statuses, rec, &options)
                            }
                        }
                    }
                    Err(e) => return Outcome::failed(format!("cannot load appended rows: {e}")),
                }
            } else {
                let _ = fs::remove_file(&append_input);
                tends.reconstruct_robust(&statuses, rec, &options)
            }
        };
        let partial = match run {
            Ok(p) => p,
            Err(e) => return Outcome::failed(e.to_string()),
        };
        if partial
            .errors
            .iter()
            .any(|(_, e)| matches!(e, NodeError::Cancelled))
        {
            return Outcome::Interrupted;
        }
        let failed_nodes: Vec<u64> = partial.failed_nodes.iter().map(|&v| u64::from(v)).collect();
        let mut report = RunReport::new(
            meta.spec.algorithm.as_str(),
            rec.snapshot(),
            meta.spec.threads.max(1),
        );
        report.failed_nodes = failed_nodes.clone();
        // Same recording rule as the CLI: the override (daemon-wide, set at
        // startup) is deterministic config, the resolved tier is runtime.
        let requested = diffnet_simulate::simd::requested_mode();
        if requested != diffnet_simulate::SimdMode::Auto {
            report.simd = Some(requested.to_string());
        }
        report.simd_dispatch = Some(diffnet_simulate::simd::kernels().dispatch().to_string());
        report.checkpoint = Some(CheckpointInfo {
            path: checkpoint.display().to_string(),
            resumed_nodes: partial.resumed_nodes,
            flushes: partial.checkpoint_flushes,
            delta_records: partial.delta_records,
        });
        report.resources = Some(profiler.stop());
        let state = if failed_nodes.is_empty() {
            JobState::Done
        } else {
            JobState::Partial
        };
        self.write_outputs(meta, state, &partial.result.graph, &report, &failed_nodes)
    }

    fn run_baseline(&self, meta: &JobMeta, rec: &Recorder) -> Outcome {
        let dir = self.job_dir(meta.id);
        let profiler = ResourceProfiler::start(DEFAULT_SAMPLE_INTERVAL);
        let obs = match diffnet_simulate::io::load_observations(dir.join("observations.txt")) {
            Ok(o) => o,
            Err(e) => return Outcome::failed(format!("cannot load observations: {e}")),
        };
        let m = meta.spec.edges_budget.unwrap_or(0);
        let graph: DiGraph = match meta.spec.algorithm.as_str() {
            "netrate" => NetRate::new().infer_observed(&obs, rec).top_m(m),
            "multree" => MulTree::new().infer(&obs, m),
            "lift" => Lift::new().infer(&obs, m),
            "netinf" => NetInf::new().infer(&obs, m),
            "path" => PathReconstruction::new().infer(&obs, m),
            other => return Outcome::failed(format!("unknown algorithm {other:?}")),
        };
        let mut report = RunReport::new(meta.spec.algorithm.as_str(), rec.snapshot(), 1);
        report.resources = Some(profiler.stop());
        self.write_outputs(meta, JobState::Done, &graph, &report, &[])
    }

    fn write_outputs(
        &self,
        meta: &JobMeta,
        state: JobState,
        graph: &DiGraph,
        report: &RunReport,
        failed_nodes: &[u64],
    ) -> Outcome {
        let dir = self.job_dir(meta.id);
        if let Err(e) = save_edge_list(graph, dir.join("edges.txt")) {
            return Outcome::failed(format!("cannot write edges: {e}"));
        }
        let json = job_report_json(report, meta.id, state, meta.revision);
        if let Err(e) = save_atomic(dir.join("report.json"), |w| {
            w.write_all(json.to_pretty().as_bytes())
        }) {
            return Outcome::failed(format!("cannot write report: {e}"));
        }
        Outcome::Finished {
            state,
            failed_nodes: failed_nodes.to_vec(),
            error: None,
        }
    }
}

enum Outcome {
    /// Terminal: persist the state and outputs.
    Finished {
        state: JobState,
        failed_nodes: Vec<u64>,
        error: Option<String>,
    },
    /// Cancelled by shutdown mid-run; leave `running` on disk for resume.
    Interrupted,
}

impl Outcome {
    fn failed(message: String) -> Outcome {
        Outcome::Finished {
            state: JobState::Failed,
            failed_nodes: Vec::new(),
            error: Some(message),
        }
    }
}

/// The job's `report.json`: a normal [`RunReport`] with a `job` record
/// injected into the `runtime` section — the deterministic section stays
/// byte-identical to an offline CLI run on the same input.
pub fn job_report_json(report: &RunReport, id: u64, state: JobState, revision: u64) -> Json {
    let mut root = report.to_json();
    let mut runtime = root.remove("runtime").unwrap_or_else(Json::object);
    let mut job = Json::object();
    job.push("id", id);
    job.push("state", state.as_str());
    job.push("revision", revision);
    runtime.push("job", job);
    root.push("runtime", runtime);
    root
}

fn pending_name(seq: u64) -> String {
    format!("pending-append-{seq:06}.txt")
}

/// Buffered append batches in arrival order (the zero-padded sequence
/// number makes lexicographic order arrival order).
fn pending_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("pending-append-") && name.ends_with(".txt") {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    out
}

fn next_pending_seq(dir: &Path) -> u64 {
    pending_paths(dir)
        .iter()
        .filter_map(|p| {
            p.file_name()?
                .to_str()?
                .strip_prefix("pending-append-")?
                .strip_suffix(".txt")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(1, |max| max + 1)
}

/// Row-wise concatenation of two status matrices with equal node counts.
fn concat_statuses(a: &StatusMatrix, b: &StatusMatrix) -> StatusMatrix {
    debug_assert_eq!(a.num_nodes(), b.num_nodes());
    let n = a.num_nodes();
    let beta = a.num_processes() + b.num_processes();
    let mut out = StatusMatrix::new(beta, n);
    for l in 0..a.num_processes() {
        for i in 0..n {
            if a.get(l, i as u32) {
                out.set(l, i as u32);
            }
        }
    }
    for l in 0..b.num_processes() {
        for i in 0..n {
            if b.get(l, i as u32) {
                out.set(a.num_processes() + l, i as u32);
            }
        }
    }
    out
}

/// Renders the wire form of a job's status for `GET /v1/jobs/{id}`.
pub fn status_json(meta: &JobMeta, live: Option<&Snapshot>) -> Json {
    let mut root = Json::object();
    root.push("id", meta.id);
    root.push("algorithm", meta.spec.algorithm.as_str());
    root.push("state", meta.state.as_str());
    root.push("revision", meta.revision);
    root.push("processes", meta.processes);
    root.push("nodes", meta.nodes);
    root.push("threads", meta.spec.threads);
    root.push("failed_nodes", meta.failed_nodes.as_slice());
    if let Some(e) = &meta.error {
        root.push("error", e.as_str());
    }
    if let Some(snap) = live {
        let mut progress = Json::object();
        progress.push(
            "phases",
            Json::Arr(
                snap.phases
                    .iter()
                    .map(|&(name, _)| Json::from(name))
                    .collect(),
            ),
        );
        let mut counters = Json::object();
        for (&name, &value) in &snap.counters {
            counters.push(name, value);
        }
        progress.push("counters", counters);
        root.push("progress", progress);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "diffnet-serve-job-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    /// A small deterministic status matrix with real correlation
    /// structure (cascades over a ring) so tends finds edges.
    fn sample_statuses(beta: usize, n: usize) -> StatusMatrix {
        let mut rows = Vec::with_capacity(beta);
        let mut state = 0x9e3779b97f4a7c15u64;
        for l in 0..beta {
            let mut row = vec![false; n];
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (state >> 33) as usize % n;
            let len = 1 + (l % (n / 2));
            for k in 0..len {
                row[(start + k) % n] = true;
            }
            rows.push(row);
        }
        StatusMatrix::from_rows(&rows)
    }

    fn statuses_bytes(m: &StatusMatrix) -> Vec<u8> {
        let mut buf = Vec::new();
        diffnet_simulate::io::write_status_matrix(m, &mut buf).expect("serialize");
        buf
    }

    fn manager(dir: &Path) -> (Arc<JobManager>, Arc<AtomicBool>) {
        let shutdown = Arc::new(AtomicBool::new(false));
        let m = JobManager::new(
            dir,
            1,
            Arc::clone(&shutdown),
            Arc::new(Recorder::new()),
            Arc::new(FaultPlan::disabled()),
        )
        .expect("manager");
        (m, shutdown)
    }

    #[test]
    fn queue_cap_rejects_submits_with_503() {
        let dir = tmp_dir("queue-cap");
        let (m, shutdown) = manager(&dir);
        // Park the worker so nothing dequeues: the cap then applies to a
        // deterministic queue length.
        shutdown.store(true, Ordering::SeqCst);
        m.shutdown_and_join();
        m.set_max_queued(1);
        let body = statuses_bytes(&sample_statuses(10, 6));
        m.submit(JobSpec::default(), &body).expect("first queued");
        let err = m.submit(JobSpec::default(), &body).expect_err("cap hit");
        assert_eq!(err.status, 503);
        assert!(err.message.contains("queue full"), "{}", err.message);
    }

    fn wait_terminal(m: &JobManager, id: u64) -> JobMeta {
        for _ in 0..600 {
            let (meta, _) = m.status(id).expect("job exists");
            if meta.state.is_terminal() {
                return meta;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn meta_round_trips_through_json() {
        let mut meta = JobMeta::new(
            7,
            JobSpec {
                algorithm: "netrate".to_string(),
                threads: 4,
                checkpoint_interval: 3,
                edges_budget: Some(12),
                ..JobSpec::default()
            },
            100,
            20,
        );
        meta.state = JobState::Partial;
        meta.revision = 3;
        meta.failed_nodes = vec![2, 9];
        meta.error = Some("boom".to_string());
        let text = meta.to_json().to_pretty();
        let back = JobMeta::from_json(&parse_json(&text).expect("json")).expect("meta");
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_rejects_foreign_and_corrupt_files() {
        let err = JobMeta::from_json(&Json::object()).unwrap_err();
        assert!(err.contains("not a diffnet-job"), "{err}");
        let mut wrong = JobMeta::new(1, JobSpec::default(), 1, 1).to_json();
        wrong.remove("state");
        assert!(JobMeta::from_json(&wrong).unwrap_err().contains("state"));
    }

    #[test]
    fn submit_runs_to_done_with_outputs() {
        let dir = tmp_dir("submit");
        let (m, _) = manager(&dir);
        let statuses = sample_statuses(40, 8);
        let meta = m
            .submit(JobSpec::default(), &statuses_bytes(&statuses))
            .expect("submit");
        assert_eq!(meta.id, 1);
        assert_eq!(meta.state, JobState::Queued);
        assert_eq!(meta.processes, 40);
        assert_eq!(meta.nodes, 8);

        let done = wait_terminal(&m, 1);
        assert_eq!(done.state, JobState::Done);
        let edges = m.read_output(1, "edges.txt").expect("edges");
        assert!(edges.starts_with(b"# nodes: 8\n"));
        let report = m.read_output(1, "report.json").expect("report");
        let text = std::str::from_utf8(&report).expect("utf8");
        diffnet_observe::validate_report_json(text, &["load_statuses", "parent_search"], &[])
            .expect("valid job report");
        let json = parse_json(text).expect("json");
        let job = json.get("runtime").and_then(|r| r.get("job")).expect("job");
        assert_eq!(job.get("state").and_then(Json::as_str), Some("done"));

        // The job report carries the span tree and the resource profile.
        let runtime = json.get("runtime").expect("runtime");
        let spans = runtime
            .get("trace")
            .and_then(|t| t.get("spans"))
            .and_then(Json::as_arr)
            .expect("runtime.trace.spans");
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some("node_search")),
            "trace must include node_search spans"
        );
        let resources = runtime.get("resources").expect("runtime.resources");
        let peak = resources
            .get("peak_rss_bytes")
            .and_then(Json::as_f64)
            .expect("peak_rss_bytes");
        #[cfg(target_os = "linux")]
        assert!(peak > 0.0, "peak RSS must be positive on Linux");
        let _ = peak;

        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_and_sharded_jobs_match_the_dense_job() {
        let dir = tmp_dir("streamed");
        let (m, _) = manager(&dir);
        let statuses = sample_statuses(60, 10);
        let body = statuses_bytes(&statuses);
        // Job 1: dense oracle. Job 2: streamed under a memory budget.
        m.submit(JobSpec::default(), &body).expect("dense submit");
        m.submit(
            JobSpec {
                memory_budget: Some(8 << 20),
                ..JobSpec::default()
            },
            &body,
        )
        .expect("streamed submit");
        assert_eq!(wait_terminal(&m, 1).state, JobState::Done);
        assert_eq!(wait_terminal(&m, 2).state, JobState::Done);
        let dense_edges = m.read_output(1, "edges.txt").expect("dense edges");
        let streamed_edges = m.read_output(2, "edges.txt").expect("streamed edges");
        assert_eq!(
            dense_edges, streamed_edges,
            "streamed job must be byte-identical to the dense job"
        );

        // Shard the same reconstruction across two jobs (same budget, so
        // both compute the same τ) and union the edges client-side.
        let mut union: Vec<(u32, u32)> = Vec::new();
        for index in 0..2 {
            let meta = m
                .submit(
                    JobSpec {
                        memory_budget: Some(8 << 20),
                        shard_index: Some(index),
                        shard_count: Some(2),
                        ..JobSpec::default()
                    },
                    &body,
                )
                .expect("shard submit");
            assert_eq!(wait_terminal(&m, meta.id).state, JobState::Done);
            let bytes = m.read_output(meta.id, "edges.txt").expect("shard edges");
            let part = diffnet_graph::io::read_edge_list(&bytes[..], None).expect("parse shard");
            assert_eq!(part.node_count(), 10, "shard graphs keep the global n");
            union.extend(part.edges());
        }
        union.sort_unstable();
        union.dedup();
        let dense = diffnet_graph::io::read_edge_list(&dense_edges[..], None).expect("parse dense");
        assert_eq!(
            union,
            dense.edge_vec(),
            "shard union must equal the dense edge set"
        );

        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_spec_round_trips_and_validates() {
        let spec = JobSpec {
            memory_budget: Some(512 << 20),
            shard_index: Some(1),
            shard_count: Some(4),
            ..JobSpec::default()
        };
        spec.validate().expect("valid spec");
        let meta = JobMeta::new(3, spec, 10, 5);
        let text = meta.to_json().to_pretty();
        let back = JobMeta::from_json(&parse_json(&text).expect("json")).expect("meta");
        assert_eq!(back, meta);

        for bad in [
            JobSpec {
                shard_index: Some(0),
                ..JobSpec::default()
            },
            JobSpec {
                shard_index: Some(2),
                shard_count: Some(2),
                ..JobSpec::default()
            },
            JobSpec {
                algorithm: "netinf".to_string(),
                edges_budget: Some(4),
                memory_budget: Some(1 << 20),
                ..JobSpec::default()
            },
        ] {
            assert!(bad.validate().is_err(), "spec must be rejected: {bad:?}");
        }

        assert_eq!(parse_size("512M"), Some(512 << 20));
        assert_eq!(parse_size("2g"), Some(2 << 30));
        assert_eq!(parse_size("65536"), Some(65536));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("12Q"), None);
        assert_eq!(parse_size("-5M"), None);
    }

    #[test]
    fn submit_rejects_bad_specs_and_inputs() {
        let dir = tmp_dir("reject");
        let (m, _) = manager(&dir);
        let spec = JobSpec {
            algorithm: "psychic".to_string(),
            ..JobSpec::default()
        };
        assert_eq!(m.submit(spec, b"").unwrap_err().status, 422);
        let spec = JobSpec {
            algorithm: "netinf".to_string(),
            edges_budget: None,
            ..JobSpec::default()
        };
        assert_eq!(m.submit(spec, b"").unwrap_err().status, 422);
        // Truncated status matrix: header promises more rows than follow.
        let bad = b"# diffnet status matrix: 5 processes x 3 nodes\n0 1 0\n";
        let err = m.submit(JobSpec::default(), bad).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("bad status matrix"), "{}", err.message);
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_cascades_requeues_with_bumped_revision() {
        let dir = tmp_dir("append");
        let (m, _) = manager(&dir);
        let first = sample_statuses(30, 8);
        m.submit(JobSpec::default(), &statuses_bytes(&first))
            .expect("submit");
        wait_terminal(&m, 1);

        let more = sample_statuses(10, 8);
        let (meta, buffered) = m
            .append_cascades(1, &statuses_bytes(&more))
            .expect("append");
        assert!(!buffered, "append to a terminal job applies immediately");
        assert_eq!(meta.revision, 2);
        assert_eq!(meta.processes, 40);
        let done = wait_terminal(&m, 1);
        assert_eq!(done.state, JobState::Done);
        // The warm re-run consumed the appended rows and spliced the
        // clean nodes from the kept checkpoint.
        assert!(!m.job_dir(1).join("append.txt").exists());
        assert!(m.job_dir(1).join("checkpoint.json").exists());

        // The re-estimated result equals a fresh job over the combined
        // input: incremental append is exact, not approximate.
        let combined = concat_statuses(&first, &more);
        let fresh = m
            .submit(JobSpec::default(), &statuses_bytes(&combined))
            .expect("submit combined");
        wait_terminal(&m, fresh.id);
        assert_eq!(
            m.read_output(1, "edges.txt").expect("edges"),
            m.read_output(fresh.id, "edges.txt").expect("edges"),
        );

        // The warm run's report carries the splice accounting.
        let report = m.read_output(1, "report.json").expect("report");
        let text = std::str::from_utf8(&report).expect("utf8");
        assert!(text.contains("\"nodes_reused\""), "{text}");
        assert!(text.contains("\"dirty_nodes\""), "{text}");

        // Wrong node count is a typed 422.
        let narrow = sample_statuses(4, 5);
        assert_eq!(
            m.append_cascades(1, &statuses_bytes(&narrow))
                .unwrap_err()
                .status,
            422
        );
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_while_running_buffer_and_apply_as_one_batch() {
        let dir = tmp_dir("buffered");
        let (m, _) = manager(&dir);
        let first = sample_statuses(30, 8);
        m.submit(JobSpec::default(), &statuses_bytes(&first))
            .expect("submit");
        wait_terminal(&m, 1);

        // Simulate a worker owning the job: appends must buffer, not 409.
        {
            let mut st = m.state.lock().expect("state lock");
            st.jobs.get_mut(&1).expect("job").meta.state = JobState::Running;
        }
        let more_a = sample_statuses(6, 8);
        let more_b = sample_statuses(4, 8);
        let (meta, buffered) = m
            .append_cascades(1, &statuses_bytes(&more_a))
            .expect("append A");
        assert!(buffered, "append to a running job is buffered");
        assert_eq!(meta.revision, 1, "revision bumps only when applied");
        let (_, buffered) = m
            .append_cascades(1, &statuses_bytes(&more_b))
            .expect("append B");
        assert!(buffered);
        assert_eq!(pending_paths(&m.job_dir(1)).len(), 2);

        // The "running" job finishes: the terminal transition folds both
        // buffered batches in with one revision bump and re-queues.
        m.run_one(1);
        let done = wait_terminal(&m, 1);
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.revision, 2, "one bump per applied batch");
        assert_eq!(done.processes, 40);
        assert!(pending_paths(&m.job_dir(1)).is_empty());

        // Byte-identical to a fresh run over base + A + B.
        let combined = concat_statuses(&concat_statuses(&first, &more_a), &more_b);
        let fresh = m
            .submit(JobSpec::default(), &statuses_bytes(&combined))
            .expect("submit combined");
        wait_terminal(&m, fresh.id);
        assert_eq!(
            m.read_output(1, "edges.txt").expect("edges"),
            m.read_output(fresh.id, "edges.txt").expect("edges"),
        );
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_applies_buffered_appends_to_terminal_jobs() {
        let dir = tmp_dir("stranded");
        let first = sample_statuses(30, 8);
        let more = sample_statuses(8, 8);
        {
            let (m, _) = manager(&dir);
            m.submit(JobSpec::default(), &statuses_bytes(&first))
                .expect("submit");
            wait_terminal(&m, 1);
            // Buffer an append as if the process died mid-run: the
            // in-memory Running state is never persisted, so on disk
            // the job stays `done` with a pending batch beside it.
            {
                let mut st = m.state.lock().expect("state lock");
                st.jobs.get_mut(&1).expect("job").meta.state = JobState::Running;
            }
            let (_, buffered) = m
                .append_cascades(1, &statuses_bytes(&more))
                .expect("append");
            assert!(buffered);
            m.shutdown_and_join();
        }
        // Restart: the rescan folds the stranded batch in and re-runs.
        let (m, _) = manager(&dir);
        let done = wait_terminal(&m, 1);
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.revision, 2);
        assert_eq!(done.processes, 38);
        assert!(pending_paths(&m.job_dir(1)).is_empty());
        let combined = concat_statuses(&first, &more);
        let fresh = m
            .submit(JobSpec::default(), &statuses_bytes(&combined))
            .expect("submit combined");
        wait_terminal(&m, fresh.id);
        assert_eq!(
            m.read_output(1, "edges.txt").expect("edges"),
            m.read_output(fresh.id, "edges.txt").expect("edges"),
        );
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_job_rejects_cascade_append() {
        let dir = tmp_dir("streamed-append");
        let (m, _) = manager(&dir);
        let statuses = sample_statuses(40, 8);
        m.submit(
            JobSpec {
                memory_budget: Some(8 << 20),
                ..JobSpec::default()
            },
            &statuses_bytes(&statuses),
        )
        .expect("submit");
        wait_terminal(&m, 1);
        let err = m
            .append_cascades(1, &statuses_bytes(&sample_statuses(5, 8)))
            .unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("streamed"), "{}", err.message);
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_persisted_queue() {
        let dir = tmp_dir("restart");
        let statuses = sample_statuses(40, 8);
        {
            let (m, _) = manager(&dir);
            m.submit(JobSpec::default(), &statuses_bytes(&statuses))
                .expect("submit");
            wait_terminal(&m, 1);
            m.shutdown_and_join();
        }
        // A second manager over the same dir sees the finished job and
        // assigns fresh ids after it.
        let (m, _) = manager(&dir);
        let jobs = m.list();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, JobState::Done);
        let meta = m
            .submit(JobSpec::default(), &statuses_bytes(&statuses))
            .expect("submit");
        assert_eq!(meta.id, 2);
        wait_terminal(&m, 2);
        assert_eq!(
            m.read_output(1, "edges.txt").expect("edges"),
            m.read_output(2, "edges.txt").expect("edges"),
        );
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graceful_shutdown_leaves_job_resumable() {
        let dir = tmp_dir("graceful");
        let statuses = sample_statuses(60, 10);
        {
            let shutdown = Arc::new(AtomicBool::new(true)); // cancel immediately
            let m = JobManager::new(
                &dir,
                1,
                Arc::clone(&shutdown),
                Arc::new(Recorder::new()),
                Arc::new(FaultPlan::disabled()),
            )
            .expect("manager");
            // Workers exit instantly on the pre-set flag, so drive the
            // cancelled run directly to exercise the interrupt path.
            let meta = m
                .submit(JobSpec::default(), &statuses_bytes(&statuses))
                .expect("submit");
            m.run_one(meta.id);
            let (meta, _) = m.status(1).expect("job");
            assert_eq!(
                meta.state,
                JobState::Running,
                "interrupted job stays running"
            );
            m.shutdown_and_join();
        }
        // Restart: the rescan re-enqueues the running job and it finishes.
        let (m, _) = manager(&dir);
        let done = wait_terminal(&m, 1);
        assert_eq!(done.state, JobState::Done);
        m.shutdown_and_join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_report_injects_runtime_job_only() {
        let rec = Recorder::new();
        {
            let _p = rec.phase("load_statuses");
        }
        rec.add("edges_emitted", 3);
        let report = RunReport::new("tends", rec.snapshot(), 2);
        let json = job_report_json(&report, 9, JobState::Done, 4);
        diffnet_observe::validate_report_json(&json.to_pretty(), &["load_statuses"], &[])
            .expect("valid");
        let job = json.get("runtime").and_then(|r| r.get("job")).expect("job");
        assert_eq!(job.get("id").and_then(Json::as_f64), Some(9.0));
        assert_eq!(job.get("revision").and_then(Json::as_f64), Some(4.0));
        // Stripping runtime removes the job record: the deterministic
        // section is unchanged relative to an offline run.
        let mut stripped = json.clone();
        stripped.remove("runtime");
        assert_eq!(stripped.to_pretty(), report.deterministic_json());
    }
}
