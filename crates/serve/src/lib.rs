//! `diffnet-serve` — a zero-dependency inference daemon.
//!
//! Turns the offline reconstruction pipeline into a long-running service
//! without adding a single external crate: a hand-rolled HTTP/1.1 layer
//! with an incremental, readiness-driven parser ([`http`]), an
//! `epoll(7)` event loop over raw FFI that owns every socket on one
//! thread — keep-alive, pipelining, bounded buffers, timeouts, and
//! backpressure ([`reactor`]) — a durable job queue whose persistence
//! layer *is* the PR-4 checkpoint machinery ([`job`]), routing, config,
//! and signal handling ([`server`]), and a small blocking keep-alive
//! client for the CLI, the load generator, and tests ([`client`]).
//!
//! # API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs?algorithm=&threads=&checkpoint-interval=&edges=` | submit an input, get a job id |
//! | `GET /v1/jobs` | list jobs |
//! | `GET /v1/jobs/{id}` | state machine + live progress counters |
//! | `GET /v1/jobs/{id}/edges` | the inferred edge list |
//! | `GET /v1/jobs/{id}/report` | the run report (with `runtime.job`) |
//! | `GET /v1/jobs/{id}/trace` | the job's span tree (live while running, from the report once finished) |
//! | `POST /v1/jobs/{id}/cascades` | append cascades, re-estimate |
//! | `GET /v1/metrics` | Prometheus text exposition |
//! | `GET /v1/healthz` | liveness |
//! | `POST /v1/shutdown` | graceful stop (same path as SIGTERM) |
//!
//! # Request telemetry
//!
//! Every request gets an id — the client's `X-Request-Id` header when it
//! is short and header-safe, else a generated `req-N` — echoed back as
//! `X-Request-Id` and stamped on the structured JSON access-log line the
//! daemon writes to stderr (disable with `access_log: false` /
//! `--no-access-log`). Per-endpoint latency lands in log₂ duration
//! histograms exposed on `/v1/metrics` with real-second bucket
//! boundaries plus `_p50`/`_p95`/`_p99` gauges; requests slower than
//! `slow_request_secs` increment `http_slow_requests` and are always
//! logged. A background [`diffnet_observe::ResourceProfiler`] backs the
//! `process_rss_bytes` / `process_peak_rss_bytes` /
//! `process_user_cpu_seconds` / `process_system_cpu_seconds` gauges.
//!
//! # Durability contract
//!
//! Every state transition and output is written atomically
//! (temp + fsync + rename). A tends job checkpoints its per-node results
//! as it runs, so `kill -9` at any instant — including mid-flush, via the
//! `job_flush` and `checkpoint_flush` fault sites — loses at most the
//! nodes since the last flush. On restart the data dir is rescanned,
//! interrupted jobs resume from their checkpoint, and the finished edge
//! list is byte-identical to an uninterrupted run at any thread count.

pub mod client;
pub mod http;
pub mod job;
pub mod reactor;
pub mod server;

pub use client::Client;
pub use http::{HttpError, Limits, Method, Request, Response};
pub use job::{
    job_report_json, parse_size, status_json, JobError, JobManager, JobMeta, JobSpec, JobState,
    ALGORITHMS,
};
pub use reactor::Tuning;
pub use server::{ServeConfig, Server, FAULT_ACCEPT};
