//! The daemon: routing, config, and lifecycle around the epoll reactor.
//!
//! All socket work happens on the single [`crate::reactor`] thread
//! (nonblocking accept, readiness-driven parsing, keep-alive and
//! pipelining, bounded buffers, timeouts); this module owns everything
//! above it: the [`ServeConfig`], the process-wide [`Shared`] state, the
//! [`route`] table mapping parsed requests onto the [`JobManager`] API,
//! and the [`route_is_heavy`] split deciding which routes run inline on
//! the loop versus on the request-worker pool.
//!
//! Shutdown is cooperative and has three triggers that all set the same
//! flag: `SIGTERM`/`SIGINT` (unix), `POST /v1/shutdown`, and
//! [`Server::request_shutdown`]. The reactor notices the flag within one
//! poll interval (immediately when the eventfd doorbell is rung), stops
//! accepting, drains in-flight responses, and then joins the job
//! workers — in-flight jobs checkpoint their finished nodes and stay
//! `running` on disk, so the next start resumes them.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use diffnet_observe::{
    parse_json, render_prometheus, trace_to_json, FaultPlan, Json, Recorder, ResourceProfiler,
    DEFAULT_SAMPLE_INTERVAL,
};

use crate::http::{Limits, Method, Request, Response};
use crate::job::{status_json, JobError, JobManager, JobSpec};
use crate::reactor::{Reactor, Tuning, Wakeup};

/// Fault-injection site hit once per accepted connection.
pub const FAULT_ACCEPT: &str = "accept";

/// How the daemon is wired up. [`Default`] binds an ephemeral loopback
/// port with one job worker — the configuration the tests use.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (or port `0` for ephemeral).
    pub addr: String,
    /// Directory holding the durable job store.
    pub data_dir: PathBuf,
    /// HTTP handler threads.
    pub http_workers: usize,
    /// Inference worker threads (each runs one job at a time).
    pub job_workers: usize,
    /// Request size caps.
    pub limits: Limits,
    /// If set, the bound address is written here once listening — how
    /// spawned-binary tests discover an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Requests slower than this many seconds are logged and counted as
    /// `http_slow_requests`.
    pub slow_request_secs: f64,
    /// Emit one structured JSON access-log line per request to stderr.
    pub access_log: bool,
    /// Reactor knobs: connection cap, per-connection in-flight budget,
    /// idle/read timeouts, drain deadline, request-worker queue depth.
    pub tuning: Tuning,
    /// Cap on queued (not-yet-running) jobs; submits beyond it are `503`.
    pub max_queued_jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("diffnet-data"),
            http_workers: 4,
            job_workers: 1,
            limits: Limits::default(),
            port_file: None,
            slow_request_secs: 1.0,
            access_log: true,
            tuning: Tuning::default(),
            max_queued_jobs: 64,
        }
    }
}

/// Process-wide state the reactor, its request workers, and the route
/// table all share.
pub(crate) struct Shared {
    pub(crate) manager: Arc<JobManager>,
    pub(crate) rec: Arc<Recorder>,
    pub(crate) limits: Limits,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// The reactor's eventfd doorbell: rung by request workers on
    /// completion and by [`Server::request_shutdown`].
    pub(crate) wakeup: Wakeup,
    pub(crate) fault: Arc<FaultPlan>,
    /// Sequence for generated request ids (`req-1`, `req-2`, …).
    next_request_id: AtomicU64,
    /// Process-wide resource sampler; its live profile backs the
    /// `process_*` gauges on `/v1/metrics`.
    profiler: ResourceProfiler,
    pub(crate) slow_request_secs: f64,
    pub(crate) access_log: bool,
}

/// A bound, running daemon. Construct with [`Server::bind`], then either
/// call [`Server::serve_forever`] (the CLI does) or poke it from another
/// thread via [`Server::request_shutdown`] (the tests do).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    http_workers: usize,
    tuning: Tuning,
}

impl Server {
    /// Binds the listener, opens/rescans the job store, starts the job
    /// workers, and (if configured) writes the port file. The reactor
    /// itself starts inside [`Server::serve_forever`].
    pub fn bind(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let rec = Arc::new(Recorder::new());
        let fault = Arc::new(
            FaultPlan::from_env().map_err(|e| io::Error::other(format!("DIFFNET_FAULT: {e}")))?,
        );
        let manager = JobManager::new(
            &config.data_dir,
            config.job_workers,
            Arc::clone(&shutdown),
            Arc::clone(&rec),
            Arc::clone(&fault),
        )?;
        manager.set_max_queued(config.max_queued_jobs);
        let shared = Arc::new(Shared {
            manager,
            rec,
            limits: config.limits,
            shutdown,
            wakeup: Wakeup::new()?,
            fault,
            next_request_id: AtomicU64::new(1),
            profiler: ResourceProfiler::start(DEFAULT_SAMPLE_INTERVAL),
            slow_request_secs: config.slow_request_secs,
            access_log: config.access_log,
        });
        if let Some(path) = &config.port_file {
            diffnet_graph::io::save_atomic(path, |w| writeln!(w, "{addr}"))?;
        }
        Ok(Server {
            listener,
            addr,
            shared,
            http_workers: config.http_workers,
            tuning: config.tuning,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag; setting it stops the daemon within one poll
    /// interval, exactly like `SIGTERM` or `POST /v1/shutdown`.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Requests a graceful stop from another thread, waking the reactor
    /// immediately via its doorbell.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.ring();
    }

    /// Runs the epoll reactor until the shutdown flag is set (by a
    /// signal, the shutdown endpoint, or [`Server::request_shutdown`]),
    /// drains in-flight responses, then joins the job workers. In-flight
    /// jobs checkpoint and stay resumable.
    pub fn serve_forever(self) -> io::Result<()> {
        #[cfg(unix)]
        install_signal_handlers();
        let reactor = Reactor::new(
            self.listener,
            Arc::clone(&self.shared),
            self.http_workers,
            self.tuning,
        )?;
        let result = reactor.run();
        // Reached only after the drain: stop the job workers too.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.manager.shutdown_and_join();
        result
    }
}

impl Shared {
    /// The per-request id: the client's `X-Request-Id` when it is short
    /// and header-safe (so it can be echoed without response-splitting
    /// risk), otherwise a generated `req-N`.
    pub(crate) fn request_id(&self, req: &Request) -> String {
        if let Some(raw) = req.header("x-request-id") {
            let ok = !raw.is_empty()
                && raw.len() <= 64
                && raw
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
            if ok {
                return raw.to_string();
            }
        }
        self.generated_request_id()
    }

    pub(crate) fn generated_request_id(&self) -> String {
        format!(
            "req-{}",
            self.next_request_id.fetch_add(1, Ordering::Relaxed)
        )
    }
}

/// Whether a route runs on the request-worker pool (`true`) instead of
/// inline on the reactor thread. Heavy routes are the ones that touch
/// the job store (submits parse + persist, cascade appends rewrite
/// inputs, output reads hit disk); everything else answers from memory
/// fast enough that a worker round-trip would only add latency.
pub(crate) fn route_is_heavy(req: &Request) -> bool {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    matches!(
        (req.method, segments.as_slice()),
        (Method::Post, ["v1", "jobs"])
            | (Method::Post, ["v1", "jobs", _, "cascades"])
            | (Method::Get, ["v1", "jobs", _, "edges" | "report" | "trace"])
    )
}

/// The duration-histogram name for a request's endpoint. Static names
/// keep the recorder allocation-free and bound the label set no matter
/// what paths clients probe.
pub(crate) fn endpoint_metric(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method, segments.as_slice()) {
        (Method::Get, ["v1", "healthz"]) => "http_request_seconds_healthz",
        (Method::Get, ["v1", "metrics"]) => "http_request_seconds_metrics",
        (Method::Post, ["v1", "shutdown"]) => "http_request_seconds_shutdown",
        (Method::Post, ["v1", "jobs"]) => "http_request_seconds_submit",
        (Method::Get, ["v1", "jobs"]) => "http_request_seconds_jobs_list",
        (Method::Get, ["v1", "jobs", _]) => "http_request_seconds_job_status",
        (Method::Get, ["v1", "jobs", _, "edges"]) => "http_request_seconds_job_edges",
        (Method::Get, ["v1", "jobs", _, "report"]) => "http_request_seconds_job_report",
        (Method::Get, ["v1", "jobs", _, "trace"]) => "http_request_seconds_job_trace",
        (Method::Post, ["v1", "jobs", _, "cascades"]) => "http_request_seconds_job_cascades",
        _ => "http_request_seconds_other",
    }
}

/// Maps one parsed request onto the API.
pub(crate) fn route(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method, segments.as_slice()) {
        (Method::Get, ["v1", "healthz"]) => Response::text(200, "ok\n"),
        (Method::Get, ["v1", "metrics"]) => {
            // Refresh the process gauges from the live profiler before
            // rendering, so every scrape sees current RSS/CPU.
            let res = shared.profiler.current();
            shared
                .rec
                .value("process_rss_bytes", res.last_rss_bytes() as f64);
            shared
                .rec
                .value("process_peak_rss_bytes", res.peak_rss_bytes as f64);
            shared
                .rec
                .value("process_user_cpu_seconds", res.user_cpu_seconds);
            shared
                .rec
                .value("process_system_cpu_seconds", res.system_cpu_seconds);
            let snap = shared.rec.snapshot();
            Response::text(200, render_prometheus(&snap, "diffnet"))
        }
        (Method::Post, ["v1", "shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::text(200, "shutting down\n")
        }
        (Method::Post, ["v1", "jobs"]) => match spec_from_query(req) {
            Ok(spec) => match shared.manager.submit(spec, &req.body) {
                Ok(meta) => Response::json(201, &status_json(&meta, None)),
                Err(e) => job_error(e),
            },
            Err(msg) => Response::error(422, msg),
        },
        (Method::Get, ["v1", "jobs"]) => {
            let mut arr = Vec::new();
            for meta in shared.manager.list() {
                arr.push(status_json(&meta, None));
            }
            let mut root = Json::object();
            root.push("jobs", Json::Arr(arr));
            Response::json(200, &root)
        }
        (Method::Get, ["v1", "jobs", id]) => match parse_id(id) {
            Some(id) => match shared.manager.status(id) {
                Some((meta, live)) => Response::json(200, &status_json(&meta, live.as_ref())),
                None => Response::error(404, format!("no job {id}")),
            },
            None => Response::error(404, format!("bad job id {id:?}")),
        },
        (Method::Get, ["v1", "jobs", id, "edges"]) => output(shared, id, "edges.txt"),
        (Method::Get, ["v1", "jobs", id, "report"]) => output(shared, id, "report.json"),
        (Method::Get, ["v1", "jobs", id, "trace"]) => job_trace(shared, id),
        (Method::Post, ["v1", "jobs", id, "cascades"]) => match parse_id(id) {
            Some(id) => match shared.manager.append_cascades(id, &req.body) {
                // 200: applied and re-queued now. 202: the job is still
                // running, so the batch is buffered and will be applied
                // (with one revision bump) when the job next finishes.
                Ok((meta, buffered)) => {
                    let status = if buffered { 202 } else { 200 };
                    Response::json(status, &status_json(&meta, None))
                }
                Err(e) => job_error(e),
            },
            None => Response::error(404, format!("bad job id {id:?}")),
        },
        // Known paths with the wrong verb are 405, unknown paths 404.
        (_, ["v1", "healthz" | "metrics" | "jobs", ..]) | (_, ["v1", "shutdown"]) => {
            Response::error(405, format!("{} not allowed here", req.method))
        }
        _ => Response::error(404, format!("no route for {:?}", req.path)),
    }
}

fn output(shared: &Shared, id: &str, file: &str) -> Response {
    match parse_id(id) {
        Some(id) => match shared.manager.read_output(id, file) {
            Ok(bytes) => Response {
                status: 200,
                content_type: if file.ends_with(".json") {
                    "application/json"
                } else {
                    "text/plain; charset=utf-8"
                },
                headers: Vec::new(),
                body: bytes,
            },
            Err(e) => job_error(e),
        },
        None => Response::error(404, format!("bad job id {id:?}")),
    }
}

/// `GET /v1/jobs/{id}/trace`: the job's span tree. A running job renders
/// live from its recorder; a finished one extracts `runtime.trace` from
/// the persisted report, so the endpoint works across daemon restarts.
fn job_trace(shared: &Shared, id: &str) -> Response {
    let Some(id) = parse_id(id) else {
        return Response::error(404, format!("bad job id {id:?}"));
    };
    let Some((meta, live)) = shared.manager.status(id) else {
        return Response::error(404, format!("no job {id}"));
    };
    let trace = match live {
        Some(snap) => trace_to_json(&snap.spans, snap.spans_dropped),
        None => {
            let bytes = match shared.manager.read_output(id, "report.json") {
                Ok(b) => b,
                Err(e) => return job_error(e),
            };
            let report = match std::str::from_utf8(&bytes)
                .map_err(|e| e.to_string())
                .and_then(|text| parse_json(text).map_err(|e| e.to_string()))
            {
                Ok(json) => json,
                Err(e) => return Response::error(500, format!("corrupt job report: {e}")),
            };
            match report.get("runtime").and_then(|r| r.get("trace")) {
                Some(trace) => trace.clone(),
                None => return Response::error(404, format!("no trace recorded for job {id}")),
            }
        }
    };
    let mut root = Json::object();
    root.push("job", id);
    root.push("state", meta.state.as_str());
    root.push("trace", trace);
    Response::json(200, &root)
}

fn job_error(e: JobError) -> Response {
    Response::error(e.status, e.message)
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

/// Builds a [`JobSpec`] from the submit query string; unknown keys are a
/// typed error so client typos fail loudly instead of silently running
/// with defaults.
fn spec_from_query(req: &Request) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    for (key, value) in &req.query {
        match key.as_str() {
            "algorithm" => spec.algorithm = value.clone(),
            "threads" => {
                spec.threads = value
                    .parse()
                    .map_err(|_| format!("bad threads value {value:?}"))?;
            }
            "checkpoint-interval" => {
                spec.checkpoint_interval = value
                    .parse()
                    .map_err(|_| format!("bad checkpoint-interval value {value:?}"))?;
            }
            "edges" => {
                spec.edges_budget = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad edges value {value:?}"))?,
                );
            }
            "memory-budget" => {
                spec.memory_budget = Some(crate::job::parse_size(value).ok_or_else(|| {
                    format!("bad memory-budget value {value:?} (bytes with optional K/M/G suffix)")
                })?);
            }
            "shard-index" => {
                spec.shard_index = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad shard-index value {value:?}"))?,
                );
            }
            "shard-count" => {
                spec.shard_count = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad shard-count value {value:?}"))?,
                );
            }
            other => return Err(format!("unknown submit option {other:?}")),
        }
    }
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Unix signal handling, with no crates: std already links libc, so the
// two symbols we need can be declared directly. The handler only stores
// to a process-global atomic, which is async-signal-safe.

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

pub(crate) fn signalled() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_config(tag: &str) -> ServeConfig {
        let dir = std::env::temp_dir().join(format!(
            "diffnet-serve-http-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ServeConfig {
            data_dir: dir,
            http_workers: 2,
            access_log: false,
            ..ServeConfig::default()
        }
    }

    fn start(config: &ServeConfig) -> (SocketAddr, std::thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(config).expect("bind");
        let addr = server.addr();
        let handle = std::thread::spawn(move || server.serve_forever());
        (addr, handle)
    }

    fn shut_down(
        addr: SocketAddr,
        handle: std::thread::JoinHandle<io::Result<()>>,
        config: &ServeConfig,
    ) {
        let client = crate::client::Client::new(addr);
        client.shutdown().expect("shutdown");
        handle.join().expect("join").expect("serve");
        let _ = std::fs::remove_dir_all(&config.data_dir);
    }

    #[test]
    fn routes_health_metrics_and_errors() {
        let config = temp_config("routes");
        let (addr, handle) = start(&config);
        let client = crate::client::Client::new(addr);

        let (status, body) = client.get("/v1/healthz").expect("healthz");
        assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

        let (status, body) = client.get("/v1/metrics").expect("metrics");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).expect("utf8");
        assert!(
            text.contains("diffnet_http_requests"),
            "metrics exposition missing request counter:\n{text}"
        );

        let (status, _) = client.get("/v1/jobs/999").expect("missing job");
        assert_eq!(status, 404);
        let (status, _) = client.get("/nonsense").expect("bad path");
        assert_eq!(status, 404);

        // Wrong verb on a known path.
        let (status, _) = client
            .request(Method::Post, "/v1/healthz", b"x")
            .expect("post healthz");
        assert_eq!(status, 405);

        shut_down(addr, handle, &config);
    }

    #[test]
    fn request_ids_are_echoed_and_generated() {
        let config = temp_config("reqid");
        let (addr, handle) = start(&config);

        // A well-formed client id round-trips.
        let raw = crate::client::raw_roundtrip(
            addr,
            b"GET /v1/healthz HTTP/1.1\r\nX-Request-Id: my-trace.7\r\n\r\n",
        )
        .expect("raw");
        assert!(raw.contains("X-Request-Id: my-trace.7"), "{raw}");

        // A hostile id (header-splitting attempt via spaces/length) is
        // replaced with a generated one.
        let raw = crate::client::raw_roundtrip(
            addr,
            b"GET /v1/healthz HTTP/1.1\r\nX-Request-Id: evil id\r\n\r\n",
        )
        .expect("raw");
        assert!(!raw.contains("evil id"), "{raw}");
        assert!(raw.contains("X-Request-Id: req-"), "{raw}");

        // Requests without one also get a generated id.
        let raw =
            crate::client::raw_roundtrip(addr, b"GET /v1/healthz HTTP/1.1\r\n\r\n").expect("raw");
        assert!(raw.contains("X-Request-Id: req-"), "{raw}");

        shut_down(addr, handle, &config);
    }

    #[test]
    fn metrics_expose_latency_histograms_and_process_gauges() {
        let mut config = temp_config("latency");
        // Threshold of zero: every request is "slow", so the counter and
        // slow-path logging are exercised deterministically.
        config.slow_request_secs = 0.0;
        let (addr, handle) = start(&config);
        let client = crate::client::Client::new(addr);

        client.get("/v1/healthz").expect("healthz");
        client.get("/v1/healthz").expect("healthz");
        let (status, body) = client.get("/v1/metrics").expect("metrics");
        assert_eq!(status, 200);
        // Second scrape: the first one recorded the metrics endpoint's
        // own latency, so its histogram family is now present too.
        let (_, body2) = client.get("/v1/metrics").expect("metrics again");
        let text = String::from_utf8(body2).expect("utf8");
        drop(body);

        assert!(
            text.contains("# TYPE diffnet_http_request_seconds_healthz histogram"),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_count 2"),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_p50 "),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_p95 "),
            "{text}"
        );
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_p99 "),
            "{text}"
        );
        // Buckets carry real second boundaries, not raw indices.
        assert!(
            text.contains("diffnet_http_request_seconds_healthz_bucket{le=\"0.0009765625\"}"),
            "{text}"
        );
        assert!(text.contains("diffnet_process_rss_bytes "), "{text}");
        assert!(text.contains("diffnet_process_peak_rss_bytes "), "{text}");
        assert!(text.contains("diffnet_process_user_cpu_seconds "), "{text}");
        assert!(text.contains("diffnet_http_slow_requests "), "{text}");
        diffnet_observe::lint_exposition(&text).expect("live exposition lints clean");

        shut_down(addr, handle, &config);
    }

    #[test]
    fn hostile_requests_get_typed_errors_not_hangs() {
        let mut config = temp_config("hostile");
        config.limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 4096,
        };
        let (addr, handle) = start(&config);

        // Garbage request line.
        let raw = crate::client::raw_roundtrip(addr, b"\x01\x02garbage\r\n\r\n").expect("raw");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        // Declared body over the cap: rejected before reading it.
        let raw = crate::client::raw_roundtrip(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
        )
        .expect("raw");
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");

        // Truncated upload: client closes before delivering the body.
        let raw = crate::client::raw_roundtrip(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        )
        .expect("raw");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        assert!(raw.contains("truncated body"), "{raw}");

        // The server is still healthy afterwards.
        let client = crate::client::Client::new(addr);
        let (status, _) = client.get("/v1/healthz").expect("healthz");
        assert_eq!(status, 200);

        shut_down(addr, handle, &config);
    }

    /// A small deterministic status matrix (cascades over a ring) in the
    /// submit wire format.
    fn sample_statuses_body(beta: usize, n: usize) -> Vec<u8> {
        let mut out = String::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for l in 0..beta {
            let mut row = vec![false; n];
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (state >> 33) as usize % n;
            for k in 0..1 + (l % (n / 2)) {
                row[(start + k) % n] = true;
            }
            let cells: Vec<&str> = row.iter().map(|&b| if b { "1" } else { "0" }).collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        out.into_bytes()
    }

    #[test]
    fn trace_endpoint_returns_span_tree_for_completed_job() {
        let config = temp_config("trace");
        let (addr, handle) = start(&config);
        let client = crate::client::Client::new(addr);

        let (status, submitted) = client
            .post_json("/v1/jobs", &sample_statuses_body(40, 8))
            .expect("submit");
        assert_eq!(status, 201, "{}", submitted.to_pretty());
        let id = submitted.get("id").and_then(Json::as_f64).expect("job id") as u64;
        client
            .wait_for_job(id, Duration::from_secs(30))
            .expect("job finishes");

        let (status, doc) = client
            .get_json(&format!("/v1/jobs/{id}/trace"))
            .expect("trace");
        assert_eq!(status, 200, "{}", doc.to_pretty());
        assert_eq!(doc.get("job").and_then(Json::as_f64), Some(id as f64));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("done"));
        let trace = doc.get("trace").expect("trace object");
        // The tree is parseable by the same routine `diffnet trace
        // render` uses, and contains the reconstruction span hierarchy.
        let (spans, _) = diffnet_observe::spans_from_json(trace).expect("parseable span tree");
        assert!(spans.iter().any(|s| s.name == "parent_search"));
        assert!(spans
            .iter()
            .any(|s| s.name == "node_search" && s.parent.is_some()));

        let (status, _) = client.get("/v1/jobs/999/trace").expect("missing");
        assert_eq!(status, 404);

        shut_down(addr, handle, &config);
    }

    #[test]
    fn streamed_job_cascade_append_is_a_typed_422() {
        let config = temp_config("streamed-append");
        let (addr, handle) = start(&config);
        let client = crate::client::Client::new(addr);

        let (status, submitted) = client
            .post_json("/v1/jobs?memory-budget=8M", &sample_statuses_body(40, 8))
            .expect("submit");
        assert_eq!(status, 201, "{}", submitted.to_pretty());
        let id = submitted.get("id").and_then(Json::as_f64).expect("job id") as u64;
        client
            .wait_for_job(id, Duration::from_secs(30))
            .expect("job finishes");

        let (status, body) = client
            .post_json(
                &format!("/v1/jobs/{id}/cascades"),
                &sample_statuses_body(5, 8),
            )
            .expect("append");
        assert_eq!(status, 422, "{}", body.to_pretty());
        let message = body.get("error").and_then(Json::as_str).expect("error");
        assert!(message.contains("streamed"), "{message}");

        shut_down(addr, handle, &config);
    }

    #[test]
    fn unknown_submit_option_is_422() {
        let config = temp_config("badopt");
        let (addr, handle) = start(&config);
        let client = crate::client::Client::new(addr);
        let (status, body) = client
            .request(Method::Post, "/v1/jobs?thread=2", b"0 1\n1 0\n")
            .expect("submit");
        assert_eq!(status, 422);
        assert!(
            String::from_utf8(body).expect("utf8").contains("thread"),
            "error should name the bad option"
        );
        shut_down(addr, handle, &config);
    }
}
