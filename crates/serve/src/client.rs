//! A tiny blocking HTTP client for the daemon, used by the CLI's
//! `submit`/`job` subcommands, the integration tests, and the CI smoke
//! job — so exercising the server needs no external tooling at all.
//!
//! One request per connection (the server always answers
//! `Connection: close`), with socket timeouts so a wedged server fails a
//! test instead of hanging it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use diffnet_observe::{parse_json, Json};

use crate::http::Method;

/// A client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client with the default 30 s socket timeouts.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Client {
        Client { addr, timeout }
    }

    /// One request/response roundtrip; returns the status and raw body.
    pub fn request(&self, method: Method, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> io::Result<(u16, Vec<u8>)> {
        self.request(Method::Get, path, b"")
    }

    /// `GET path`, expecting a JSON body.
    pub fn get_json(&self, path: &str) -> io::Result<(u16, Json)> {
        let (status, body) = self.get(path)?;
        Ok((status, to_json(&body)?))
    }

    /// `POST path` with a body, expecting a JSON reply.
    pub fn post_json(&self, path: &str, body: &[u8]) -> io::Result<(u16, Json)> {
        let (status, body) = self.request(Method::Post, path, body)?;
        Ok((status, to_json(&body)?))
    }

    /// `GET /v1/healthz`, as a boolean.
    pub fn healthz(&self) -> io::Result<bool> {
        Ok(self.get("/v1/healthz")?.0 == 200)
    }

    /// `GET /v1/metrics`, as the exposition text.
    pub fn metrics(&self) -> io::Result<String> {
        let (status, body) = self.get("/v1/metrics")?;
        if status != 200 {
            return Err(io::Error::other(format!("metrics returned {status}")));
        }
        String::from_utf8(body).map_err(|_| io::Error::other("metrics body is not UTF-8"))
    }

    /// `POST /v1/shutdown`; succeeds once the server acknowledged.
    pub fn shutdown(&self) -> io::Result<()> {
        let (status, _) = self.request(Method::Post, "/v1/shutdown", b"")?;
        if status == 200 {
            Ok(())
        } else {
            Err(io::Error::other(format!("shutdown returned {status}")))
        }
    }

    /// Polls `GET /v1/jobs/{id}` until the state is terminal or the
    /// deadline passes; returns the final status document.
    pub fn wait_for_job(&self, id: u64, deadline: Duration) -> io::Result<Json> {
        let poll = Duration::from_millis(50);
        let mut waited = Duration::ZERO;
        loop {
            let (status, json) = self.get_json(&format!("/v1/jobs/{id}"))?;
            if status != 200 {
                return Err(io::Error::other(format!(
                    "job {id} status returned {status}: {}",
                    json.to_pretty().trim()
                )));
            }
            let state = json.get("state").and_then(Json::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "partial") {
                return Ok(json);
            }
            if waited >= deadline {
                return Err(io::Error::other(format!(
                    "job {id} still {state:?} after {waited:?}"
                )));
            }
            std::thread::sleep(poll);
            waited += poll;
        }
    }
}

fn to_json(body: &[u8]) -> io::Result<Json> {
    let text =
        std::str::from_utf8(body).map_err(|_| io::Error::other("response body is not UTF-8"))?;
    parse_json(text).map_err(|e| io::Error::other(format!("bad JSON response: {e}")))
}

/// Splits a raw HTTP response into status code and body.
fn parse_response(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::other("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::other("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

/// Sends raw bytes and returns the raw response as text — the hostile
/// input tests use this to speak deliberately broken HTTP.
pub fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(bytes)?;
    stream.flush()?;
    // Half-close the write side so a server waiting for more body bytes
    // sees EOF (the truncated-upload case) instead of timing out.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    String::from_utf8(raw).map_err(|_| io::Error::other("response is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_splits_status_and_body() {
        let (status, body) =
            parse_response(b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").expect("ok");
        assert_eq!(status, 404);
        assert_eq!(body, b"no");
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
