//! A tiny blocking HTTP client for the daemon, used by the CLI's
//! `submit`/`job` subcommands, the load generator, the integration
//! tests, and the CI smoke job — so exercising the server needs no
//! external tooling at all.
//!
//! The client keeps one connection alive and reuses it across requests
//! (responses are `Content-Length`-framed, so reuse needs no `close`
//! delimiter): polling loops like [`Client::wait_for_job`] ride a single
//! connection instead of reconnecting per poll. The server's
//! `Connection: close` answers — and idle reaping, which it advertises
//! via `Keep-Alive: timeout=N` — are honored by dropping the pooled
//! connection and dialing a fresh one on the next request. A failed
//! pooled roundtrip is transparently retried on a fresh dial only when
//! that is provably safe: the request died while being written (never
//! processed), or the method is an idempotent `GET`. A `POST` that
//! failed after it was fully sent surfaces the error instead of
//! risking a duplicate submit or append. Socket timeouts ensure a
//! wedged server fails a test instead of hanging it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use diffnet_observe::{parse_json, Json};

use crate::http::Method;

/// A client bound to one server address, holding at most one pooled
/// keep-alive connection (shared across clones).
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Arc<Mutex<Option<TcpStream>>>,
}

impl Client {
    /// A client with the default 30 s socket timeouts.
    pub fn new(addr: SocketAddr) -> Client {
        Client::with_timeout(addr, Duration::from_secs(30))
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            conn: Arc::new(Mutex::new(None)),
        }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One request/response roundtrip; returns the status and raw body.
    ///
    /// Reuses the pooled connection when one is alive. A pooled
    /// connection the server has since reaped (idle timeout, restart)
    /// usually fails while *writing* the request — the server cannot
    /// have processed it, so any method is safe to retry once on a
    /// fresh connection. If the failure comes *after* the request was
    /// fully written (read timeout, connection dying mid-response), the
    /// server may already have executed it, so only idempotent `GET`s
    /// are retried; for `POST` the error surfaces instead of risking a
    /// silent duplicate submit/append.
    pub fn request(&self, method: Method, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let mut pooled = self.conn.lock().expect("client connection lock");
        if let Some(mut stream) = pooled.take() {
            match self.roundtrip(&mut stream, method, path, body) {
                Ok((status, body, keep)) => {
                    if keep {
                        *pooled = Some(stream);
                    }
                    return Ok((status, body));
                }
                Err(e) if e.request_sent && method != Method::Get => return Err(e.error),
                // Provably-unprocessed (or idempotent) failure on a
                // stale pooled connection: fall through to a fresh dial.
                Err(_) => {}
            }
        }
        let mut stream = self.connect()?;
        let (status, response, keep) = self
            .roundtrip(&mut stream, method, path, body)
            .map_err(|e| e.error)?;
        if keep {
            *pooled = Some(stream);
        }
        Ok((status, response))
    }

    fn roundtrip(
        &self,
        stream: &mut TcpStream,
        method: Method,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>, bool), RoundtripError> {
        let sent = write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        )
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());
        if let Err(error) = sent {
            // The request never left intact; a `Content-Length` underrun
            // is a typed 400 on the server, never an executed request.
            return Err(RoundtripError {
                request_sent: false,
                error,
            });
        }
        read_framed_response(stream).map_err(|error| RoundtripError {
            request_sent: true,
            error,
        })
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> io::Result<(u16, Vec<u8>)> {
        self.request(Method::Get, path, b"")
    }

    /// `GET path`, expecting a JSON body.
    pub fn get_json(&self, path: &str) -> io::Result<(u16, Json)> {
        let (status, body) = self.get(path)?;
        Ok((status, to_json(&body)?))
    }

    /// `POST path` with a body, expecting a JSON reply.
    pub fn post_json(&self, path: &str, body: &[u8]) -> io::Result<(u16, Json)> {
        let (status, body) = self.request(Method::Post, path, body)?;
        Ok((status, to_json(&body)?))
    }

    /// `GET /v1/healthz`, as a boolean.
    pub fn healthz(&self) -> io::Result<bool> {
        Ok(self.get("/v1/healthz")?.0 == 200)
    }

    /// `GET /v1/metrics`, as the exposition text.
    pub fn metrics(&self) -> io::Result<String> {
        let (status, body) = self.get("/v1/metrics")?;
        if status != 200 {
            return Err(io::Error::other(format!("metrics returned {status}")));
        }
        String::from_utf8(body).map_err(|_| io::Error::other("metrics body is not UTF-8"))
    }

    /// `POST /v1/shutdown`; succeeds once the server acknowledged.
    pub fn shutdown(&self) -> io::Result<()> {
        let (status, _) = self.request(Method::Post, "/v1/shutdown", b"")?;
        if status == 200 {
            Ok(())
        } else {
            Err(io::Error::other(format!("shutdown returned {status}")))
        }
    }

    /// Polls `GET /v1/jobs/{id}` until the state is terminal or the
    /// deadline passes; returns the final status document. The polls
    /// share the pooled keep-alive connection.
    pub fn wait_for_job(&self, id: u64, deadline: Duration) -> io::Result<Json> {
        let poll = Duration::from_millis(50);
        let mut waited = Duration::ZERO;
        loop {
            let (status, json) = self.get_json(&format!("/v1/jobs/{id}"))?;
            if status != 200 {
                return Err(io::Error::other(format!(
                    "job {id} status returned {status}: {}",
                    json.to_pretty().trim()
                )));
            }
            let state = json.get("state").and_then(Json::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "partial") {
                return Ok(json);
            }
            if waited >= deadline {
                return Err(io::Error::other(format!(
                    "job {id} still {state:?} after {waited:?}"
                )));
            }
            std::thread::sleep(poll);
            waited += poll;
        }
    }
}

/// A failed roundtrip, tagged with whether the request bytes had been
/// fully written (and flushed) before the error hit — the line between
/// "provably not processed, safe to retry" and "may have executed".
struct RoundtripError {
    request_sent: bool,
    error: io::Error,
}

fn to_json(body: &[u8]) -> io::Result<Json> {
    let text =
        std::str::from_utf8(body).map_err(|_| io::Error::other("response body is not UTF-8"))?;
    parse_json(text).map_err(|e| io::Error::other(format!("bad JSON response: {e}")))
}

/// Reads exactly one `Content-Length`-framed response from `stream`.
/// Returns `(status, body, keep_alive)` — `keep_alive` is whether the
/// connection may be reused afterwards. A response without a
/// `Content-Length` is read to EOF and marks the connection unusable.
pub fn read_framed_response<S: Read>(stream: &mut S) -> io::Result<(u16, Vec<u8>, bool)> {
    let mut raw: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 8 * 1024];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("connection closed mid response head"));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::other("response head is not UTF-8"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let mut body = raw[head_end..].to_vec();
    match content_length {
        Some(len) => {
            while body.len() < len {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(io::Error::other(format!(
                        "connection closed mid response body ({} of {len} bytes)",
                        body.len()
                    )));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(len);
            Ok((status, body, keep_alive))
        }
        None => {
            // Unframed response: delimited by EOF, so the connection is
            // spent either way.
            stream.read_to_end(&mut body)?;
            Ok((status, body, false))
        }
    }
}

/// Sends raw bytes and returns the raw response as text — the hostile
/// input tests use this to speak deliberately broken HTTP.
pub fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(bytes)?;
    stream.flush()?;
    // Half-close the write side so a server waiting for more body bytes
    // sees EOF (the truncated-upload case) instead of timing out.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    String::from_utf8(raw).map_err(|_| io::Error::other("response is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splits a raw HTTP response into status code and body.
    fn parse_response(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let (status, body, _) = read_framed_response(&mut io::Cursor::new(raw.to_vec()))?;
        Ok((status, body))
    }

    #[test]
    fn parse_response_splits_status_and_body() {
        let (status, body) =
            parse_response(b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").expect("ok");
        assert_eq!(status, 404);
        assert_eq!(body, b"no");
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }

    #[test]
    fn framed_reader_stops_at_content_length_and_reports_keep_alive() {
        // Two pipelined responses in one stream: the reader must consume
        // exactly the first frame so the second stays for the next call.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: keep-alive\r\n\r\nabc\
                    HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let (status, body, keep) = read_framed_response(&mut cursor).expect("first frame");
        assert_eq!(
            (status, body.as_slice(), keep),
            (200, b"abc".as_slice(), true)
        );
    }

    #[test]
    fn framed_reader_honors_connection_close() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
        let (_, _, keep) = read_framed_response(&mut io::Cursor::new(raw.to_vec())).expect("frame");
        assert!(!keep);
    }

    /// Reads one request (head, then `Content-Length` body bytes) off a
    /// raw socket — just enough HTTP for the fake servers below.
    fn read_request(stream: &mut TcpStream) -> Vec<u8> {
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return raw,
                Ok(_) => raw.push(byte[0]),
            }
        }
        let head = String::from_utf8_lossy(&raw).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        let _ = stream.read_exact(&mut body);
        raw.extend_from_slice(&body);
        raw
    }

    fn keep_alive_ok(stream: &mut TcpStream) {
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n")
            .expect("respond");
    }

    #[test]
    fn pooled_post_is_not_retried_after_the_request_was_sent() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // Warm the pool with one keep-alive answer, then swallow the
            // POST — fully read, never answered — and close.
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream);
            keep_alive_ok(&mut stream);
            read_request(&mut stream);
            drop(stream);
            // A transparent retry would dial again; report whether one
            // arrived within the grace window.
            listener.set_nonblocking(true).expect("nonblocking");
            std::thread::sleep(Duration::from_millis(300));
            listener.accept().is_ok()
        });

        let client = Client::with_timeout(addr, Duration::from_secs(5));
        let (status, _) = client.get("/warmup").expect("pooled warmup");
        assert_eq!(status, 200);
        // The POST was fully written before the connection died, so the
        // server may have executed it: the failure must surface.
        let err = client
            .request(Method::Post, "/v1/jobs", b"body")
            .expect_err("post after send must not be retried");
        assert!(!err.to_string().is_empty());
        let retried = server.join().expect("server thread");
        assert!(!retried, "POST was silently retried on a fresh dial");
    }

    #[test]
    fn pooled_get_is_retried_on_a_fresh_connection() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // Answer one request keep-alive, then reap the pooled
            // connection (as the idle timeout would); the retry dial
            // gets a working answer.
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream);
            keep_alive_ok(&mut stream);
            drop(stream);
            let (mut stream, _) = listener.accept().expect("retry accept");
            read_request(&mut stream);
            keep_alive_ok(&mut stream);
        });

        let client = Client::with_timeout(addr, Duration::from_secs(5));
        assert_eq!(client.get("/warmup").expect("pooled warmup").0, 200);
        // Idempotent GET on the reaped pooled connection: retried
        // transparently, whichever phase the stale connection failed in.
        assert_eq!(client.get("/again").expect("retried get").0, 200);
        server.join().expect("server thread");
    }
}
