//! A minimal, hostile-input-hardened HTTP/1.1 layer on `std::net`.
//!
//! The workspace builds with no registry access, so this module hand-rolls
//! exactly the protocol subset the job API needs: `GET`/`POST`, a parsed
//! request target (path + query pairs), `Content-Length`-framed bodies,
//! and `Connection: close` responses. Everything else is rejected with a
//! typed [`HttpError`] that maps onto a 4xx status — the server never
//! panics on short reads and never buffers an unbounded body:
//!
//! * the head (request line + headers) is read incrementally and capped at
//!   [`Limits::max_head_bytes`] — exceeding it is `431`;
//! * a `POST` must declare `Content-Length` (`411`), the declared length
//!   is checked against [`Limits::max_body_bytes`] *before* any body byte
//!   is read (`413`), and a connection that ends before delivering the
//!   declared bytes is a truncated upload (`400`), mirroring the
//!   `Truncated` machinery of the on-disk formats.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// The request methods the job API serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// Size caps applied while parsing a request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes for the request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for a request body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string (e.g. `/v1/jobs/3`).
    pub path: String,
    /// Query pairs in order of appearance (`?a=1&b=2`); a key without `=`
    /// gets an empty value.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty for `GET`).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for the lower-case `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request was rejected; each variant maps onto one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing → `400`.
    Malformed(String),
    /// The connection closed before delivering the declared body → `400`.
    TruncatedBody {
        /// Bytes declared by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        found: usize,
    },
    /// `POST` without a `Content-Length` header → `411`.
    LengthRequired,
    /// Declared body larger than the configured cap → `413`.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Request line + headers larger than the configured cap → `431`.
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// A method this server does not implement → `501`.
    UnsupportedMethod(String),
    /// Socket-level failure while reading the request.
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps onto.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) | HttpError::TruncatedBody { .. } => 400,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::UnsupportedMethod(_) => 501,
            HttpError::Io(_) => 400,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TruncatedBody { expected, found } => write!(
                f,
                "truncated body: Content-Length declares {expected} bytes, got {found}"
            ),
            HttpError::LengthRequired => write!(f, "POST requires a Content-Length header"),
            HttpError::BodyTooLarge { declared, limit } => write!(
                f,
                "request body of {declared} bytes exceeds the {limit}-byte limit"
            ),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte limit")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::Io(e) => write!(f, "I/O error reading request: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`, enforcing `limits`.
pub fn read_request<S: Read>(stream: &mut S, limits: &Limits) -> Result<Request, HttpError> {
    // Incrementally read the head until the blank line, capped.
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        let want = chunk.len().min(limits.max_head_bytes + 4 - head.len());
        let read = stream.read(&mut chunk[..want])?;
        if read == 0 {
            if head.is_empty() {
                return Err(HttpError::Malformed("empty request".to_string()));
            }
            return Err(HttpError::Malformed(
                "connection closed mid request head".to_string(),
            ));
        }
        head.extend_from_slice(&chunk[..read]);
    };
    let leftover = head.split_off(head_end); // body bytes read past the head
    let head_text = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request line".to_string()))?;
    let mut parts = request_line.split(' ');
    let method_raw = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?;
    let method = match method_raw {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other if other.chars().all(|c| c.is_ascii_uppercase()) => {
            return Err(HttpError::UnsupportedMethod(other.to_string()))
        }
        other => return Err(HttpError::Malformed(format!("bad method {other:?}"))),
    };
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        other => return Err(HttpError::Malformed(format!("bad HTTP version {other:?}"))),
    }
    if parts.next().is_some() {
        return Err(HttpError::Malformed(
            "trailing tokens on request line".to_string(),
        ));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad target {target:?}")));
    }
    let (path, query) = parse_target(target);

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    let declared = match request.header("content-length") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {raw:?}")))?,
        ),
        None => None,
    };
    let expected = match (method, declared) {
        (Method::Post, None) => return Err(HttpError::LengthRequired),
        (_, None) => 0,
        (_, Some(len)) => len,
    };
    // The size check happens before a single body byte is read, so an
    // oversized upload is refused without buffering it.
    if expected > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: expected,
            limit: limits.max_body_bytes,
        });
    }

    let mut body = leftover;
    if body.len() > expected {
        return Err(HttpError::Malformed(format!(
            "{} bytes past the declared Content-Length",
            body.len() - expected
        )));
    }
    body.reserve(expected - body.len());
    let mut buf = [0u8; 8 * 1024];
    while body.len() < expected {
        let want = buf.len().min(expected - body.len());
        let read = stream.read(&mut buf[..want])?;
        if read == 0 {
            return Err(HttpError::TruncatedBody {
                expected,
                found: body.len(),
            });
        }
        body.extend_from_slice(&buf[..read]);
    }
    request.body = body;
    Ok(request)
}

/// Locates the end of the head (the byte after `\r\n\r\n` or, leniently,
/// `\n\n`).
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| bytes.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Splits a request target into path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Request-Id`), emitted after the
    /// content headers. Values must already be header-safe — the writer
    /// does not sanitize them.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a [`diffnet_observe::Json`] tree.
    pub fn json(status: u16, json: &diffnet_observe::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: json.to_pretty().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let mut json = diffnet_observe::Json::object();
        json.push("error", message.into());
        Response::json(status, &json)
    }

    /// Adds an extra response header.
    pub fn header(&mut self, name: &'static str, value: impl Into<String>) {
        self.headers.push((name, value.into()));
    }

    /// Serializes the response (with `Connection: close`) onto `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Per-connection socket timeouts: a stalled peer cannot pin a handler
/// thread forever.
pub fn configure_stream(stream: &std::net::TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(raw.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse(b"GET /v1/jobs/3?full=1&x HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("parse");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/v1/jobs/3");
        assert_eq!(req.query_value("full"), Some("1"));
        assert_eq!(req.query_value("x"), Some(""));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").expect("parse");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse(b"POST /v1/jobs HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn truncated_body_is_400_with_counts() {
        let err = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel").unwrap_err();
        match err {
            HttpError::TruncatedBody { expected, found } => {
                assert_eq!(expected, 10);
                assert_eq!(found, 3);
            }
            other => panic!("expected TruncatedBody, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_body_is_413_before_reading() {
        let limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        // The body bytes are never provided: the declared length alone
        // must trigger the rejection.
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        let err = read_request(&mut io::Cursor::new(raw.to_vec()), &limits).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Junk: {}\r\n\r\n", "a".repeat(200)).as_bytes());
        let err = read_request(&mut io::Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn garbage_request_line_is_400() {
        for raw in [
            b"\x00\x01\x02\x03\r\n\r\n".to_vec(),
            b"GET\r\n\r\n".to_vec(),
            b"GET /x HTTP/9.9\r\n\r\n".to_vec(),
            b"GET relative HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 extra\r\n\r\n".to_vec(),
        ] {
            let err = parse(&raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn garbage_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse(b"GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn unknown_method_is_501() {
        let err = parse(b"DELETE /v1/jobs/1 HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn closed_mid_head_is_400_not_panic() {
        let err = parse(b"GET /v1/jo").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse(b"").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn extra_headers_are_emitted_before_the_blank_line() {
        let mut resp = Response::text(200, "ok");
        resp.header("X-Request-Id", "req-7");
        let mut out = Vec::new();
        resp.write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        let head_end = text.find("\r\n\r\n").expect("head terminator");
        assert!(text[..head_end].contains("X-Request-Id: req-7"), "{text}");
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(404, "no such job");
        assert_eq!(resp.status, 404);
        let json = diffnet_observe::parse_json(std::str::from_utf8(&resp.body).expect("utf8"))
            .expect("json");
        assert_eq!(
            json.get("error").and_then(diffnet_observe::Json::as_str),
            Some("no such job")
        );
    }
}
