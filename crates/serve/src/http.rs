//! A minimal, hostile-input-hardened HTTP/1.1 layer on `std::net`.
//!
//! The workspace builds with no registry access, so this module hand-rolls
//! exactly the protocol subset the job API needs: `GET`/`POST`, a parsed
//! request target (path + query pairs), `Content-Length`-framed bodies,
//! and keep-alive/pipelined responses. Everything else is rejected with a
//! typed [`HttpError`] that maps onto a 4xx status — the server never
//! panics on short reads and never buffers an unbounded body:
//!
//! * the head (request line + headers) is read incrementally and capped at
//!   [`Limits::max_head_bytes`] — exceeding it is `431`;
//! * a `POST` must declare `Content-Length` (`411`), the declared length
//!   is checked against [`Limits::max_body_bytes`] *before* any body byte
//!   is read (`413`), and a connection that ends before delivering the
//!   declared bytes is a truncated upload (`400`), mirroring the
//!   `Truncated` machinery of the on-disk formats.
//!
//! The core is the pure incremental parser [`parse_buffered`]: given the
//! bytes buffered so far it either produces one parsed request plus the
//! byte count it consumed (pipelined requests parse one at a time from
//! the same buffer), asks for more bytes, or rejects with a typed error.
//! The epoll reactor drives it directly from readiness events; the
//! blocking [`read_request`] used by tests is a thin loop around it.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// The request methods the job API serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// Size caps applied while parsing a request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes for the request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for a request body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path, without the query string (e.g. `/v1/jobs/3`).
    pub path: String,
    /// Query pairs in order of appearance (`?a=1&b=2`); a key without `=`
    /// gets an empty value.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty for `GET`).
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.0` requests (which default to close).
    pub http10: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for the lower-case `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 defaults to close unless it sent
    /// `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => !self.http10,
        }
    }
}

/// Why a request was rejected; each variant maps onto one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing → `400`.
    Malformed(String),
    /// The connection closed before delivering the declared body → `400`.
    TruncatedBody {
        /// Bytes declared by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        found: usize,
    },
    /// `POST` without a `Content-Length` header → `411`.
    LengthRequired,
    /// Declared body larger than the configured cap → `413`.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Request line + headers larger than the configured cap → `431`.
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// A method this server does not implement → `501`.
    UnsupportedMethod(String),
    /// Socket-level failure while reading the request.
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps onto.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) | HttpError::TruncatedBody { .. } => 400,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::UnsupportedMethod(_) => 501,
            HttpError::Io(_) => 400,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TruncatedBody { expected, found } => write!(
                f,
                "truncated body: Content-Length declares {expected} bytes, got {found}"
            ),
            HttpError::LengthRequired => write!(f, "POST requires a Content-Length header"),
            HttpError::BodyTooLarge { declared, limit } => write!(
                f,
                "request body of {declared} bytes exceeds the {limit}-byte limit"
            ),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte limit")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::Io(e) => write!(f, "I/O error reading request: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Outcome of feeding buffered bytes to [`parse_buffered`].
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold one complete request.
    NeedMore,
    /// One complete request, and how many buffered bytes it consumed
    /// (bytes past `consumed` belong to the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of `buf` this request occupied (head + body).
        consumed: usize,
    },
}

/// Parses one request from the front of `buf`, enforcing `limits`.
///
/// Pure and incremental: the reactor calls it after every readiness
/// event with whatever has accumulated in the connection's read buffer.
/// The head cap is enforced as soon as the buffered head exceeds it, and
/// the body cap as soon as `Content-Length` is parsed — before the body
/// is buffered, so a hostile declared length costs nothing.
pub fn parse_buffered(buf: &[u8], limits: &Limits) -> Result<Parsed, HttpError> {
    // Only the head window needs scanning for the terminator; the +4
    // allows a terminator straddling the cap boundary.
    let window = buf.len().min(limits.max_head_bytes + 4);
    let Some(head_end) = find_head_end(&buf[..window]) else {
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        return Ok(Parsed::NeedMore);
    };
    if head_end > limits.max_head_bytes + 4 {
        return Err(HttpError::HeadTooLarge {
            limit: limits.max_head_bytes,
        });
    }
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request line".to_string()))?
        .trim_end_matches('\n'); // lenient \n\n terminator leaves one behind
    let mut parts = request_line.split(' ');
    let method_raw = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?;
    let method = match method_raw {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other if other.chars().all(|c| c.is_ascii_uppercase()) => {
            return Err(HttpError::UnsupportedMethod(other.to_string()))
        }
        other => return Err(HttpError::Malformed(format!("bad method {other:?}"))),
    };
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let http10 = match parts.next() {
        Some("HTTP/1.1") => false,
        Some("HTTP/1.0") => true,
        other => return Err(HttpError::Malformed(format!("bad HTTP version {other:?}"))),
    };
    if parts.next().is_some() {
        return Err(HttpError::Malformed(
            "trailing tokens on request line".to_string(),
        ));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad target {target:?}")));
    }
    let (path, query) = parse_target(target);

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let line = line.trim_end_matches('\n');
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        http10,
    };

    let declared = match request.header("content-length") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {raw:?}")))?,
        ),
        None => None,
    };
    let expected = match (method, declared) {
        (Method::Post, None) => return Err(HttpError::LengthRequired),
        (_, None) => 0,
        (_, Some(len)) => len,
    };
    // The size check happens before the body is buffered, so an
    // oversized upload is refused from its declared length alone.
    if expected > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: expected,
            limit: limits.max_body_bytes,
        });
    }
    if buf.len() < head_end + expected {
        return Ok(Parsed::NeedMore);
    }
    request.body = buf[head_end..head_end + expected].to_vec();
    Ok(Parsed::Complete {
        request,
        consumed: head_end + expected,
    })
}

/// Reads one request from `stream`, enforcing `limits` — the blocking
/// wrapper around [`parse_buffered`] used by the unit tests and any
/// one-shot tooling. Bytes past the first request's declared length are
/// rejected (this entry point does not pipeline).
pub fn read_request<S: Read>(stream: &mut S, limits: &Limits) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 8 * 1024];
    loop {
        match parse_buffered(&buf, limits)? {
            Parsed::Complete { request, consumed } => {
                if buf.len() > consumed {
                    return Err(HttpError::Malformed(format!(
                        "{} bytes past the declared Content-Length",
                        buf.len() - consumed
                    )));
                }
                return Ok(request);
            }
            Parsed::NeedMore => {}
        }
        let read = stream.read(&mut chunk)?;
        if read == 0 {
            if buf.is_empty() {
                return Err(HttpError::Malformed("empty request".to_string()));
            }
            return Err(truncation_error(&buf));
        }
        buf.extend_from_slice(&chunk[..read]);
    }
}

/// The typed error for a connection that hit EOF with a partial request
/// still buffered: a half-sent head is `Malformed`, a half-sent body is
/// `TruncatedBody` with the declared-vs-received counts. Shared by the
/// blocking reader and the reactor's peer-EOF path.
pub fn truncation_error(buf: &[u8]) -> HttpError {
    match find_head_end(buf) {
        None => HttpError::Malformed("connection closed mid request head".to_string()),
        Some(head_end) => HttpError::TruncatedBody {
            expected: declared_length(&buf[..head_end]).unwrap_or(0),
            found: buf.len() - head_end,
        },
    }
}

/// Best-effort `Content-Length` extraction from a raw head, for the
/// truncated-upload error path.
fn declared_length(head: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(head).ok()?;
    for line in text.split("\r\n") {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

/// Locates the end of the head (the byte after `\r\n\r\n` or, leniently,
/// `\n\n`).
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| bytes.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Splits a request target into path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Request-Id`), emitted after the
    /// content headers. Values must already be header-safe — the writer
    /// does not sanitize them.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a [`diffnet_observe::Json`] tree.
    pub fn json(status: u16, json: &diffnet_observe::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: json.to_pretty().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let mut json = diffnet_observe::Json::object();
        json.push("error", message.into());
        Response::json(status, &json)
    }

    /// Adds an extra response header.
    pub fn header(&mut self, name: &'static str, value: impl Into<String>) {
        self.headers.push((name, value.into()));
    }

    /// Serializes the response into `out`. `keep_alive` selects the
    /// `Connection` header; a kept-alive response also advertises the
    /// server's idle timeout (`Keep-Alive: timeout=N`) so well-behaved
    /// clients drop connections before the reactor reaps them.
    pub fn serialize_into(&self, out: &mut Vec<u8>, keep_alive: bool, idle_timeout_secs: u64) {
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        if keep_alive {
            let _ = write!(
                out,
                "Connection: keep-alive\r\nKeep-Alive: timeout={idle_timeout_secs}\r\n"
            );
        } else {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serializes the response (with `Connection: close`) onto `w` — the
    /// one-shot path used by tests and the connection-cap rejection.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        self.serialize_into(&mut out, false, 0);
        w.write_all(&out)?;
        w.flush()
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Per-connection socket timeouts: a stalled peer cannot pin a handler
/// thread forever.
pub fn configure_stream(stream: &std::net::TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(raw.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse(b"GET /v1/jobs/3?full=1&x HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("parse");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/v1/jobs/3");
        assert_eq!(req.query_value("full"), Some("1"));
        assert_eq!(req.query_value("x"), Some(""));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").expect("parse");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse(b"POST /v1/jobs HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn truncated_body_is_400_with_counts() {
        let err = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel").unwrap_err();
        match err {
            HttpError::TruncatedBody { expected, found } => {
                assert_eq!(expected, 10);
                assert_eq!(found, 3);
            }
            other => panic!("expected TruncatedBody, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_body_is_413_before_reading() {
        let limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        // The body bytes are never provided: the declared length alone
        // must trigger the rejection.
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        let err = read_request(&mut io::Cursor::new(raw.to_vec()), &limits).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Junk: {}\r\n\r\n", "a".repeat(200)).as_bytes());
        let err = read_request(&mut io::Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn garbage_request_line_is_400() {
        for raw in [
            b"\x00\x01\x02\x03\r\n\r\n".to_vec(),
            b"GET\r\n\r\n".to_vec(),
            b"GET /x HTTP/9.9\r\n\r\n".to_vec(),
            b"GET relative HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 extra\r\n\r\n".to_vec(),
        ] {
            let err = parse(&raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn garbage_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse(b"GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn unknown_method_is_501() {
        let err = parse(b"DELETE /v1/jobs/1 HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn closed_mid_head_is_400_not_panic() {
        let err = parse(b"GET /v1/jo").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse(b"").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    fn feed(buf: &[u8]) -> Result<Parsed, HttpError> {
        parse_buffered(buf, &Limits::default())
    }

    #[test]
    fn incremental_parser_needs_more_then_completes() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // Every proper prefix asks for more bytes; the full buffer
        // parses and consumes everything.
        for cut in 0..raw.len() {
            match feed(&raw[..cut]).expect("prefix parses") {
                Parsed::NeedMore => {}
                Parsed::Complete { .. } => panic!("prefix of {cut} bytes completed"),
            }
        }
        match feed(raw).expect("parses") {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.body, b"hello");
            }
            Parsed::NeedMore => panic!("complete request not recognized"),
        }
    }

    #[test]
    fn incremental_parser_pipelines_requests_in_order() {
        let mut buf =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /c"
                .to_vec();
        let Parsed::Complete { request, consumed } = feed(&buf).expect("first") else {
            panic!("first request incomplete");
        };
        assert_eq!(request.path, "/a");
        buf.drain(..consumed);
        let Parsed::Complete { request, consumed } = feed(&buf).expect("second") else {
            panic!("second request incomplete");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(request.body, b"xyz");
        buf.drain(..consumed);
        // The third request is a bare prefix: more bytes required.
        assert!(matches!(feed(&buf).expect("prefix"), Parsed::NeedMore));
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_header() {
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").expect("parse");
        assert!(req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").expect("parse");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn keep_alive_response_advertises_timeout() {
        let mut out = Vec::new();
        Response::text(200, "ok").serialize_into(&mut out, true, 30);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Keep-Alive: timeout=30\r\n"), "{text}");
        assert!(!text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn extra_headers_are_emitted_before_the_blank_line() {
        let mut resp = Response::text(200, "ok");
        resp.header("X-Request-Id", "req-7");
        let mut out = Vec::new();
        resp.write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        let head_end = text.find("\r\n\r\n").expect("head terminator");
        assert!(text[..head_end].contains("X-Request-Id: req-7"), "{text}");
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(404, "no such job");
        assert_eq!(resp.status, 404);
        let json = diffnet_observe::parse_json(std::str::from_utf8(&resp.body).expect("utf8"))
            .expect("json");
        assert_eq!(
            json.get("error").and_then(diffnet_observe::Json::as_str),
            Some("no such job")
        );
    }
}
