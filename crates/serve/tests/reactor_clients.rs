//! Hostile and slow clients against the epoll reactor: slowloris heads,
//! split writes, pipelined bursts, oversized pipelined bodies, idle
//! reaping, per-connection throttling. Each test drives raw sockets so
//! the byte-level behavior (response order, close semantics) is pinned,
//! not just the status codes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use diffnet_observe::Json;
use diffnet_serve::{Client, ServeConfig, Server, Tuning};

fn temp_config(tag: &str) -> ServeConfig {
    let dir = std::env::temp_dir().join(format!(
        "diffnet-reactor-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ServeConfig {
        data_dir: dir,
        access_log: false,
        ..ServeConfig::default()
    }
}

fn start(config: &ServeConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.serve_forever());
    (addr, handle)
}

fn shut_down(
    addr: SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    config: &ServeConfig,
) {
    let client = Client::new(addr);
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&config.data_dir);
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// A deterministic status matrix in the submit wire format.
fn sample_statuses_body(beta: usize, n: usize) -> Vec<u8> {
    let mut out = String::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for l in 0..beta {
        let mut row = vec![false; n];
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let start = (state >> 33) as usize % n;
        for k in 0..1 + (l % (n / 2)) {
            row[(start + k) % n] = true;
        }
        let cells: Vec<&str> = row.iter().map(|&b| if b { "1" } else { "0" }).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out.into_bytes()
}

#[test]
fn slowloris_head_gets_408_within_the_read_deadline() {
    let mut config = temp_config("slowloris");
    config.tuning = Tuning {
        request_read_timeout: Duration::from_millis(400),
        ..Tuning::default()
    };
    let (addr, handle) = start(&config);

    // Drip a request head one byte at a time, never finishing it.
    let mut stream = connect(addr);
    let started = Instant::now();
    for b in b"GET /v1/healthz HT" {
        stream.write_all(&[*b]).expect("write byte");
        std::thread::sleep(Duration::from_millis(30));
    }
    // Stop feeding: the partial request passes its deadline.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");
    // The 408 arrived from the deadline sweep, not from a 30s socket
    // timeout somewhere.
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "took {:?}",
        started.elapsed()
    );

    // The daemon is unaffected.
    assert!(Client::new(addr).healthz().expect("healthz"));
    shut_down(addr, handle, &config);
}

#[test]
fn request_split_across_many_writes_still_parses() {
    let config = temp_config("split");
    let (addr, handle) = start(&config);

    let raw = b"POST /v1/jobs?thread=oops HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
    let mut stream = connect(addr);
    // Several readiness events per request: the incremental parser must
    // resume exactly where it left off, including mid-header and
    // mid-body splits.
    for chunk in raw.chunks(7) {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(15));
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8");
    // The unknown-option 422 proves the full request (path, query, body)
    // was assembled correctly from the fragments.
    assert!(text.starts_with("HTTP/1.1 422"), "{text}");
    assert!(text.contains("thread"), "{text}");

    shut_down(addr, handle, &config);
}

#[test]
fn pipelined_burst_is_answered_in_order_on_one_connection() {
    let config = temp_config("pipeline");
    let (addr, handle) = start(&config);

    const N: usize = 20;
    let mut burst = Vec::new();
    for i in 0..N {
        burst.extend_from_slice(
            format!("GET /v1/healthz HTTP/1.1\r\nX-Request-Id: rid-{i}\r\n\r\n").as_bytes(),
        );
    }
    let mut stream = connect(addr);
    stream.write_all(&burst).expect("write burst");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read all");
    let text = String::from_utf8(raw).expect("utf8");

    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        N,
        "every pipelined request answered:\n{text}"
    );
    // Echoed request ids appear in submission order: responses are
    // serialized per-slot, never interleaved or reordered.
    let positions: Vec<usize> = (0..N)
        .map(|i| {
            text.find(&format!("X-Request-Id: rid-{i}\r\n"))
                .unwrap_or_else(|| panic!("rid-{i} missing:\n{text}"))
        })
        .collect();
    for w in positions.windows(2) {
        assert!(w[0] < w[1], "responses out of order");
    }

    shut_down(addr, handle, &config);
}

#[test]
fn oversized_pipelined_body_gets_413_and_the_connection_closes() {
    let mut config = temp_config("oversize");
    config.limits = diffnet_serve::Limits {
        max_head_bytes: 1024,
        max_body_bytes: 64,
    };
    let (addr, handle) = start(&config);

    // A good request, then an oversized declared body, then another good
    // request that must never be answered: framing after the 413 is
    // unrecoverable, so the server closes instead of guessing.
    let mut burst = Vec::new();
    burst.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    burst.extend_from_slice(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
    burst.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    let mut stream = connect(addr);
    stream.write_all(&burst).expect("write burst");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read all");
    let text = String::from_utf8(raw).expect("utf8");

    assert_eq!(text.matches("HTTP/1.1 200").count(), 1, "{text}");
    assert_eq!(text.matches("HTTP/1.1 413").count(), 1, "{text}");
    let p200 = text.find("HTTP/1.1 200").expect("200");
    let p413 = text.find("HTTP/1.1 413").expect("413");
    assert!(p200 < p413, "pipelined order preserved:\n{text}");
    // read_to_end returning proves the server closed after the 413; the
    // third request died with the connection.
    assert_eq!(text.matches("HTTP/1.1").count(), 2, "{text}");

    shut_down(addr, handle, &config);
}

#[test]
fn per_connection_inflight_budget_throttles_with_429() {
    let mut config = temp_config("throttle");
    config.http_workers = 1;
    config.tuning = Tuning {
        max_inflight_per_conn: 2,
        ..Tuning::default()
    };
    let (addr, handle) = start(&config);

    // Four pipelined submits arrive in one readiness batch. The first
    // two enter the worker pipeline; the rest exceed the per-connection
    // budget before any completion can land (completions apply only
    // after the parse loop), so the 429s are deterministic.
    let body = sample_statuses_body(10, 6);
    let one = format!(
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut burst = Vec::new();
    for _ in 0..4 {
        burst.extend_from_slice(one.as_bytes());
        burst.extend_from_slice(&body);
    }
    let mut stream = connect(addr);
    stream.write_all(&burst).expect("write burst");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read all");
    let text = String::from_utf8(raw).expect("utf8");

    assert_eq!(text.matches("HTTP/1.1 201").count(), 2, "{text}");
    assert_eq!(text.matches("HTTP/1.1 429").count(), 2, "{text}");
    assert!(text.contains("Retry-After: 1"), "{text}");

    shut_down(addr, handle, &config);
}

#[test]
fn idle_timeout_reaps_connections_but_not_in_flight_jobs() {
    let mut config = temp_config("idle");
    config.tuning = Tuning {
        idle_timeout: Duration::from_millis(400),
        ..Tuning::default()
    };
    let (addr, handle) = start(&config);
    let client = Client::new(addr);

    // Submit a job, then let a second connection sit idle past the
    // timeout while the job runs.
    let (status, submitted) = client
        .post_json("/v1/jobs", &sample_statuses_body(40, 8))
        .expect("submit");
    assert_eq!(status, 201, "{}", submitted.to_pretty());
    let id = submitted.get("id").and_then(Json::as_f64).expect("id") as u64;

    let mut idle = connect(addr);
    idle.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
        .expect("warm up");
    let mut first = [0u8; 4096];
    let n = idle.read(&mut first).expect("first response");
    assert!(n > 0);

    // The server advertised its idle timeout on the keep-alive response.
    let head = String::from_utf8_lossy(&first[..n]).to_string();
    assert!(head.contains("Keep-Alive: timeout="), "{head}");

    // EOF (read returns 0) proves the reactor reaped the idle
    // connection rather than leaving it to accumulate.
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).expect("EOF after idle reap");
    assert!(rest.is_empty(), "unexpected bytes: {rest:?}");

    // The job the other connection submitted is untouched by the reap.
    let done = client
        .wait_for_job(id, Duration::from_secs(30))
        .expect("job completes");
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));

    shut_down(addr, handle, &config);
}

#[test]
fn keep_alive_client_reuses_one_connection_across_requests() {
    let config = temp_config("keepalive");
    let (addr, handle) = start(&config);
    let client = Client::new(addr);

    for _ in 0..10 {
        assert!(client.healthz().expect("healthz"));
    }
    let text = client.metrics().expect("metrics");
    let opened = metric_value(&text, "diffnet_http_connections_opened");
    let reuses = metric_value(&text, "diffnet_http_keepalive_reuses");
    assert_eq!(opened, 1.0, "one pooled connection, opened once:\n{text}");
    assert!(reuses >= 10.0, "reuses {reuses}:\n{text}");

    shut_down(addr, handle, &config);
}

#[test]
fn http10_and_connection_close_are_honored() {
    let config = temp_config("close");
    let (addr, handle) = start(&config);

    // HTTP/1.0 without keep-alive: answered and closed.
    let mut stream = connect(addr);
    stream
        .write_all(b"GET /v1/healthz HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    // Explicit Connection: close on HTTP/1.1, with a pipelined request
    // behind it that must not be processed.
    let mut stream = connect(addr);
    stream
        .write_all(
            b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\nGET /v1/healthz HTTP/1.1\r\n\r\n",
        )
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf8");
    assert_eq!(text.matches("HTTP/1.1 200").count(), 1, "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    shut_down(addr, handle, &config);
}

#[test]
fn graceful_shutdown_drains_a_pending_response() {
    let config = temp_config("drain");
    let (addr, handle) = start(&config);

    // Pipeline a request *behind* the shutdown request on the same
    // connection: the drain must still flush both answers in order.
    let mut stream = connect(addr);
    stream
        .write_all(
            b"POST /v1/shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\nGET /v1/healthz HTTP/1.1\r\n\r\n",
        )
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("shutting down"), "{text}");

    handle.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&config.data_dir);
}

/// Extracts the first sample value for `name` from an exposition.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()).copied() == Some(b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}
