#![warn(missing_docs)]
//! # diffnet-datasets
//!
//! The evaluation networks of the TENDS paper (ICDE 2020):
//!
//! * [`lfr_suite`] — the fifteen LFR benchmark configurations of the
//!   paper's Table II (LFR1–5 sweep the node count, LFR6–10 the average
//!   degree, LFR11–15 the degree dispersion).
//! * [`netsci_like`] — a 379-node / 1602-directed-edge coauthorship
//!   topology model standing in for the NetSci network (Newman 2006).
//! * [`dunf_like`] — a 750-node / 2974-directed-edge microblog follow
//!   topology model standing in for the DUNF network (Wang et al., KDD
//!   2014).
//!
//! The two real datasets are not redistributable here, so the models are
//! *structural stand-ins*: seeded synthetic graphs matched to the published
//! node/edge counts and to the qualitative structure the experiments
//! depend on (community-clustered reciprocal coauthorship; heavy-tailed
//! directed follow graph). Both papers' experiments — and ours — only use
//! the topology to *simulate* diffusion, so matching structure preserves
//! the experiment semantics. Real edge lists can be dropped in through
//! [`load_edge_list`].

mod realworld;
mod suite;

pub use realworld::{dunf_like, netsci_like, DUNF_EDGES, DUNF_NODES, NETSCI_EDGES, NETSCI_NODES};
pub use suite::{lfr_suite, LfrSpec};

use diffnet_graph::io::EdgeListError;
use diffnet_graph::DiGraph;
use std::path::Path;

/// Loads a real dataset edge list (e.g. the actual NetSci or DUNF file);
/// see [`diffnet_graph::io::load_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P, n: Option<usize>) -> Result<DiGraph, EdgeListError> {
    diffnet_graph::io::load_edge_list(path, n)
}
