//! The paper's Table II: fifteen LFR benchmark configurations.

use diffnet_graph::generators::{Lfr, Orientation};
use diffnet_graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of Table II: a named LFR configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct LfrSpec {
    /// `LFR1` … `LFR15`.
    pub name: &'static str,
    /// Node count `n`.
    pub n: usize,
    /// Average node degree `K` (directed edges per node).
    pub mean_degree: f64,
    /// Degree-distribution exponent `T` (larger = less dispersion).
    pub degree_exponent: f64,
}

impl LfrSpec {
    /// Generates this configuration deterministically from `seed`.
    ///
    /// Orientation is reciprocal: each undirected LFR edge becomes a
    /// mutual influence pair. Final infection statuses carry no
    /// directional signal within a pair (the likelihood gain of `u` as a
    /// parent of `v` equals that of `v` as a parent of `u`), so a
    /// direction-identifiable benchmark would make every status-only
    /// method's directed F-score a coin flip; mutual-influence edges keep
    /// the directed evaluation well-posed and match the reciprocal
    /// coauthorship semantics of the paper's NetSci network.
    pub fn generate(&self, seed: u64) -> DiGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = Lfr::new(self.n, self.mean_degree, self.degree_exponent);
        cfg.orientation = Orientation::Reciprocal;
        cfg.generate(&mut rng)
            .expect("Table II parameters are valid by construction")
    }
}

/// The fifteen configurations of Table II.
///
/// * LFR1–5: `n ∈ {100, 150, 200, 250, 300}`, `K = 4`, `T = 2`;
/// * LFR6–10: `n = 200`, `K ∈ {2, 3, 4, 5, 6}`, `T = 2`;
/// * LFR11–15: `n = 200`, `K = 4`, `T ∈ {1, 1.5, 2, 2.5, 3}`.
pub fn lfr_suite() -> Vec<LfrSpec> {
    let mut specs = Vec::with_capacity(15);
    let names = [
        "LFR1", "LFR2", "LFR3", "LFR4", "LFR5", "LFR6", "LFR7", "LFR8", "LFR9", "LFR10", "LFR11",
        "LFR12", "LFR13", "LFR14", "LFR15",
    ];
    let mut idx = 0;
    for &n in &[100usize, 150, 200, 250, 300] {
        specs.push(LfrSpec {
            name: names[idx],
            n,
            mean_degree: 4.0,
            degree_exponent: 2.0,
        });
        idx += 1;
    }
    for &k in &[2.0f64, 3.0, 4.0, 5.0, 6.0] {
        specs.push(LfrSpec {
            name: names[idx],
            n: 200,
            mean_degree: k,
            degree_exponent: 2.0,
        });
        idx += 1;
    }
    for &t in &[1.0f64, 1.5, 2.0, 2.5, 3.0] {
        specs.push(LfrSpec {
            name: names[idx],
            n: 200,
            mean_degree: 4.0,
            degree_exponent: t,
        });
        idx += 1;
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2() {
        let suite = lfr_suite();
        assert_eq!(suite.len(), 15);
        assert_eq!(
            suite[0],
            LfrSpec {
                name: "LFR1",
                n: 100,
                mean_degree: 4.0,
                degree_exponent: 2.0
            }
        );
        assert_eq!(suite[4].n, 300);
        assert_eq!(suite[5].mean_degree, 2.0);
        assert_eq!(suite[9].mean_degree, 6.0);
        assert_eq!(suite[10].degree_exponent, 1.0);
        assert_eq!(suite[14].degree_exponent, 3.0);
        for s in &suite[5..] {
            assert_eq!(s.n, 200);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &lfr_suite()[2];
        let g1 = spec.generate(7);
        let g2 = spec.generate(7);
        assert_eq!(g1, g2);
        let g3 = spec.generate(8);
        assert_ne!(g1.edge_vec(), g3.edge_vec(), "different seeds differ");
    }

    #[test]
    fn generated_graphs_hit_size_targets() {
        for spec in lfr_suite() {
            let g = spec.generate(42);
            assert_eq!(g.node_count(), spec.n, "{}", spec.name);
            let realized = g.edge_count() as f64 / g.node_count() as f64;
            assert!(
                (realized - spec.mean_degree).abs() < 1.0,
                "{}: target K={}, realized {realized}",
                spec.name,
                spec.mean_degree
            );
        }
    }

    #[test]
    fn edges_are_reciprocal() {
        let g = lfr_suite()[0].generate(3);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "({u},{v}) lacks reciprocal");
        }
    }
}
