//! Structural stand-ins for the two real-world evaluation networks.
//!
//! Both generators hit the published node and edge counts *exactly* (so
//! baselines that receive the true edge count `m` are treated faithfully)
//! and reproduce the qualitative structure the diffusion experiments
//! depend on.

use diffnet_graph::generators::degree_sequence::powerlaw_degrees;
use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Node count of the NetSci coauthorship network (Newman 2006).
pub const NETSCI_NODES: usize = 379;
/// Directed edge count the paper reports for NetSci ("1602 coauthorships",
/// i.e. 801 reciprocal pairs).
pub const NETSCI_EDGES: usize = 1602;

/// Node count of the DUNF microblog network (Wang et al., KDD 2014).
pub const DUNF_NODES: usize = 750;
/// Directed edge count the paper reports for DUNF (follow relationships).
pub const DUNF_EDGES: usize = 2974;

/// A NetSci-like coauthorship topology: 379 nodes in small dense research
/// groups bridged by a few inter-group collaborations; every edge is
/// reciprocal (coauthorship is symmetric); exactly 1602 directed edges.
pub fn netsci_like(seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E45_5453_4349); // "NETSCI"
    let n = NETSCI_NODES;
    let target_undirected = NETSCI_EDGES / 2;

    // Research-group sizes: heavy on small groups, a few large labs.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = powerlaw_degrees(1, 1.6, 3, 14, &mut rng)[0].min(n - covered);
        sizes.push(s);
        covered += s;
    }
    // Merge a trailing fragment that is too small to form a group.
    if sizes.len() >= 2 && *sizes.last().expect("nonempty") < 3 {
        let last = sizes.pop().expect("len checked");
        *sizes.last_mut().expect("len >= 1") += last;
    }

    let mut membership = Vec::with_capacity(n);
    for (g, &s) in sizes.iter().enumerate() {
        membership.extend(std::iter::repeat_n(g, s));
    }

    // Dense intra-group coauthorship.
    let mut undirected: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut start = 0usize;
    for &s in &sizes {
        for a in start..start + s {
            for b in (a + 1)..start + s {
                if rng.gen_bool(0.72) {
                    undirected.insert((a as NodeId, b as NodeId));
                }
            }
        }
        start += s;
    }

    // Sparse inter-group bridges (collaborations across labs).
    let bridges = n / 6;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < bridges && guard < 100 * bridges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        guard += 1;
        if a == b || membership[a] == membership[b] {
            continue;
        }
        let key = if a < b {
            (a as NodeId, b as NodeId)
        } else {
            (b as NodeId, a as NodeId)
        };
        if undirected.insert(key) {
            added += 1;
        }
    }

    adjust_undirected_to(&mut undirected, target_undirected, n, &mut rng);

    let mut b = GraphBuilder::new(n);
    for &(u, v) in &undirected {
        b.add_reciprocal(u, v);
    }
    b.build()
}

/// A DUNF-like microblog follow topology: 750 nodes grouped into interest
/// communities (real follow graphs are strongly community-clustered),
/// heavy-tailed in-degree via within-community preferential attachment
/// (local celebrities), a sparse layer of cross-community follows, and
/// partial reciprocity (follow-back behaviour); exactly 2974 directed
/// edges.
pub fn dunf_like(seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4455_4E46); // "DUNF"
    let n = DUNF_NODES;
    let target = DUNF_EDGES;

    // Interest communities of 20–60 users.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = powerlaw_degrees(1, 1.5, 20, 60, &mut rng)[0].min(n - covered);
        sizes.push(s);
        covered += s;
    }
    if sizes.len() >= 2 && *sizes.last().expect("nonempty") < 20 {
        let last = sizes.pop().expect("len checked");
        *sizes.last_mut().expect("len >= 1") += last;
    }
    let mut membership = Vec::with_capacity(n);
    let mut community_members: Vec<Vec<NodeId>> = Vec::with_capacity(sizes.len());
    let mut next = 0u32;
    for (c, &s) in sizes.iter().enumerate() {
        let members: Vec<NodeId> = (next..next + s as u32).collect();
        membership.extend(std::iter::repeat_n(c, s));
        community_members.push(members);
        next += s as u32;
    }

    let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut in_deg = vec![0usize; n];
    // Out-degrees: most users follow a few accounts, some follow many.
    let out_deg = powerlaw_degrees(n, 2.0, 1, 25, &mut rng);

    for u in 0..n as NodeId {
        let comm = &community_members[membership[u as usize]];
        for _ in 0..out_deg[u as usize] {
            let cross = rng.gen_bool(0.10);
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 50 {
                    break;
                }
                let v = if cross {
                    rng.gen_range(0..n) as NodeId
                } else {
                    // Preferential within the community: of two uniform
                    // draws keep the one with more followers, so local
                    // celebrities accumulate followers.
                    let cand = comm[rng.gen_range(0..comm.len())];
                    let rival = comm[rng.gen_range(0..comm.len())];
                    if in_deg[rival as usize] > in_deg[cand as usize] {
                        rival
                    } else {
                        cand
                    }
                };
                if v == u || edges.contains(&(u, v)) {
                    continue;
                }
                edges.insert((u, v));
                in_deg[v as usize] += 1;
                // Follow-back with moderate probability.
                if rng.gen_bool(0.25) && !edges.contains(&(v, u)) {
                    edges.insert((v, u));
                    in_deg[u as usize] += 1;
                }
                break;
            }
        }
    }

    // Trim or top up to the exact published edge count.
    let mut edge_vec: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
    while edge_vec.len() > target {
        let i = rng.gen_range(0..edge_vec.len());
        let e = edge_vec.swap_remove(i);
        edges.remove(&e);
    }
    let mut guard = 0usize;
    while edges.len() < target && guard < 200 * target {
        let u = rng.gen_range(0..n) as NodeId;
        let comm = &community_members[membership[u as usize]];
        let v = comm[rng.gen_range(0..comm.len())];
        guard += 1;
        if u != v {
            edges.insert((u, v));
        }
    }

    let mut b = GraphBuilder::new(n);
    for &(u, v) in &edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Adds random intra-pool pairs or removes random pairs until the
/// undirected edge set has exactly `target` members.
fn adjust_undirected_to(
    undirected: &mut BTreeSet<(NodeId, NodeId)>,
    target: usize,
    n: usize,
    rng: &mut StdRng,
) {
    let mut guard = 0usize;
    while undirected.len() < target && guard < 200 * target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        guard += 1;
        if a == b {
            continue;
        }
        let key = if a < b {
            (a as NodeId, b as NodeId)
        } else {
            (b as NodeId, a as NodeId)
        };
        undirected.insert(key);
    }
    while undirected.len() > target {
        // Remove an arbitrary element (deterministic given the set's
        // iteration order is fixed for a fixed insertion history).
        let key = *undirected.iter().next().expect("nonempty");
        undirected.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_graph::stats;

    #[test]
    fn netsci_exact_counts() {
        let g = netsci_like(1);
        assert_eq!(g.node_count(), NETSCI_NODES);
        assert_eq!(g.edge_count(), NETSCI_EDGES);
    }

    #[test]
    fn netsci_is_reciprocal_and_clustered() {
        let g = netsci_like(2);
        assert!((stats::reciprocity(&g) - 1.0).abs() < 1e-12);
        assert!(
            stats::global_clustering(&g) > 0.3,
            "coauthorship networks are highly clustered, got {}",
            stats::global_clustering(&g)
        );
    }

    #[test]
    fn netsci_deterministic_per_seed() {
        assert_eq!(netsci_like(5), netsci_like(5));
        assert_ne!(netsci_like(5).edge_vec(), netsci_like(6).edge_vec());
    }

    #[test]
    fn dunf_exact_counts() {
        let g = dunf_like(1);
        assert_eq!(g.node_count(), DUNF_NODES);
        assert_eq!(g.edge_count(), DUNF_EDGES);
    }

    #[test]
    fn dunf_has_heavy_tailed_in_degree() {
        let g = dunf_like(3);
        let max_in = g.nodes().map(|u| g.in_degree(u)).max().expect("nonempty");
        let mean_in = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_in as f64 > 2.5 * mean_in,
            "expected local celebrities: max in-degree {max_in}, mean {mean_in}"
        );
    }

    #[test]
    fn dunf_partial_reciprocity() {
        let g = dunf_like(4);
        let r = stats::reciprocity(&g);
        assert!(r > 0.05 && r < 0.9, "follow-back reciprocity {r}");
    }

    #[test]
    fn dunf_deterministic_per_seed() {
        assert_eq!(dunf_like(9), dunf_like(9));
    }
}
