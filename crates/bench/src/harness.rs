//! Shared experiment machinery for the figure reproductions.

use diffnet_baselines::{Lift, MulTree, NetRate, NetRateConfig};
use diffnet_graph::DiGraph;
use diffnet_metrics::{timed, EdgeSetComparison};
use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade, ObservationSet};
use diffnet_tends::{Tends, TendsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worker threads for TENDS runs in the benches and figure binaries, from
/// the `DIFFNET_THREADS` environment variable.
///
/// Defaults to 1 so timing comparisons against the single-threaded
/// baselines stay honest; `DIFFNET_THREADS=0` uses all cores. A value
/// that does not parse as an unsigned integer falls back to 1 with a
/// one-line warning on stderr, so a typo like `DIFFNET_THREADS=eight`
/// never silently serialises a run meant to be parallel.
pub fn threads_from_env() -> usize {
    match parse_threads(std::env::var("DIFFNET_THREADS").ok().as_deref()) {
        Ok(threads) => threads,
        Err(raw) => {
            eprintln!("warning: DIFFNET_THREADS={raw:?} is not a thread count; using 1");
            1
        }
    }
}

/// Parses a `DIFFNET_THREADS` value: `None` (unset) means 1, a decimal
/// integer is taken as-is (0 = all cores, resolved downstream), and
/// anything else is returned as `Err` so the caller can warn.
pub fn parse_threads(raw: Option<&str>) -> Result<usize, &str> {
    match raw {
        None => Ok(1),
        Some(v) => v.trim().parse().map_err(|_| v),
    }
}

/// The default TENDS configuration for benches, with the thread count
/// taken from `DIFFNET_THREADS`. Figure code overrides individual fields
/// with `..tends_config()` instead of `..Default::default()` so every run
/// honours the knob.
pub fn tends_config() -> TendsConfig {
    TendsConfig {
        threads: threads_from_env(),
        ..Default::default()
    }
}

/// The paper's default diffusion setting (§V): `α = 0.15`, `β = 150`,
/// `μ = 0.3`, `σ = 0.05`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Setting {
    /// Initial infection ratio `α`.
    pub alpha: f64,
    /// Number of diffusion processes `β`.
    pub beta: usize,
    /// Mean propagation probability `μ`.
    pub mu: f64,
    /// Std-dev of propagation probabilities.
    pub sigma: f64,
    /// RNG seed (edge probabilities + simulations).
    pub seed: u64,
}

impl Default for Setting {
    fn default() -> Self {
        Setting {
            alpha: 0.15,
            beta: 150,
            mu: 0.3,
            sigma: 0.05,
            seed: 2020,
        }
    }
}

/// Experiment scale: the paper's exact parameters, or a reduced variant
/// for smoke runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    full: bool,
}

impl Scale {
    /// Paper-scale parameters.
    pub fn full() -> Self {
        Scale { full: true }
    }

    /// Reduced parameters (smaller `β`, fewer optimizer iterations) for
    /// quick end-to-end runs.
    pub fn quick() -> Self {
        Scale { full: false }
    }

    /// Reads the scale for a binary: full unless `DIFFNET_QUICK=1`.
    pub fn from_env_for_bin() -> Self {
        if std::env::var("DIFFNET_QUICK").is_ok_and(|v| v == "1") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }

    /// Reads the scale for the `figures` bench: quick unless
    /// `DIFFNET_FULL=1`.
    pub fn from_env_for_bench() -> Self {
        if std::env::var("DIFFNET_FULL").is_ok_and(|v| v == "1") {
            Scale::full()
        } else {
            Scale::quick()
        }
    }

    /// Whether this is the paper-scale configuration.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// `β` to use given the paper's value.
    pub fn beta(&self, paper: usize) -> usize {
        if self.full {
            paper
        } else {
            (paper / 3).max(30)
        }
    }

    /// NetRate gradient iterations.
    pub fn netrate_iters(&self) -> usize {
        if self.full {
            200
        } else {
            40
        }
    }
}

/// Simulates the observation set for `truth` under `setting`.
pub fn observe(truth: &DiGraph, setting: &Setting) -> ObservationSet {
    let mut rng = StdRng::seed_from_u64(setting.seed);
    let probs = EdgeProbs::gaussian(truth, setting.mu, setting.sigma, &mut rng);
    IndependentCascade::new(truth, &probs).observe(
        IcConfig {
            initial_ratio: setting.alpha,
            num_processes: setting.beta,
        },
        &mut rng,
    )
}

/// Accuracy and wall-clock outcome of one algorithm on one workload.
#[derive(Clone, Copy, Debug)]
pub struct Outcome {
    /// Algorithm name.
    pub name: &'static str,
    /// F-score against the ground truth.
    pub f_score: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Inference wall-clock seconds (excludes simulation).
    pub seconds: f64,
}

fn outcome(name: &'static str, truth: &DiGraph, inferred: &DiGraph, seconds: f64) -> Outcome {
    let cmp = EdgeSetComparison::against_truth(truth, inferred);
    Outcome {
        name,
        f_score: cmp.f_score(),
        precision: cmp.precision(),
        recall: cmp.recall(),
        seconds,
    }
}

/// The paper's four-way comparison on one workload: TENDS (statuses only),
/// NetRate (cascades, best-threshold F-score), MulTree (cascades + true
/// `m`), LIFT (sources + statuses + true `m`).
pub fn evaluate_all(truth: &DiGraph, obs: &ObservationSet, scale: Scale) -> Vec<Outcome> {
    let m = truth.edge_count();
    let mut results = Vec::with_capacity(4);

    let (tends_res, secs) = timed(|| {
        Tends::with_config(tends_config())
            .reconstruct(&obs.statuses)
            .expect("default search fits")
    });
    results.push(outcome("TENDS", truth, &tends_res.graph, secs));

    let netrate = NetRate::with_config(NetRateConfig {
        max_iters: scale.netrate_iters(),
        ..Default::default()
    });
    let (weighted, secs) = timed(|| netrate.infer(obs));
    let (best_graph, _) = weighted.best_fscore_graph(truth);
    results.push(outcome("NetRate", truth, &best_graph, secs));

    let (multree_graph, secs) = timed(|| MulTree::new().infer(obs, m));
    results.push(outcome("MulTree", truth, &multree_graph, secs));

    let (lift_graph, secs) = timed(|| Lift::new().infer(obs, m));
    results.push(outcome("LIFT", truth, &lift_graph, secs));

    results
}

/// Standard series names, in the order [`evaluate_all`] returns them.
pub const SERIES: [&str; 4] = ["TENDS", "NetRate", "MulTree", "LIFT"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_threads(None), Ok(1));
        assert_eq!(parse_threads(Some("0")), Ok(0));
        assert_eq!(parse_threads(Some("8")), Ok(8));
        assert_eq!(parse_threads(Some(" 4 ")), Ok(4));
        assert_eq!(parse_threads(Some("eight")), Err("eight"));
        assert_eq!(parse_threads(Some("-2")), Err("-2"));
        assert_eq!(parse_threads(Some("")), Err(""));
    }

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::full().beta(150), 150);
        assert_eq!(Scale::quick().beta(150), 50);
        assert_eq!(Scale::quick().beta(60), 30);
        assert!(Scale::full().netrate_iters() > Scale::quick().netrate_iters());
    }

    #[test]
    fn observe_is_deterministic() {
        let truth = DiGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let s = Setting {
            beta: 20,
            ..Default::default()
        };
        let a = observe(&truth, &s);
        let b = observe(&truth, &s);
        assert_eq!(a.statuses, b.statuses);
    }

    #[test]
    fn evaluate_all_runs_every_algorithm() {
        let truth = diffnet_datasets::lfr_suite()[0].generate(5);
        let setting = Setting {
            beta: 40,
            ..Default::default()
        };
        let obs = observe(&truth, &setting);
        let outcomes = evaluate_all(&truth, &obs, Scale::quick());
        assert_eq!(outcomes.len(), 4);
        for (o, name) in outcomes.iter().zip(SERIES) {
            assert_eq!(o.name, name);
            assert!((0.0..=1.0).contains(&o.f_score), "{name}: f {}", o.f_score);
            assert!(o.seconds >= 0.0);
        }
    }
}
