//! Runs the `scoring_value` ablation (see DESIGN.md). Set `DIFFNET_QUICK=1` for a
//! reduced smoke run, `DIFFNET_MARKDOWN=1` for markdown output.

use diffnet_bench::figures;
use diffnet_bench::harness::Scale;

fn main() {
    figures::print_tables(&figures::scoring_value(Scale::from_env_for_bin()));
}
