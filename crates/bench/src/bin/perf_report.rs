//! Performance report for the TENDS hot paths, written to
//! `BENCH_micro.json` at the repository root.
//!
//! Measures, at two LFR sizes:
//!
//! * the IMI correlation matrix, single-threaded vs `DIFFNET_THREADS`-style
//!   multi-threaded (8 workers);
//! * one full TENDS reconstruction, 1 vs 8 threads;
//! * the `N_ijk` counting kernel: the recursive bitset kernel vs the
//!   incremental [`CountsWorkspace`] refinement;
//! * the full greedy parent search: workspace path vs the from-scratch
//!   reference path, both single-threaded;
//! * one instrumented reconstruction (`tends_run_report`): per-phase wall
//!   times and the full observability counter set for the small workload.
//!
//! Multi-thread speedups are only meaningful on multi-core hardware; the
//! report records `hardware_threads` so the numbers are interpretable.
//! `DIFFNET_QUICK=1` shrinks the workloads for smoke runs.

use diffnet_bench::harness::{observe, Setting};
use diffnet_datasets::LfrSpec;
use diffnet_metrics::timed;
use diffnet_observe::{Json, Recorder, RunReport};
use diffnet_simulate::{CountsWorkspace, NodeColumns, StatusMatrix};
use diffnet_tends::search::{find_parents_reference, SearchParams};
use diffnet_tends::{CorrelationMatrix, CorrelationMeasure, Tends, TendsConfig};

/// Median wall-clock seconds of `reps` runs of `f`.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let (out, secs) = timed(&mut f);
            std::hint::black_box(out);
            secs
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    times[times.len() / 2]
}

fn status_workload(n: usize, beta: usize, seed: u64) -> StatusMatrix {
    let spec = LfrSpec {
        name: "perf",
        n,
        mean_degree: 4.0,
        degree_exponent: 2.0,
    };
    let truth = spec.generate(2020);
    let setting = Setting {
        beta,
        seed,
        ..Default::default()
    };
    observe(&truth, &setting).statuses
}

struct KernelRow {
    n: usize,
    recursive_s: f64,
    workspace_s: f64,
}

/// Times the two counting kernels over every node as child, with a cached
/// 3-parent base and a 2-node extension — the shape of one greedy round.
fn kernel_row(n: usize, cols: &NodeColumns, reps: usize) -> KernelRow {
    let base: Vec<u32> = [0u32, 2, 4]
        .into_iter()
        .filter(|&p| (p as usize) < n)
        .collect();
    let extra: Vec<u32> = [1u32, 3]
        .into_iter()
        .filter(|&p| (p as usize) < n)
        .collect();
    let mut union: Vec<u32> = base.iter().chain(&extra).copied().collect();
    union.sort_unstable();

    let children: Vec<u32> = (5..n as u32).collect();
    let recursive_s = median_secs(reps, || {
        let mut acc = 0u64;
        for &child in &children {
            acc += cols.combo_counts(child, &union)[0][0];
        }
        acc
    });
    let mut ws = CountsWorkspace::new();
    ws.set_base(cols, &base);
    let workspace_s = median_secs(reps, || {
        let mut acc = 0u64;
        for &child in &children {
            acc += ws.refined_counts(cols, child, &extra)[0][0];
        }
        acc
    });
    KernelRow {
        n,
        recursive_s,
        workspace_s,
    }
}

fn main() {
    let quick = std::env::var("DIFFNET_QUICK").is_ok_and(|v| v == "1");
    let (n_small, n_large, reps) = if quick { (100, 200, 3) } else { (300, 1000, 5) };
    let beta = 150;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!("perf_report: generating workloads (n={n_small}, n={n_large}, beta={beta})");
    let small = status_workload(n_small, beta, 11);
    let large = status_workload(n_large, beta, 12);
    let small_cols = small.columns();
    let large_cols = large.columns();

    // IMI matrix at the large size, 1 vs 8 threads.
    eprintln!("perf_report: IMI matrix (n={n_large})");
    let imi_1 = median_secs(reps, || {
        CorrelationMatrix::compute_parallel(&large_cols, CorrelationMeasure::Imi, 1)
    });
    let imi_8 = median_secs(reps, || {
        CorrelationMatrix::compute_parallel(&large_cols, CorrelationMeasure::Imi, 8)
    });

    // Full reconstruction at the small size, 1 vs 8 threads.
    eprintln!("perf_report: reconstruction (n={n_small})");
    let rec_1 = median_secs(reps.min(3), || {
        Tends::with_config(TendsConfig {
            threads: 1,
            ..Default::default()
        })
        .reconstruct(&small)
    });
    let rec_8 = median_secs(reps.min(3), || {
        Tends::with_config(TendsConfig {
            threads: 8,
            ..Default::default()
        })
        .reconstruct(&small)
    });

    // Counting kernel at both sizes.
    eprintln!("perf_report: counting kernels");
    let kernels = [
        kernel_row(n_small, &small_cols, reps),
        kernel_row(n_large, &large_cols, reps),
    ];

    // Full greedy parent search (workspace vs reference), single-threaded,
    // over every node of the small workload with its IMI candidates.
    eprintln!("perf_report: greedy search (n={n_small})");
    let corr = CorrelationMatrix::compute(&small_cols, CorrelationMeasure::Imi);
    let tau = diffnet_tends::pinned_two_means(&corr.upper_triangle()).tau;
    let params = SearchParams::default();
    let candidates: Vec<Vec<u32>> = (0..n_small as u32)
        .map(|i| diffnet_tends::search::candidate_parents(&corr, i, tau, params.max_candidates))
        .collect();
    let greedy_ref = median_secs(reps.min(3), || {
        let mut acc = 0usize;
        for (i, cands) in candidates.iter().enumerate() {
            acc += find_parents_reference(&small_cols, i as u32, cands, &params)
                .stats
                .evaluations;
        }
        acc
    });
    let greedy_ws = median_secs(reps.min(3), || {
        let mut ws = CountsWorkspace::new();
        let mut acc = 0usize;
        for (i, cands) in candidates.iter().enumerate() {
            acc += diffnet_tends::search::find_parents_with(
                &mut ws,
                &small_cols,
                i as u32,
                cands,
                &params,
            )
            .stats
            .evaluations;
        }
        acc
    });

    // One instrumented reconstruction for the per-phase breakdown, so the
    // report shows where the wall-clock goes inside a single run.
    eprintln!("perf_report: instrumented phase breakdown (n={n_small})");
    let recorder = Recorder::new();
    let _ = Tends::with_config(TendsConfig {
        threads: 1,
        ..Default::default()
    })
    .reconstruct_observed(&small, &recorder);
    let run_report = RunReport::new("tends", recorder.snapshot(), 1);

    let mut json = Json::object();
    json.push("generated_by", "perf_report");
    json.push("quick", quick);
    json.push("hardware_threads", hardware_threads as u64);
    json.push("beta", beta as u64);

    let mut imi = Json::object();
    imi.push("n", n_large as u64);
    imi.push("threads_1_s", imi_1);
    imi.push("threads_8_s", imi_8);
    imi.push("speedup", imi_1 / imi_8);
    json.push("imi_matrix", imi);

    let mut rec = Json::object();
    rec.push("n", n_small as u64);
    rec.push("threads_1_s", rec_1);
    rec.push("threads_8_s", rec_8);
    rec.push("speedup", rec_1 / rec_8);
    json.push("reconstruction", rec);

    let rows: Vec<Json> = kernels
        .iter()
        .map(|k| {
            let mut row = Json::object();
            row.push("n", k.n as u64);
            row.push("recursive_s", k.recursive_s);
            row.push("workspace_s", k.workspace_s);
            row.push("speedup", k.recursive_s / k.workspace_s);
            row
        })
        .collect();
    json.push("counting_kernel", rows);

    let mut greedy = Json::object();
    greedy.push("n", n_small as u64);
    greedy.push("reference_s", greedy_ref);
    greedy.push("workspace_s", greedy_ws);
    greedy.push("speedup", greedy_ref / greedy_ws);
    json.push("greedy_search", greedy);

    json.push("tends_run_report", run_report.to_json());

    let text = json.to_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    std::fs::write(path, &text).expect("write BENCH_micro.json");
    println!("{text}");
    eprintln!("perf_report: wrote {path}");
}
