//! Performance report for the TENDS hot paths, written to
//! `BENCH_micro.json` at the repository root.
//!
//! Measures, at two LFR sizes:
//!
//! * the raw pairwise counting kernel: cache-blocked tiles
//!   ([`NodeColumns::pair_counts_block`]) vs the per-pair column walk,
//!   plus the same tiled sweep pinned to the runtime-resolved SIMD tier
//!   and to the portable scalar fallback (`simd_s` / `scalar_s`). The
//!   headline rows use a deep workload (β=8192, 128 words per column)
//!   that times the kernels at streaming depth; the nested
//!   `inference_shape` row keeps the β=150 shape the pipeline sees.
//!   Detected CPU features are recorded in the header;
//! * the IMI correlation matrix, single-threaded vs 8 workers;
//! * one full TENDS reconstruction, 1 vs 8 threads;
//! * the `N_ijk` counting kernel: the recursive bitset kernel vs the
//!   incremental [`CountsWorkspace`] refinement;
//! * the full greedy parent search: cached workspace path vs the
//!   from-scratch reference path, both single-threaded, with the score
//!   cache's hit/miss counts;
//! * one instrumented reconstruction (`tends_run_report`): per-phase wall
//!   times and the full observability counter set for the small workload;
//! * checkpoint overhead: the robust reconstruction with per-node
//!   progress persisted atomically every 8 nodes vs the same path with
//!   checkpointing disabled;
//! * incremental append: a deep archived base history (β=153600) plus a
//!   +10% cascade batch, re-estimated warm from the checkpoint's
//!   sufficient statistics vs a full checkpointed re-run of the combined
//!   matrix, with the dirty/reused node split from the run counters;
//! * the serving layer over loopback: `/v1/healthz` round-trips per
//!   second and the end-to-end submit→done latency of an HTTP-submitted
//!   job (upload, queue, reconstruction, output writes, status poll),
//!   each with client-side p50/p95/p99 from the same log₂ duration
//!   buckets the daemon exposes on `/v1/metrics`.
//!
//! Multi-thread speedups are only meaningful on multi-core hardware; on a
//! single-CPU machine the thread-scaling rows are marked
//! `"skipped_single_cpu"` instead of reporting ~1.0x noise as a speedup.
//! The report records `hardware_threads` so the numbers are interpretable.
//! `--quick` (or `DIFFNET_QUICK=1`) shrinks the workloads for smoke runs.

use diffnet_bench::harness::{observe, Setting};
use diffnet_datasets::LfrSpec;
use diffnet_metrics::timed;
use diffnet_observe::{DurationHistogram, Json, Recorder, RunReport};
use diffnet_simulate::{CountsWorkspace, Kernels, NodeColumns, SimdMode, StatusMatrix};
use diffnet_tends::search::{find_parents_reference, SearchParams};
use diffnet_tends::{
    CorrelationMatrix, CorrelationMeasure, RobustOptions, ScoreCacheStats, SearchScratch, Tends,
    TendsConfig,
};

/// Median wall-clock seconds of `reps` runs of `f`.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let (out, secs) = timed(&mut f);
            std::hint::black_box(out);
            secs
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    times[times.len() / 2]
}

fn status_workload(n: usize, beta: usize, seed: u64) -> StatusMatrix {
    let spec = LfrSpec {
        name: "perf",
        n,
        mean_degree: 4.0,
        degree_exponent: 2.0,
    };
    let truth = spec.generate(2020);
    let setting = Setting {
        beta,
        seed,
        ..Default::default()
    };
    observe(&truth, &setting).statuses
}

/// Splits a status matrix into its first `at` rows and the rest.
fn split_rows(m: &StatusMatrix, at: usize) -> (StatusMatrix, StatusMatrix) {
    let n = m.num_nodes();
    let mut base = StatusMatrix::new(at, n);
    let mut rest = StatusMatrix::new(m.num_processes() - at, n);
    for l in 0..m.num_processes() {
        for i in 0..n as u32 {
            if m.get(l, i) {
                if l < at {
                    base.set(l, i);
                } else {
                    rest.set(l - at, i);
                }
            }
        }
    }
    (base, rest)
}

/// A large synthetic status matrix for the streamed-IMI row: xorshift
/// noise at ~12.5% infection. LFR generation at n=100,000 would dominate
/// the bench wall-clock; the fold's cost is data-independent, so noise
/// times the same work as a real diffusion workload.
fn synthetic_statuses(beta: usize, n: usize, seed: u64) -> StatusMatrix {
    let mut m = StatusMatrix::new(beta, n);
    let mut state = seed | 1;
    for l in 0..beta {
        for i in 0..n as u32 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state & 7 == 0 {
                m.set(l, i);
            }
        }
    }
    m
}

struct KernelRow {
    n: usize,
    recursive_s: f64,
    workspace_s: f64,
}

/// Times the two counting kernels over every node as child, with a cached
/// 3-parent base and a 2-node extension — the shape of one greedy round.
fn kernel_row(n: usize, cols: &NodeColumns, reps: usize) -> KernelRow {
    let base: Vec<u32> = [0u32, 2, 4]
        .into_iter()
        .filter(|&p| (p as usize) < n)
        .collect();
    let extra: Vec<u32> = [1u32, 3]
        .into_iter()
        .filter(|&p| (p as usize) < n)
        .collect();
    let mut union: Vec<u32> = base.iter().chain(&extra).copied().collect();
    union.sort_unstable();

    let children: Vec<u32> = (5..n as u32).collect();
    let recursive_s = median_secs(reps, || {
        let mut acc = 0u64;
        for &child in &children {
            acc += cols.combo_counts(child, &union).expect("small combo")[0][0];
        }
        acc
    });
    let mut ws = CountsWorkspace::new();
    ws.set_base(cols, &base).expect("small base");
    let workspace_s = median_secs(reps, || {
        let mut acc = 0u64;
        for &child in &children {
            acc += ws.refined_counts(cols, child, &extra).expect("small combo")[0][0];
        }
        acc
    });
    KernelRow {
        n,
        recursive_s,
        workspace_s,
    }
}

/// Sum of `n11` over the whole pair triangle through the per-pair walk.
fn per_pair_sweep(cols: &NodeColumns) -> u64 {
    let n = cols.num_nodes();
    let mut acc = 0u64;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            acc += cols.pair_counts(i, j).n11;
        }
    }
    acc
}

/// Sum of `n11` over the whole pair triangle through the tiled kernel.
fn tiled_sweep(cols: &NodeColumns) -> u64 {
    let n = cols.num_nodes();
    let ones = cols.ones_counts();
    let tile = cols.pair_tile_size();
    let num_tiles = n.div_ceil(tile);
    let mut acc = 0u64;
    for bi in 0..num_tiles {
        let rows = bi * tile..((bi + 1) * tile).min(n);
        for bj in bi..num_tiles {
            let jcols = bj * tile..((bj + 1) * tile).min(n);
            cols.pair_counts_block(rows.clone(), jcols, &ones, &mut |_, _, pc| {
                acc += pc.n11;
            });
        }
    }
    acc
}

/// Sum of `n11` over the pair triangle through an explicit kernel table,
/// walking the same tiles as [`tiled_sweep`] but bypassing the
/// process-wide dispatcher — times one SIMD tier in isolation.
fn forced_sweep(cols: &NodeColumns, k: &Kernels) -> u64 {
    let n = cols.num_nodes();
    let tile = cols.pair_tile_size();
    let num_tiles = n.div_ceil(tile);
    let mut acc = 0u64;
    for bi in 0..num_tiles {
        for bj in bi..num_tiles {
            let jcols = bj * tile..((bj + 1) * tile).min(n);
            for i in bi * tile..((bi + 1) * tile).min(n) {
                let ci = cols.col(i as u32);
                for j in jcols.start.max(i + 1)..jcols.end {
                    acc += k.and_popcount(ci, cols.col(j as u32));
                }
            }
        }
    }
    acc
}

/// A thread-scaling row: on a single-CPU box the multi-thread timing is
/// noise, so the row carries a status instead of a fake "speedup".
fn scaling_row(n: usize, t1: f64, t8: Option<f64>) -> Json {
    let mut row = Json::object();
    row.push("n", n as u64);
    row.push("threads_1_s", t1);
    match t8 {
        Some(t8) => {
            row.push("status", "ok");
            row.push("threads_8_s", t8);
            row.push("speedup", t1 / t8);
        }
        None => {
            row.push("status", "skipped_single_cpu");
        }
    }
    row
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("DIFFNET_QUICK").is_ok_and(|v| v == "1");
    let (n_small, n_large, reps) = if quick { (100, 200, 3) } else { (300, 1000, 5) };
    let beta = 150;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let multi_core = hardware_threads > 1;

    // Kernel-throughput workload: long columns (many AVX2 lane groups per
    // node) so the pair-kernel timings measure word-stream throughput. At
    // β=150 a column is a single lane group and per-pair call overhead
    // dominates; β=8192 streams 128 words per column pair.
    let (n_deep, beta_deep) = if quick { (120, 2048) } else { (400, 8192) };

    eprintln!("perf_report: generating workloads (n={n_small}, n={n_large}, beta={beta})");
    let small = status_workload(n_small, beta, 11);
    let large = status_workload(n_large, beta, 12);
    let deep = status_workload(n_deep, beta_deep, 13);
    let small_cols = small.columns();
    let large_cols = large.columns();
    let deep_cols = deep.columns();

    // Raw pairwise counting: tiled kernel vs per-pair walk, single-thread,
    // no MI float work — the kernel-level win the tiling is for. Timed at
    // both shapes: the β=150 inference shape and the deep kernel shape.
    eprintln!("perf_report: pair kernel (n={n_large} β={beta}, n={n_deep} β={beta_deep})");
    for cols in [&large_cols, &deep_cols] {
        assert_eq!(
            per_pair_sweep(cols),
            tiled_sweep(cols),
            "kernels must agree before being timed"
        );
    }
    let pair_ref = median_secs(reps, || per_pair_sweep(&large_cols));
    let pair_tiled = median_secs(reps, || tiled_sweep(&large_cols));
    // The same sweep with explicit kernel tables: the resolved tier vs the
    // portable scalar fallback, so the report separates what SIMD buys
    // from what the scalar multi-accumulator loop already buys.
    let auto_k = diffnet_simulate::simd::kernels();
    let scalar_k = Kernels::for_mode(SimdMode::Scalar);
    for cols in [&large_cols, &deep_cols] {
        assert_eq!(
            forced_sweep(cols, auto_k),
            forced_sweep(cols, &scalar_k),
            "dispatch tiers must agree before being timed"
        );
    }
    let deep_ref = median_secs(reps, || per_pair_sweep(&deep_cols));
    let deep_tiled = median_secs(reps, || tiled_sweep(&deep_cols));
    let deep_simd = median_secs(reps, || forced_sweep(&deep_cols, auto_k));
    let deep_scalar = median_secs(reps, || forced_sweep(&deep_cols, &scalar_k));

    // IMI matrix at the large size, 1 vs 8 threads.
    eprintln!("perf_report: IMI matrix (n={n_large})");
    let imi_1 = median_secs(reps, || {
        CorrelationMatrix::compute_parallel(&large_cols, CorrelationMeasure::Imi, 1)
    });
    let imi_8 = multi_core.then(|| {
        median_secs(reps, || {
            CorrelationMatrix::compute_parallel(&large_cols, CorrelationMeasure::Imi, 8)
        })
    });

    // Full reconstruction at the small size, 1 vs 8 threads.
    eprintln!("perf_report: reconstruction (n={n_small})");
    let rec_1 = median_secs(reps.min(3), || {
        Tends::with_config(TendsConfig {
            threads: 1,
            ..Default::default()
        })
        .reconstruct(&small)
        .expect("default search fits")
    });
    let rec_8 = multi_core.then(|| {
        median_secs(reps.min(3), || {
            Tends::with_config(TendsConfig {
                threads: 8,
                ..Default::default()
            })
            .reconstruct(&small)
            .expect("default search fits")
        })
    });

    // Counting kernel at both sizes.
    eprintln!("perf_report: counting kernels");
    let kernels = [
        kernel_row(n_small, &small_cols, reps),
        kernel_row(n_large, &large_cols, reps),
    ];

    // Full greedy parent search (cached workspace vs reference),
    // single-threaded, over every node of the small workload with its IMI
    // candidates.
    eprintln!("perf_report: greedy search (n={n_small})");
    let corr = CorrelationMatrix::compute(&small_cols, CorrelationMeasure::Imi);
    let tau = diffnet_tends::pinned_two_means(&corr.upper_triangle()).tau;
    let params = SearchParams::default();
    let candidates: Vec<Vec<u32>> = (0..n_small as u32)
        .map(|i| diffnet_tends::search::candidate_parents(&corr, i, tau, params.max_candidates))
        .collect();
    let greedy_ref = median_secs(reps.min(3), || {
        let mut acc = 0usize;
        for (i, cands) in candidates.iter().enumerate() {
            acc += find_parents_reference(&small_cols, i as u32, cands, &params)
                .expect("default search fits")
                .stats
                .evaluations;
        }
        acc
    });
    let mut cache_totals = ScoreCacheStats::default();
    let greedy_ws = median_secs(reps.min(3), || {
        let mut scratch = SearchScratch::new();
        let mut acc = 0usize;
        cache_totals = ScoreCacheStats::default();
        for (i, cands) in candidates.iter().enumerate() {
            let res = diffnet_tends::search::find_parents_with(
                &mut scratch,
                &small_cols,
                i as u32,
                cands,
                &params,
            )
            .expect("default search fits");
            cache_totals.merge(&res.cache_stats);
            acc += res.stats.evaluations;
        }
        acc
    });

    // Checkpoint overhead: the same robust reconstruction with per-node
    // progress persisted atomically at the default interval vs without.
    eprintln!("perf_report: checkpoint overhead (n={n_small})");
    let ck_path = std::env::temp_dir().join("diffnet_perf_checkpoint.json");
    // Both sides of this ratio finish in ~10ms, so the 3-rep cap used for
    // the expensive rows leaves the median dominated by scheduler noise;
    // more reps cost nothing here and keep overhead_ratio stable.
    let ck_reps = reps.max(9);
    let plain_s = median_secs(ck_reps, || {
        Tends::with_config(TendsConfig {
            threads: 1,
            ..Default::default()
        })
        .reconstruct_robust(&small, Recorder::disabled(), &RobustOptions::default())
        .expect("robust run")
    });
    let ck_interval = RobustOptions::default().checkpoint_interval;
    let checkpointed_s = median_secs(ck_reps, || {
        std::fs::remove_file(&ck_path).ok();
        Tends::with_config(TendsConfig {
            threads: 1,
            ..Default::default()
        })
        .reconstruct_robust(
            &small,
            Recorder::disabled(),
            &RobustOptions {
                checkpoint: Some(ck_path.clone()),
                ..Default::default()
            },
        )
        .expect("checkpointed run")
    });
    std::fs::remove_file(&ck_path).ok();

    // Incremental re-estimation: +10% appended cascades, warm-started
    // from the checkpoint's persisted sufficient statistics (count fold
    // over the new columns + dirty-node search only) vs the old append
    // behavior — dropping the checkpoint and re-running the combined
    // matrix from scratch with checkpointing back on. The workload models
    // what the warm path exists for: a deep archived history (β large
    // enough that per-pair recounting dominates the run) receiving a
    // fresh batch, not a toy matrix where fixed costs drown the counting.
    let (append_base_beta, append_beta) = if quick {
        (2_048, 204)
    } else {
        (153_600, 15_360)
    };
    eprintln!(
        "perf_report: incremental append (n={n_large}, β={append_base_beta}, +{append_beta} cascades)"
    );
    let append_combined = status_workload(n_large, append_base_beta + append_beta, 14);
    let (append_base, appended) = split_rows(&append_combined, append_base_beta);
    let ck_append = std::env::temp_dir().join("diffnet_perf_append_checkpoint.json");
    let append_tends = || {
        Tends::with_config(TendsConfig {
            threads: 1,
            ..Default::default()
        })
    };
    std::fs::remove_file(&ck_append).ok();
    append_tends()
        .reconstruct_robust(
            &append_base,
            Recorder::disabled(),
            &RobustOptions {
                checkpoint: Some(ck_append.clone()),
                ..Default::default()
            },
        )
        .expect("base run");
    let warm_state = std::fs::read(&ck_append).expect("read base checkpoint");
    let full_rerun_s = median_secs(reps.min(3), || {
        std::fs::remove_file(&ck_append).ok();
        append_tends()
            .reconstruct_robust(
                &append_combined,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(ck_append.clone()),
                    ..Default::default()
                },
            )
            .expect("full re-run")
    });
    let warm_options = RobustOptions {
        checkpoint: Some(ck_append.clone()),
        resume: true,
        revision: 1,
        ..Default::default()
    };
    let incremental_s = median_secs(reps.min(3), || {
        std::fs::write(&ck_append, &warm_state).expect("restore base checkpoint");
        append_tends()
            .reconstruct_robust_append(
                &append_combined,
                &appended,
                Recorder::disabled(),
                &warm_options,
            )
            .expect("incremental append run")
    });
    // One instrumented pair for the splice accounting and the exactness
    // check: the warm result must equal the fresh combined run bit for bit.
    let append_full = append_tends()
        .reconstruct_observed(&append_combined, Recorder::disabled())
        .expect("fresh combined run");
    std::fs::write(&ck_append, &warm_state).expect("restore base checkpoint");
    let append_recorder = Recorder::new();
    let append_warm = append_tends()
        .reconstruct_robust_append(&append_combined, &appended, &append_recorder, &warm_options)
        .expect("incremental append run");
    assert_eq!(
        append_warm.result.graph, append_full.graph,
        "incremental append must reproduce the fresh combined run"
    );
    let append_counters = append_recorder.snapshot().counters;
    let append_dirty = append_counters.get("dirty_nodes").copied().unwrap_or(0);
    let append_reused = append_counters.get("nodes_reused").copied().unwrap_or(0);
    std::fs::remove_file(&ck_append).ok();

    // The serving layer over loopback: request throughput on the cheapest
    // endpoint, then the full submit→done latency for the small workload —
    // the price of running inference behind the daemon instead of inline.
    eprintln!("perf_report: serve loopback (n={n_small})");
    let serve_dir = std::env::temp_dir().join(format!("diffnet_perf_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_dir);
    let server = diffnet_serve::Server::bind(&diffnet_serve::ServeConfig {
        data_dir: serve_dir.clone(),
        access_log: false,
        ..Default::default()
    })
    .expect("bind loopback server");
    let addr = server.addr();
    let server_thread = std::thread::spawn(move || server.serve_forever());
    let client = diffnet_serve::Client::new(addr);
    // Throughput curves from the loadgen harness: closed-loop healthz at
    // each connection count, with and without keep-alive, so the report
    // shows how the reactor scales with concurrency and what
    // connection-per-request costs. Latency lands in the same fine-grained
    // buckets the daemon exposes on /v1/metrics, so the rows carry tail
    // percentiles (p50/p95/p99), not batch means.
    let lg_window = if quick {
        std::time::Duration::from_millis(800)
    } else {
        std::time::Duration::from_secs(3)
    };
    let mut curves: Vec<(usize, bool, diffnet_loadgen::LoadReport)> = Vec::new();
    for keep_alive in [true, false] {
        for connections in [1usize, 4, 16, 64] {
            eprintln!(
                "perf_report: loadgen healthz ({connections} conns, keep-alive {keep_alive})"
            );
            let cfg = diffnet_loadgen::LoadgenConfig {
                connections,
                duration: lg_window,
                warmup: std::time::Duration::from_millis(300),
                keep_alive,
                ..diffnet_loadgen::LoadgenConfig::new(addr)
            };
            let summary = diffnet_loadgen::run(&cfg).expect("load run");
            curves.push((connections, keep_alive, summary.best().clone()));
        }
    }
    let best_keepalive = curves
        .iter()
        .filter(|&&(_, ka, _)| ka)
        .map(|(_, _, r)| r)
        .max_by(|a, b| a.ok_rps().total_cmp(&b.ok_rps()))
        .expect("keep-alive curve")
        .clone();
    let mut serve_body = Vec::new();
    diffnet_simulate::io::write_status_matrix(&small, &mut serve_body).expect("serialize statuses");
    let mut submit_hist = DurationHistogram::default();
    let submit_to_done_s = median_secs(reps.min(3), || {
        let (_, secs) = timed(|| {
            let (code, job) = client.post_json("/v1/jobs", &serve_body).expect("submit");
            assert_eq!(code, 201, "{}", job.to_pretty());
            let id = job.get("id").and_then(Json::as_f64).expect("job id") as u64;
            let done = client
                .wait_for_job(id, std::time::Duration::from_secs(300))
                .expect("job finishes");
            assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
        });
        submit_hist.record(secs);
    });
    client.shutdown().expect("shutdown");
    server_thread.join().expect("join").expect("serve loop");
    let _ = std::fs::remove_dir_all(&serve_dir);

    // Streamed IMI at out-of-core scale: τ from the deterministic pair
    // sample, then the tiled fold into bounded sparse candidate
    // accumulators — the dense n×n matrix is never allocated, which is
    // what makes this n feasible at all (dense f64 storage for n=100,000
    // would be ~80 GB). Peak RSS is profiled so the row demonstrates the
    // memory bound, not just the throughput.
    let (n_stream, beta_stream) = if quick { (10_000, 64) } else { (100_000, 64) };
    let stream_budget: u64 = 512 << 20;
    eprintln!("perf_report: streamed IMI (n={n_stream}, beta={beta_stream})");
    let stream_statuses = synthetic_statuses(beta_stream, n_stream, 2020);
    let stream_cols = stream_statuses.columns();
    drop(stream_statuses);
    let stream_profiler =
        diffnet_observe::ResourceProfiler::start(diffnet_observe::DEFAULT_SAMPLE_INTERVAL);
    let stream_threads = if multi_core { 8 } else { 1 };
    let (tau_sample, tau_sample_s) = timed(|| {
        diffnet_tends::stream::sample_tau(
            &stream_cols,
            CorrelationMeasure::Imi,
            Some(stream_budget),
            stream_threads,
        )
    });
    let (fold, fold_s) = timed(|| {
        diffnet_tends::stream::fold_candidates(
            &stream_cols,
            CorrelationMeasure::Imi,
            tau_sample.kmeans.tau,
            SearchParams::default().max_candidates,
            diffnet_tends::Shard::full(stream_cols.num_nodes()),
            stream_threads,
        )
    });
    let stream_profile = stream_profiler.stop();
    drop(stream_cols);

    // One instrumented reconstruction for the per-phase breakdown, so the
    // report shows where the wall-clock goes inside a single run.
    eprintln!("perf_report: instrumented phase breakdown (n={n_small})");
    let recorder = Recorder::new();
    let _ = Tends::with_config(TendsConfig {
        threads: 1,
        ..Default::default()
    })
    .reconstruct_observed(&small, &recorder)
    .expect("default search fits");
    let run_report = RunReport::new("tends", recorder.snapshot(), 1);

    let mut json = Json::object();
    json.push("generated_by", "perf_report");
    json.push("quick", quick);
    json.push("hardware_threads", hardware_threads as u64);
    json.push("beta", beta as u64);
    json.push(
        "cpu_features",
        Json::Arr(
            Kernels::detected_features()
                .into_iter()
                .map(Json::from)
                .collect(),
        ),
    );
    json.push("simd_dispatch", auto_k.dispatch());

    // Headline rows time the kernels at streaming depth (β=2048); the
    // nested inference_shape row keeps the β=150 tiled-vs-per-pair
    // comparison the reconstruction pipeline actually sees.
    let mut pair = Json::object();
    pair.push("n", n_deep as u64);
    pair.push("beta", beta_deep as u64);
    pair.push("tile_size", deep_cols.pair_tile_size() as u64);
    pair.push("dispatch", auto_k.dispatch());
    pair.push("per_pair_s", deep_ref);
    pair.push("tiled_s", deep_tiled);
    pair.push("speedup", deep_ref / deep_tiled);
    pair.push("simd_s", deep_simd);
    pair.push("simd_speedup", deep_ref / deep_simd);
    pair.push("scalar_s", deep_scalar);
    pair.push("scalar_speedup", deep_ref / deep_scalar);
    let mut pair_inf = Json::object();
    pair_inf.push("n", n_large as u64);
    pair_inf.push("beta", beta as u64);
    pair_inf.push("tile_size", large_cols.pair_tile_size() as u64);
    pair_inf.push("per_pair_s", pair_ref);
    pair_inf.push("tiled_s", pair_tiled);
    pair_inf.push("speedup", pair_ref / pair_tiled);
    pair.push("inference_shape", pair_inf);
    json.push("pair_kernel", pair);

    json.push("imi_matrix", scaling_row(n_large, imi_1, imi_8));
    json.push("reconstruction", scaling_row(n_small, rec_1, rec_8));

    let rows: Vec<Json> = kernels
        .iter()
        .map(|k| {
            let mut row = Json::object();
            row.push("n", k.n as u64);
            row.push("recursive_s", k.recursive_s);
            row.push("workspace_s", k.workspace_s);
            row.push("speedup", k.recursive_s / k.workspace_s);
            row
        })
        .collect();
    json.push("counting_kernel", rows);

    let mut greedy = Json::object();
    greedy.push("n", n_small as u64);
    greedy.push("reference_s", greedy_ref);
    greedy.push("cached_workspace_s", greedy_ws);
    greedy.push("speedup", greedy_ref / greedy_ws);
    greedy.push("score_cache_hits", cache_totals.hits);
    greedy.push("score_cache_misses", cache_totals.misses);
    json.push("greedy_search", greedy);

    let mut ck = Json::object();
    ck.push("n", n_small as u64);
    ck.push("interval_nodes", ck_interval as u64);
    ck.push("plain_s", plain_s);
    ck.push("checkpointed_s", checkpointed_s);
    ck.push("overhead_ratio", checkpointed_s / plain_s);
    json.push("checkpoint_overhead", ck);

    let mut append_row = Json::object();
    append_row.push("n", n_large as u64);
    append_row.push("base_processes", append_base_beta as u64);
    append_row.push("appended_processes", append_beta as u64);
    append_row.push("full_rerun_s", full_rerun_s);
    append_row.push("incremental_s", incremental_s);
    append_row.push("speedup", full_rerun_s / incremental_s);
    append_row.push("dirty_nodes", append_dirty);
    append_row.push("nodes_reused", append_reused);
    json.push("incremental_append", append_row);

    let mut serve = Json::object();
    serve.push("n", n_small as u64);
    serve.push("healthz_rps", best_keepalive.ok_rps());
    serve.push("healthz_p50_s", best_keepalive.hist.quantile(0.50));
    serve.push("healthz_p95_s", best_keepalive.hist.quantile(0.95));
    serve.push("healthz_p99_s", best_keepalive.hist.quantile(0.99));
    let mut throughput = Vec::new();
    for (connections, keep_alive, r) in &curves {
        let mut row = Json::object();
        row.push("connections", *connections as u64);
        row.push("keep_alive", *keep_alive);
        row.push("rps", r.ok_rps());
        row.push("requests", r.requests);
        row.push("errors", r.requests - r.ok);
        row.push("p50_s", r.hist.quantile(0.50));
        row.push("p95_s", r.hist.quantile(0.95));
        row.push("p99_s", r.hist.quantile(0.99));
        throughput.push(row);
    }
    serve.push("throughput", Json::Arr(throughput));
    serve.push("submit_to_done_s", submit_to_done_s);
    serve.push("submit_to_done_p50_s", submit_hist.quantile(0.50));
    serve.push("submit_to_done_p95_s", submit_hist.quantile(0.95));
    serve.push("submit_to_done_p99_s", submit_hist.quantile(0.99));
    json.push("serve_loopback", serve);

    let mut streaming = Json::object();
    streaming.push("n", n_stream as u64);
    streaming.push("beta", beta_stream as u64);
    streaming.push("threads", stream_threads as u64);
    streaming.push("memory_budget_bytes", stream_budget);
    streaming.push("tau_sample_s", tau_sample_s);
    streaming.push("tau_sample_pairs", tau_sample.sampled_pairs);
    streaming.push("tau_sample_stride", tau_sample.stride);
    streaming.push("tau", tau_sample.kmeans.tau);
    streaming.push("fold_s", fold_s);
    streaming.push("scanned_pairs", fold.scanned_pairs);
    streaming.push("pairs_per_s", fold.scanned_pairs as f64 / fold_s);
    streaming.push("tiles", fold.tiles);
    streaming.push("pairs_above_tau", fold.pairs_above_tau);
    streaming.push("candidate_evictions", fold.candidate_evictions);
    streaming.push("peak_rss_bytes", stream_profile.peak_rss_bytes);
    streaming.push(
        "under_budget",
        stream_profile.peak_rss_bytes < stream_budget,
    );
    json.push("streaming_imi", streaming);

    json.push("tends_run_report", run_report.to_json());

    let text = json.to_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    std::fs::write(path, &text).expect("write BENCH_micro.json");
    println!("{text}");
    eprintln!("perf_report: wrote {path}");
}
