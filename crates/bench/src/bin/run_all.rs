//! Reproduces every table and figure of the TENDS paper in one run.
//! Set `DIFFNET_QUICK=1` for a reduced smoke run, `DIFFNET_MARKDOWN=1`
//! for markdown output (useful for regenerating EXPERIMENTS.md).

use diffnet_bench::figures;
use diffnet_bench::harness::Scale;

fn main() {
    let scale = Scale::from_env_for_bin();
    for (name, f) in figures::all_figures() {
        eprintln!("==> {name}");
        figures::print_tables(&f(scale));
    }
}
