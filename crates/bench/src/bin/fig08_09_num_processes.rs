//! Reproduces Figs. 8-9 (effect of number of diffusion processes) of the TENDS paper. Run with `--release`;
//! set `DIFFNET_QUICK=1` for a reduced smoke run, `DIFFNET_MARKDOWN=1`
//! for markdown output.

use diffnet_bench::figures;
use diffnet_bench::harness::Scale;

fn main() {
    let scale = Scale::from_env_for_bin();
    figures::print_tables(&figures::fig08_09_num_processes(scale));
}
