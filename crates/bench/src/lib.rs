#![warn(missing_docs)]
//! # diffnet-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! TENDS paper's evaluation (§V), plus ablations of this implementation's
//! design choices.
//!
//! * [`harness`] — shared machinery: experiment settings, observation
//!   generation, timed evaluation of every algorithm.
//! * [`figures`] — one function per paper table/figure; each returns
//!   [`diffnet_metrics::table::ResultTable`]s that the `src/bin/*`
//!   binaries print (`cargo run -p diffnet-bench --release --bin fig01_network_size`)
//!   and the `figures` bench runs end-to-end.
//!
//! Scale control: every figure function takes a [`harness::Scale`];
//! `Scale::full()` uses the paper's exact parameters, `Scale::quick()` a
//! reduced-β variant for smoke runs. The binaries honour the
//! `DIFFNET_QUICK=1` environment variable; the `figures` bench defaults to
//! quick unless `DIFFNET_FULL=1` is set.

pub mod figures;
pub mod harness;
