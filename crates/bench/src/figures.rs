//! One function per table/figure of the paper's evaluation (§V).
//!
//! Each function returns the [`ResultTable`]s that regenerate the
//! corresponding figure: an F-score table and a running-time table with
//! one series per algorithm (the paper plots exactly these quantities).

use crate::harness::{evaluate_all, observe, tends_config, Scale, Setting, SERIES};
use diffnet_datasets::{dunf_like, lfr_suite, netsci_like};
use diffnet_graph::{stats, DiGraph};
use diffnet_metrics::table::ResultTable;
use diffnet_metrics::timed;
use diffnet_tends::{
    CorrelationMeasure, GreedyStrategy, SearchParams, Tends, TendsConfig, ThresholdMode,
};

/// Seed for dataset generation (fixed across figures so the same NetSci /
/// DUNF stand-ins are reused, like the paper reuses its datasets).
const DATASET_SEED: u64 = 2020;

/// Table II: properties of the LFR benchmark graphs.
pub fn table2(_scale: Scale) -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "Table II: LFR benchmark graphs (generated)",
        "graph",
        &["n", "m", "avg degree (m/n)", "degree std"],
    );
    for spec in lfr_suite() {
        let g = spec.generate(DATASET_SEED);
        t.push_row(
            spec.name,
            &[
                g.node_count() as f64,
                g.edge_count() as f64,
                g.edge_count() as f64 / g.node_count() as f64,
                stats::degree_std(&g),
            ],
        );
    }
    vec![t]
}

/// Runs the four-way comparison over a list of `(label, truth, setting)`
/// workloads and renders the paper's two panels.
fn sweep(
    fig: &str,
    param: &str,
    workloads: Vec<(String, DiGraph, Setting)>,
    scale: Scale,
) -> Vec<ResultTable> {
    let mut f_table = ResultTable::new(format!("{fig} — F-score"), param, &SERIES);
    let mut t_table = ResultTable::new(format!("{fig} — running time (s)"), param, &SERIES);
    for (label, truth, setting) in workloads {
        let obs = observe(&truth, &setting);
        let outcomes = evaluate_all(&truth, &obs, scale);
        let fs: Vec<f64> = outcomes.iter().map(|o| o.f_score).collect();
        let ts: Vec<f64> = outcomes.iter().map(|o| o.seconds).collect();
        f_table.push_row(label.clone(), &fs);
        t_table.push_row(label, &ts);
    }
    vec![f_table, t_table]
}

/// Fig. 1: effect of diffusion network size (LFR1–5).
pub fn fig01_network_size(scale: Scale) -> Vec<ResultTable> {
    let workloads = lfr_suite()[0..5]
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let setting = Setting {
                beta: scale.beta(150),
                seed: 100 + i as u64,
                ..Default::default()
            };
            (
                format!("n={}", spec.n),
                spec.generate(DATASET_SEED),
                setting,
            )
        })
        .collect();
    sweep(
        "Fig. 1: effect of diffusion network size",
        "n",
        workloads,
        scale,
    )
}

/// Fig. 2: effect of average node degree (LFR6–10).
pub fn fig02_avg_degree(scale: Scale) -> Vec<ResultTable> {
    let workloads = lfr_suite()[5..10]
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let setting = Setting {
                beta: scale.beta(150),
                seed: 200 + i as u64,
                ..Default::default()
            };
            (
                format!("K={}", spec.mean_degree),
                spec.generate(DATASET_SEED),
                setting,
            )
        })
        .collect();
    sweep(
        "Fig. 2: effect of average node degree",
        "K",
        workloads,
        scale,
    )
}

/// Fig. 3: effect of node degree dispersion (LFR11–15).
pub fn fig03_dispersion(scale: Scale) -> Vec<ResultTable> {
    let workloads = lfr_suite()[10..15]
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let setting = Setting {
                beta: scale.beta(150),
                seed: 300 + i as u64,
                ..Default::default()
            };
            (
                format!("T={}", spec.degree_exponent),
                spec.generate(DATASET_SEED),
                setting,
            )
        })
        .collect();
    sweep(
        "Fig. 3: effect of node degree dispersion",
        "T",
        workloads,
        scale,
    )
}

/// Figs. 4–5: effect of the initial infection ratio on NetSci and DUNF.
pub fn fig04_05_infection_ratio(scale: Scale) -> Vec<ResultTable> {
    let mut tables = Vec::new();
    for (fig, name, truth) in [
        ("Fig. 4", "NetSci", netsci_like(DATASET_SEED)),
        ("Fig. 5", "DUNF", dunf_like(DATASET_SEED)),
    ] {
        let workloads = [0.05f64, 0.10, 0.15, 0.20, 0.25]
            .iter()
            .enumerate()
            .map(|(i, &alpha)| {
                let setting = Setting {
                    alpha,
                    beta: scale.beta(150),
                    seed: 400 + i as u64,
                    ..Default::default()
                };
                (format!("α={alpha}"), truth.clone(), setting)
            })
            .collect();
        tables.extend(sweep(
            &format!("{fig}: effect of initial infection ratio on {name}"),
            "α",
            workloads,
            scale,
        ));
    }
    tables
}

/// Figs. 6–7: effect of the propagation probability on NetSci and DUNF.
pub fn fig06_07_prop_prob(scale: Scale) -> Vec<ResultTable> {
    let mut tables = Vec::new();
    for (fig, name, truth) in [
        ("Fig. 6", "NetSci", netsci_like(DATASET_SEED)),
        ("Fig. 7", "DUNF", dunf_like(DATASET_SEED)),
    ] {
        let workloads = [0.20f64, 0.25, 0.30, 0.35, 0.40]
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let setting = Setting {
                    mu,
                    beta: scale.beta(150),
                    seed: 600 + i as u64,
                    ..Default::default()
                };
                (format!("μ={mu}"), truth.clone(), setting)
            })
            .collect();
        tables.extend(sweep(
            &format!("{fig}: effect of propagation probability on {name}"),
            "μ",
            workloads,
            scale,
        ));
    }
    tables
}

/// Figs. 8–9: effect of the number of diffusion processes on NetSci and
/// DUNF. Larger budgets extend smaller ones (the β=250 observation set is
/// truncated), matching how such sweeps accumulate data.
pub fn fig08_09_num_processes(scale: Scale) -> Vec<ResultTable> {
    let mut tables = Vec::new();
    for (fig, name, truth) in [
        ("Fig. 8", "NetSci", netsci_like(DATASET_SEED)),
        ("Fig. 9", "DUNF", dunf_like(DATASET_SEED)),
    ] {
        let betas = [50usize, 100, 150, 200, 250];
        let max_beta = scale.beta(250);
        let full_setting = Setting {
            beta: max_beta,
            seed: 800,
            ..Default::default()
        };
        let full_obs = observe(&truth, &full_setting);

        let mut f_table = ResultTable::new(
            format!("{fig}: effect of number of diffusion processes on {name} — F-score"),
            "β",
            &SERIES,
        );
        let mut t_table = ResultTable::new(
            format!("{fig}: effect of number of diffusion processes on {name} — running time (s)"),
            "β",
            &SERIES,
        );
        for &paper_beta in &betas {
            let beta = scale.beta(paper_beta).min(max_beta);
            let obs = full_obs.truncated(beta);
            let outcomes = evaluate_all(&truth, &obs, scale);
            let fs: Vec<f64> = outcomes.iter().map(|o| o.f_score).collect();
            let ts: Vec<f64> = outcomes.iter().map(|o| o.seconds).collect();
            f_table.push_row(format!("β={paper_beta}"), &fs);
            t_table.push_row(format!("β={paper_beta}"), &ts);
        }
        tables.push(f_table);
        tables.push(t_table);
    }
    tables
}

/// Figs. 10–11: effect of the infection-MI-based pruning method on NetSci
/// and DUNF — the threshold sweep `0.4τ … 2τ` with both the infection-MI
/// and the traditional-MI variants of TENDS.
pub fn fig10_11_pruning(scale: Scale) -> Vec<ResultTable> {
    let mut tables = Vec::new();
    for (fig, name, truth) in [
        ("Fig. 10", "NetSci", netsci_like(DATASET_SEED)),
        ("Fig. 11", "DUNF", dunf_like(DATASET_SEED)),
    ] {
        let setting = Setting {
            beta: scale.beta(150),
            seed: 1000,
            ..Default::default()
        };
        let obs = observe(&truth, &setting);

        let series = ["TENDS (IMI)", "TENDS (MI)"];
        let mut f_table = ResultTable::new(
            format!("{fig}: effect of infection-MI pruning on {name} — F-score"),
            "threshold",
            &series,
        );
        let mut t_table = ResultTable::new(
            format!("{fig}: effect of infection-MI pruning on {name} — running time (s)"),
            "threshold",
            &series,
        );
        for s in [0.4f64, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0] {
            let mut fs = Vec::with_capacity(2);
            let mut ts = Vec::with_capacity(2);
            for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
                // The default 8-candidate cap is a complexity guard that
                // would mask the threshold's effect; this figure isolates
                // the pruning method, so the cap is relaxed.
                let cfg = TendsConfig {
                    correlation: measure,
                    threshold: ThresholdMode::ScaledAuto(s),
                    search: SearchParams {
                        max_candidates: 16,
                        ..Default::default()
                    },
                    ..tends_config()
                };
                let (res, secs) = timed(|| {
                    Tends::with_config(cfg)
                        .reconstruct(&obs.statuses)
                        .expect("default search fits")
                });
                let cmp = diffnet_metrics::EdgeSetComparison::against_truth(&truth, &res.graph);
                fs.push(cmp.f_score());
                ts.push(secs);
            }
            let label = if (s - 1.0).abs() < 1e-9 {
                "1.0τ (auto)".to_string()
            } else {
                format!("{s}τ")
            };
            f_table.push_row(label.clone(), &fs);
            t_table.push_row(label, &ts);
        }
        tables.push(f_table);
        tables.push(t_table);
    }
    tables
}

/// Ablation (ours): the greedy acceptance rule — §IV-A best-improvement
/// vs. the literal Algorithm-1 score-ordered rule (see DESIGN.md).
pub fn greedy_ablation(scale: Scale) -> Vec<ResultTable> {
    let series = [
        "BestImprovement F",
        "ScoreOrdered F",
        "BestImprovement s",
        "ScoreOrdered s",
    ];
    let mut t = ResultTable::new(
        "Ablation: greedy acceptance rule (BestImprovement vs literal Algorithm 1)",
        "network",
        &series,
    );
    let workloads: Vec<(String, DiGraph)> = vec![
        ("LFR3 (n=200)".into(), lfr_suite()[2].generate(DATASET_SEED)),
        ("NetSci".into(), netsci_like(DATASET_SEED)),
        ("DUNF".into(), dunf_like(DATASET_SEED)),
    ];
    for (label, truth) in workloads {
        let setting = Setting {
            beta: scale.beta(150),
            seed: 1200,
            ..Default::default()
        };
        let obs = observe(&truth, &setting);
        let mut row = Vec::with_capacity(4);
        let mut times = Vec::with_capacity(2);
        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
        ] {
            let cfg = TendsConfig {
                search: SearchParams {
                    strategy,
                    ..Default::default()
                },
                ..tends_config()
            };
            let (res, secs) = timed(|| {
                Tends::with_config(cfg)
                    .reconstruct(&obs.statuses)
                    .expect("default search fits")
            });
            let cmp = diffnet_metrics::EdgeSetComparison::against_truth(&truth, &res.graph);
            row.push(cmp.f_score());
            times.push(secs);
        }
        row.extend(times);
        t.push_row(label, &row);
    }
    vec![t]
}

/// Ablation (ours): robustness to the diffusion mechanism — TENDS and the
/// baselines on observations generated by the linear-threshold model
/// instead of the independent-cascade model the methods implicitly assume.
pub fn model_mismatch(scale: Scale) -> Vec<ResultTable> {
    use diffnet_simulate::{EdgeProbs, IcConfig, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut f_table = ResultTable::new(
        "Ablation: diffusion-model mismatch (IC-trained methods on LT data)",
        "workload",
        &SERIES,
    );
    for (label, truth) in [
        (
            "LFR3 / IC".to_string(),
            lfr_suite()[2].generate(DATASET_SEED),
        ),
        (
            "LFR3 / LT".to_string(),
            lfr_suite()[2].generate(DATASET_SEED),
        ),
        ("NetSci / IC".to_string(), netsci_like(DATASET_SEED)),
        ("NetSci / LT".to_string(), netsci_like(DATASET_SEED)),
    ] {
        let setting = Setting {
            beta: scale.beta(150),
            seed: 1400,
            ..Default::default()
        };
        let obs = if label.ends_with("LT") {
            let mut rng = StdRng::seed_from_u64(setting.seed);
            let probs = EdgeProbs::gaussian(&truth, setting.mu, setting.sigma, &mut rng);
            LinearThreshold::new(&truth, &probs).observe(
                IcConfig {
                    initial_ratio: setting.alpha,
                    num_processes: setting.beta,
                },
                &mut rng,
            )
        } else {
            observe(&truth, &setting)
        };
        let outcomes = evaluate_all(&truth, &obs, scale);
        let fs: Vec<f64> = outcomes.iter().map(|o| o.f_score).collect();
        f_table.push_row(label, &fs);
    }
    vec![f_table]
}

/// Ablation (ours): robustness to status-observation noise — missed
/// infections and false alarms in the registry (TENDS only; the
/// cascade-based baselines cannot even be *run* from a corrupted registry
/// because no consistent timeline survives).
pub fn status_noise(scale: Scale) -> Vec<ResultTable> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let truth = netsci_like(DATASET_SEED);
    let setting = Setting {
        beta: scale.beta(150),
        seed: 1500,
        ..Default::default()
    };
    let obs = observe(&truth, &setting);

    let series = ["precision", "recall", "F-score"];
    let mut t = ResultTable::new(
        "Ablation: TENDS under status-observation noise (NetSci)",
        "miss / false-alarm rate",
        &series,
    );
    let mut rng = StdRng::seed_from_u64(77);
    for rate in [0.0f64, 0.05, 0.10, 0.15, 0.20] {
        let noisy = diffnet_simulate::flip_statuses(&obs.statuses, rate, rate / 4.0, &mut rng);
        let g = Tends::with_config(tends_config())
            .reconstruct(&noisy)
            .expect("default search fits")
            .graph;
        let cmp = diffnet_metrics::EdgeSetComparison::against_truth(&truth, &g);
        t.push_row(
            format!("{:.0}% / {:.1}%", 100.0 * rate, 25.0 * rate),
            &[cmp.precision(), cmp.recall(), cmp.f_score()],
        );
    }
    vec![t]
}

/// Ablation (ours): direction post-processing policies on a reciprocal
/// network (NetSci) and a mostly one-directional network (DUNF).
pub fn direction_policies(scale: Scale) -> Vec<ResultTable> {
    use diffnet_tends::DirectionPolicy;

    let series = ["AsIs", "Symmetrize", "MutualOnly"];
    let mut t = ResultTable::new(
        "Ablation: direction post-processing (F-score)",
        "network",
        &series,
    );
    for (label, truth) in [
        ("NetSci (reciprocal)".to_string(), netsci_like(DATASET_SEED)),
        ("DUNF (directed)".to_string(), dunf_like(DATASET_SEED)),
    ] {
        let setting = Setting {
            beta: scale.beta(150),
            seed: 1600,
            ..Default::default()
        };
        let obs = observe(&truth, &setting);
        let mut row = Vec::with_capacity(3);
        for policy in [
            DirectionPolicy::AsIs,
            DirectionPolicy::Symmetrize,
            DirectionPolicy::MutualOnly,
        ] {
            let cfg = TendsConfig {
                direction: policy,
                ..tends_config()
            };
            let g = Tends::with_config(cfg)
                .reconstruct(&obs.statuses)
                .expect("default search fits")
                .graph;
            row.push(diffnet_metrics::EdgeSetComparison::against_truth(&truth, &g).f_score());
        }
        t.push_row(label, &row);
    }
    vec![t]
}

/// Ablation (ours): the value of the scoring criterion — full TENDS vs
/// the pruning-only baseline that connects every pair above the
/// threshold.
pub fn scoring_value(scale: Scale) -> Vec<ResultTable> {
    let series = [
        "TENDS F",
        "pruning-only F",
        "TENDS edges",
        "pruning-only edges",
    ];
    let mut t = ResultTable::new(
        "Ablation: scoring criterion vs pruning-only correlation threshold",
        "network",
        &series,
    );
    for (label, truth) in [
        ("LFR3".to_string(), lfr_suite()[2].generate(DATASET_SEED)),
        ("NetSci".to_string(), netsci_like(DATASET_SEED)),
        ("DUNF".to_string(), dunf_like(DATASET_SEED)),
    ] {
        let setting = Setting {
            beta: scale.beta(150),
            seed: 1700,
            ..Default::default()
        };
        let obs = observe(&truth, &setting);
        let full = Tends::with_config(tends_config())
            .reconstruct(&obs.statuses)
            .expect("default search fits")
            .graph;
        let naive =
            diffnet_tends::ablation::correlation_threshold_baseline(&obs.statuses, &tends_config());
        let f =
            |g: &DiGraph| diffnet_metrics::EdgeSetComparison::against_truth(&truth, g).f_score();
        t.push_row(
            label,
            &[
                f(&full),
                f(&naive),
                full.edge_count() as f64,
                naive.edge_count() as f64,
            ],
        );
    }
    vec![t]
}

/// A named figure-reproduction function.
pub type FigureFn = fn(Scale) -> Vec<ResultTable>;

/// Every figure/table function, with its binary name (used by `run_all`
/// and the `figures` bench).
pub fn all_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("table2", table2),
        ("fig01_network_size", fig01_network_size),
        ("fig02_avg_degree", fig02_avg_degree),
        ("fig03_dispersion", fig03_dispersion),
        ("fig04_05_infection_ratio", fig04_05_infection_ratio),
        ("fig06_07_prop_prob", fig06_07_prop_prob),
        ("fig08_09_num_processes", fig08_09_num_processes),
        ("fig10_11_pruning", fig10_11_pruning),
        ("greedy_ablation", greedy_ablation),
        ("model_mismatch", model_mismatch),
        ("status_noise", status_noise),
        ("direction_policies", direction_policies),
        ("scoring_value", scoring_value),
    ]
}

/// Prints tables to stdout, plus markdown when `DIFFNET_MARKDOWN=1`.
pub fn print_tables(tables: &[ResultTable]) {
    let markdown = std::env::var("DIFFNET_MARKDOWN").is_ok_and(|v| v == "1");
    for t in tables {
        if markdown {
            println!("{}", t.render_markdown());
        } else {
            println!("{}", t.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_fifteen_rows() {
        let t = &table2(Scale::quick())[0];
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn figure_registry_is_complete() {
        let names: Vec<&str> = all_figures().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 13);
        assert!(names.contains(&"fig01_network_size"));
        assert!(names.contains(&"fig10_11_pruning"));
    }
}
