//! End-to-end reproduction of every paper table and figure, run as a bench
//! target so `cargo bench --workspace` regenerates the full evaluation.
//!
//! Defaults to the reduced (`quick`) scale so the whole suite completes in
//! minutes; set `DIFFNET_FULL=1` for the paper-scale parameters (the
//! `src/bin/*` binaries default to full scale instead).

use diffnet_bench::figures;
use diffnet_bench::harness::Scale;
use diffnet_metrics::Stopwatch;

fn main() {
    // Criterion-style CLI arguments (e.g. `--bench`) are accepted and
    // ignored; this harness measures wall-clock per figure instead of
    // statistical samples, because each figure is a multi-second pipeline.
    let scale = Scale::from_env_for_bench();
    println!(
        "reproducing all paper figures at {} scale",
        if scale.is_full() {
            "FULL (paper)"
        } else {
            "QUICK (set DIFFNET_FULL=1 for paper scale)"
        }
    );
    let total = Stopwatch::start();
    for (name, f) in figures::all_figures() {
        let sw = Stopwatch::start();
        let tables = f(scale);
        println!("\n=== {name} ({:.1}s) ===", sw.seconds());
        figures::print_tables(&tables);
    }
    println!("total: {:.1}s", total.seconds());
}
