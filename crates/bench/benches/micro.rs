//! Criterion micro-benchmarks for the hot paths of the workspace:
//! simulation throughput, the `N_ijk` counting kernels, the IMI matrix,
//! threshold clustering, full TENDS reconstruction, and each baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diffnet_baselines::{Lift, MulTree, NetRate, NetRateConfig};
use diffnet_datasets::lfr_suite;
use diffnet_graph::DiGraph;
use diffnet_simulate::{CountsWorkspace, EdgeProbs, IcConfig, IndependentCascade, ObservationSet};
use diffnet_tends::search::{candidate_parents, find_parents_reference, find_parents_with};
use diffnet_tends::{
    pinned_two_means, CorrelationMatrix, CorrelationMeasure, SearchParams, SearchScratch, Tends,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(n_index: usize) -> (DiGraph, ObservationSet) {
    let spec = &lfr_suite()[n_index];
    let truth = spec.generate(2020);
    let mut rng = StdRng::seed_from_u64(42);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    let obs = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.15,
            num_processes: 150,
        },
        &mut rng,
    );
    (truth, obs)
}

fn bench_simulation(c: &mut Criterion) {
    let spec = &lfr_suite()[2]; // n = 200
    let truth = spec.generate(2020);
    let mut rng = StdRng::seed_from_u64(42);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    let sim = IndependentCascade::new(&truth, &probs);
    c.bench_function("simulate/ic_150_processes_n200", |b| {
        b.iter(|| {
            let obs = sim.observe(
                IcConfig {
                    initial_ratio: 0.15,
                    num_processes: 150,
                },
                &mut rng,
            );
            black_box(obs.statuses.infected_fraction())
        })
    });
}

fn bench_counting_kernels(c: &mut Criterion) {
    let (_, obs) = workload(2);
    let cols = obs.statuses.columns();
    let mut group = c.benchmark_group("counting");
    group.bench_function("pair_counts_all_pairs_n200", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..200u32 {
                for j in (i + 1)..200u32 {
                    acc += cols.pair_counts(i, j).n11;
                }
            }
            black_box(acc)
        })
    });
    for f in [1usize, 3, 5] {
        let parents: Vec<u32> = (1..=f as u32).collect();
        group.bench_with_input(
            BenchmarkId::new("combo_counts_bitset", f),
            &parents,
            |b, parents| b.iter(|| black_box(cols.combo_counts(0, parents))),
        );
        group.bench_with_input(
            BenchmarkId::new("combo_counts_rowscan", f),
            &parents,
            |b, parents| b.iter(|| black_box(obs.statuses.combo_counts(0, parents))),
        );
        // Incremental path: the base partition is cached once and only the
        // last parent is refined per query, as in one greedy round.
        let (base, extra) = parents.split_at(f.saturating_sub(1));
        let mut ws = CountsWorkspace::new();
        ws.set_base(&cols, base).expect("small base");
        group.bench_with_input(
            BenchmarkId::new("combo_counts_workspace", f),
            &extra.to_vec(),
            |b, extra| {
                b.iter(|| black_box(ws.refined_counts(&cols, 0, extra).expect("small combo")[0]))
            },
        );
    }
    group.finish();
}

fn bench_greedy_search(c: &mut Criterion) {
    // The full per-node parent search (candidate pruning already done),
    // workspace path vs the from-scratch reference path.
    let (_, obs) = workload(2);
    let cols = obs.statuses.columns();
    let corr = CorrelationMatrix::compute(&cols, CorrelationMeasure::Imi);
    let tau = pinned_two_means(&corr.upper_triangle()).tau;
    let params = SearchParams::default();
    let candidates: Vec<Vec<u32>> = (0..200u32)
        .map(|i| candidate_parents(&corr, i, tau, params.max_candidates))
        .collect();
    let mut group = c.benchmark_group("greedy_n200");
    group.sample_size(10);
    group.bench_function("find_parents_reference", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (i, cands) in candidates.iter().enumerate() {
                acc += find_parents_reference(&cols, i as u32, cands, &params)
                    .expect("default search fits")
                    .stats
                    .evaluations;
            }
            black_box(acc)
        })
    });
    group.bench_function("find_parents_workspace", |b| {
        b.iter(|| {
            let mut scratch = SearchScratch::new();
            let mut acc = 0usize;
            for (i, cands) in candidates.iter().enumerate() {
                acc += find_parents_with(&mut scratch, &cols, i as u32, cands, &params)
                    .expect("default search fits")
                    .stats
                    .evaluations;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_imi_and_kmeans(c: &mut Criterion) {
    let (_, obs) = workload(2);
    let cols = obs.statuses.columns();
    c.bench_function("imi/matrix_n200", |b| {
        b.iter(|| black_box(CorrelationMatrix::compute(&cols, CorrelationMeasure::Imi)))
    });
    let corr = CorrelationMatrix::compute(&cols, CorrelationMeasure::Imi);
    let values = corr.upper_triangle();
    c.bench_function("kmeans/pinned_two_means_n200", |b| {
        b.iter(|| black_box(pinned_two_means(&values)))
    });
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct");
    group.sample_size(10);
    for (idx, label) in [(0usize, "n100"), (2, "n200"), (4, "n300")] {
        let (_, obs) = workload(idx);
        group.bench_function(BenchmarkId::new("tends", label), |b| {
            b.iter(|| {
                black_box(
                    Tends::new()
                        .reconstruct(&obs.statuses)
                        .expect("default search fits"),
                )
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let (truth, obs) = workload(2);
    let m = truth.edge_count();
    let mut group = c.benchmark_group("baselines_n200");
    group.sample_size(10);
    group.bench_function("netrate_200_iters", |b| {
        let nr = NetRate::with_config(NetRateConfig {
            max_iters: 200,
            ..Default::default()
        });
        b.iter(|| black_box(nr.infer(&obs)))
    });
    group.bench_function("multree", |b| {
        b.iter(|| black_box(MulTree::new().infer(&obs, m)))
    });
    group.bench_function("lift", |b| b.iter(|| black_box(Lift::new().infer(&obs, m))));
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_counting_kernels,
    bench_greedy_search,
    bench_imi_and_kmeans,
    bench_reconstruction,
    bench_baselines
);
criterion_main!(benches);
