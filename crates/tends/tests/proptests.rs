//! Property-based tests for checkpoint/resume: resuming from *any*
//! prefix of a checkpoint, at any thread count, must reproduce the
//! uninterrupted run bit for bit; corrupting the persisted artifacts in
//! arbitrary ways must yield typed errors, never panics.

use std::path::PathBuf;

use diffnet_graph::DiGraph;
use diffnet_observe::{Recorder, RunReport};
use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade, StatusMatrix};
use diffnet_tends::{Checkpoint, CheckpointError, RobustOptions, Tends, TendsConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reciprocal chain: every edge is recoverable, so runs are stable
/// across proptest cases while the observations vary.
fn chain(n: u32) -> DiGraph {
    let mut edges = Vec::new();
    for i in 0..n - 1 {
        edges.push((i, i + 1));
        edges.push((i + 1, i));
    }
    DiGraph::from_edges(n as usize, &edges)
}

fn observe(truth: &DiGraph, beta: usize, seed: u64) -> StatusMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let probs = EdgeProbs::constant(truth, 0.4);
    IndependentCascade::new(truth, &probs)
        .observe(
            IcConfig {
                initial_ratio: 0.3,
                num_processes: beta,
            },
            &mut rng,
        )
        .statuses
}

/// Splits a status matrix into its first `at` rows and the rest.
fn split_statuses(m: &StatusMatrix, at: usize) -> (StatusMatrix, StatusMatrix) {
    let n = m.num_nodes();
    let mut base = StatusMatrix::new(at, n);
    let mut rest = StatusMatrix::new(m.num_processes() - at, n);
    for l in 0..m.num_processes() {
        for i in 0..n as u32 {
            if m.get(l, i) {
                if l < at {
                    base.set(l, i);
                } else {
                    rest.set(l - at, i);
                }
            }
        }
    }
    (base, rest)
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("diffnet_tends_proptests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}_{tag}.json", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Crash-after-k-nodes simulation: write a full checkpoint, keep only
    // the first k entries, resume. The graph, the score bits, and the
    // deterministic report sections must all match the uninterrupted run
    // at 1 and 4 threads. β is drawn from 65..128, so the status matrix
    // always has a partial trailing word (β not a multiple of 64).
    #[test]
    fn resume_from_any_prefix_is_bit_identical(
        beta in 65usize..128,
        k in 0usize..8,
        seed in 0u64..1000,
    ) {
        let truth = chain(8);
        let statuses = observe(&truth, beta, seed);
        for threads in [1usize, 4] {
            let tends = Tends::with_config(TendsConfig { threads, ..Default::default() });
            let rec = Recorder::new();
            let full = tends.reconstruct_observed(&statuses, &rec).expect("search fits");
            let full_report = RunReport::new("tends", rec.snapshot(), threads);

            let path = temp_path(&format!("prefix_b{beta}_k{k}_s{seed}_t{threads}"));
            std::fs::remove_file(&path).ok();
            let opts = RobustOptions {
                checkpoint: Some(path.clone()),
                checkpoint_interval: 2,
                ..Default::default()
            };
            let rec2 = Recorder::new();
            tends.reconstruct_robust(&statuses, &rec2, &opts).expect("checkpointed run");

            let ck = Checkpoint::load(&path).expect("load checkpoint");
            prop_assert_eq!(ck.entries.len(), 8);
            let mut cut = ck.clone();
            cut.entries = ck.entries.iter().take(k).map(|(&i, e)| (i, e.clone())).collect();
            cut.save(&path).expect("save prefix");

            let rec3 = Recorder::new();
            let resumed = tends
                .reconstruct_robust(
                    &statuses,
                    &rec3,
                    &RobustOptions {
                        checkpoint: Some(path.clone()),
                        resume: true,
                        checkpoint_interval: 2,
                        ..Default::default()
                    },
                )
                .expect("resumed run");
            std::fs::remove_file(&path).ok();

            prop_assert!(resumed.is_complete());
            prop_assert_eq!(resumed.resumed_nodes, k);
            prop_assert_eq!(&resumed.result.graph, &full.graph);
            prop_assert_eq!(
                resumed.result.global_score.to_bits(),
                full.global_score.to_bits()
            );
            let resumed_report = RunReport::new("tends", rec3.snapshot(), threads);
            prop_assert_eq!(
                resumed_report.deterministic_json(),
                full_report.deterministic_json()
            );
        }
    }

    // Truncating a valid checkpoint at any byte either fails typed or —
    // because the delta-log format tolerates a torn final line, the
    // signature of a crash mid-append — loads as a faithful *prefix* of
    // the original: same header (fingerprint, revision, stats), every
    // surviving entry byte-equal to the original's. Never a panic, never
    // an entry the original run didn't write.
    #[test]
    fn truncated_checkpoints_fail_typed(cut in 0usize..400, seed in 0u64..100) {
        let truth = chain(6);
        let statuses = observe(&truth, 90, seed);
        let path = temp_path(&format!("trunc_c{cut}_s{seed}"));
        std::fs::remove_file(&path).ok();
        let opts = RobustOptions {
            checkpoint: Some(path.clone()),
            checkpoint_interval: 1,
            ..Default::default()
        };
        Tends::with_config(TendsConfig::default())
            .reconstruct_robust(&statuses, Recorder::disabled(), &opts)
            .expect("checkpointed run");
        let full = Checkpoint::load(&path).expect("load full checkpoint");
        let bytes = std::fs::read(&path).expect("checkpoint bytes");
        let cut = cut.min(bytes.len().saturating_sub(1));
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        match Checkpoint::load(&path) {
            Ok(ck) => {
                prop_assert_eq!(&ck.fingerprint, &full.fingerprint);
                prop_assert_eq!(ck.revision, full.revision);
                prop_assert_eq!(&ck.stats, &full.stats);
                prop_assert!(ck.entries.len() <= full.entries.len());
                for (id, entry) in &ck.entries {
                    prop_assert_eq!(Some(entry), full.entries.get(id));
                }
            }
            Err(
                CheckpointError::Parse(_) | CheckpointError::Format(_) | CheckpointError::Io(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    // Incremental re-estimation oracle: for a random base/append split of
    // a random observation set, warm-starting from the base run's
    // checkpoint must reproduce the fresh combined-matrix run bit for bit
    // — same edges, same scores, same candidates — while re-searching at
    // most n nodes and reporting the splice accounting. The SIMD axis
    // comes from the process environment: CI re-runs this suite under
    // `DIFFNET_SIMD=scalar`, so both the auto and scalar tiers pin the
    // same property.
    #[test]
    fn incremental_append_matches_fresh_combined_run(
        beta in 65usize..256,
        split_pct in 50usize..95,
        seed in 0u64..1000,
    ) {
        let n = 10u32;
        let truth = chain(n);
        let statuses = observe(&truth, beta, seed);
        let at = (beta * split_pct / 100).max(1);
        let (base, appended) = split_statuses(&statuses, at);
        for threads in [1usize, 4] {
            let tends = Tends::with_config(TendsConfig { threads, ..Default::default() });
            let fresh = tends
                .reconstruct_observed(&statuses, Recorder::disabled())
                .expect("fresh combined run");

            let path = temp_path(&format!("append_b{beta}_p{split_pct}_s{seed}_t{threads}"));
            std::fs::remove_file(&path).ok();
            tends
                .reconstruct_robust(
                    &base,
                    Recorder::disabled(),
                    &RobustOptions {
                        checkpoint: Some(path.clone()),
                        checkpoint_interval: 4,
                        ..Default::default()
                    },
                )
                .expect("base run");
            let rec = Recorder::new();
            let warm = tends
                .reconstruct_robust_append(
                    &statuses,
                    &appended,
                    &rec,
                    &RobustOptions {
                        checkpoint: Some(path.clone()),
                        resume: true,
                        checkpoint_interval: 4,
                        revision: 1,
                        ..Default::default()
                    },
                )
                .expect("warm append run");
            std::fs::remove_file(&path).ok();

            prop_assert!(warm.is_complete());
            prop_assert_eq!(&warm.result.graph, &fresh.graph);
            prop_assert_eq!(
                warm.result.global_score.to_bits(),
                fresh.global_score.to_bits()
            );
            for (w, f) in warm.result.node_results.iter().zip(&fresh.node_results) {
                prop_assert_eq!(&w.candidates, &f.candidates);
                prop_assert_eq!(&w.parents, &f.parents);
                prop_assert_eq!(w.score.to_bits(), f.score.to_bits());
            }
            let counters = rec.snapshot().counters;
            let dirty = counters.get("dirty_nodes").copied().unwrap_or(u64::MAX);
            let reused = counters.get("nodes_reused").copied().unwrap_or(u64::MAX);
            prop_assert!(dirty <= u64::from(n), "dirty_nodes = {dirty}");
            prop_assert_eq!(dirty + reused, u64::from(n));
            prop_assert_eq!(warm.resumed_nodes as u64, reused);
        }
    }

    // Truncating a saved status matrix at any byte is a typed error (or a
    // still-valid shorter file is impossible thanks to the count header);
    // never a panic, never a silently shorter matrix.
    #[test]
    fn truncated_status_matrices_fail_typed(cut in 0usize..2000, seed in 0u64..100) {
        let truth = chain(6);
        let statuses = observe(&truth, 70, seed);
        let path = temp_path(&format!("status_c{cut}_s{seed}"));
        diffnet_simulate::io::save_status_matrix(&statuses, &path).expect("save");
        let bytes = std::fs::read(&path).expect("status bytes");
        let cut = cut.min(bytes.len().saturating_sub(1));
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        match diffnet_simulate::io::load_status_matrix(&path) {
            // A cut inside the header comment leaves a legacy headerless
            // file with zero rows — an empty matrix, never a silently
            // shorter non-empty one.
            Ok(m) => prop_assert!(
                m == statuses || m.num_processes() == 0,
                "truncated file loaded as a {}-row matrix",
                m.num_processes()
            ),
            Err(e) => {
                // Any typed error is fine; reaching here without a panic
                // is the property. Exercise Display for coverage.
                let _ = e.to_string();
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Streamed-vs-dense oracle: over random n, β, memory budgets, thread
    // counts, and shard counts, the streamed sparse-candidate pipeline
    // must reproduce the dense-matrix pipeline bit for bit — same τ,
    // same per-node candidates and parents, same edge set. β is drawn
    // across a word boundary and up past 2048 so the pair-tile size
    // shrinks and shard boundaries land *inside* tiles, exercising the
    // partial-block filtering of the fold.
    #[test]
    fn streamed_matches_dense_across_shapes(
        n in 10u32..40,
        beta_base in 60usize..130,
        big_beta in 0usize..2,
        budget_mb in 1u64..64,
        threads_sel in 0usize..2,
        shards in 1usize..5,
        seed in 0u64..1000,
    ) {
        // big_beta pushes β past 2048 so the pair tile shrinks to 48
        // nodes and shard boundaries land inside tiles.
        let beta = beta_base + big_beta * 1992;
        let threads = [1usize, 4][threads_sel];
        let truth = chain(n);
        let statuses = observe(&truth, beta, seed);
        let budget = Some(budget_mb << 20);
        let dense = Tends::new().reconstruct(&statuses).expect("dense run");
        let streamed = Tends::with_config(TendsConfig {
            memory_budget: budget,
            threads,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("streamed run");
        prop_assert_eq!(dense.tau.to_bits(), streamed.tau.to_bits());
        prop_assert_eq!(&dense.graph, &streamed.graph);
        for (d, s) in dense.node_results.iter().zip(&streamed.node_results) {
            prop_assert_eq!(&d.candidates, &s.candidates);
            prop_assert_eq!(&d.parents, &s.parents);
            prop_assert_eq!(d.score.to_bits(), s.score.to_bits());
        }
        // Shard the same reconstruction and union the edges: must equal
        // the unsharded (and therefore the dense) edge set. Same budget
        // everywhere, so every shard computes the same τ.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for shard in diffnet_tends::plan_shards(n as usize, shards) {
            let part = Tends::with_config(TendsConfig {
                memory_budget: budget,
                shard: Some(shard),
                threads,
                ..Default::default()
            })
            .reconstruct(&statuses)
            .expect("shard run");
            prop_assert_eq!(part.tau.to_bits(), streamed.tau.to_bits());
            edges.extend(part.graph.edges());
        }
        edges.sort_unstable();
        edges.dedup();
        prop_assert_eq!(edges, dense.graph.edge_vec());
    }

    // Hostile input to the streamed (mmap-backed) column loader: any
    // byte-level truncation of a valid status file must produce a typed
    // error or a correct smaller parse — never a panic, and never a
    // silently wrong column view.
    #[test]
    fn truncated_streamed_columns_fail_typed(cut in 0usize..2000, seed in 0u64..100) {
        let truth = chain(8);
        let statuses = observe(&truth, 40, seed);
        let mut bytes = Vec::new();
        diffnet_simulate::io::write_status_matrix(&statuses, &mut bytes).expect("write");
        let path = temp_path("stream_trunc");
        let cut = cut.min(bytes.len().saturating_sub(1));
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        match diffnet_simulate::io::load_status_columns(&path) {
            Ok(cols) => prop_assert!(
                cols == statuses.columns() || cols.num_processes() == 0,
                "truncated file loaded as a {}-process column view",
                cols.num_processes()
            ),
            Err(e) => {
                let _ = e.to_string();
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
