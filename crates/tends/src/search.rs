//! Parent-set search (paper §IV-A and Algorithm 1 lines 6–20).
//!
//! For each node, TENDS forms a candidate parent set from the
//! infection-MI pruning, enumerates small candidate combinations admissible
//! under the Theorem-2 size bound, and greedily expands the parent set.
//!
//! Algorithm 1 as printed pops combinations in descending standalone-score
//! order and adds *every* one that keeps the union under the size bound —
//! which would make the final parent set the whole candidate set whenever
//! the bound permits, leaving the scoring criterion no veto. The §IV-A
//! prose instead expands with "a node combination that increases the value
//! of the current `g(v_i, F_i)` the most". Both are implemented
//! ([`GreedyStrategy`]); the improvement-driven variant is the default and
//! the literal one is kept for the ablation bench.

use crate::imi::CorrelationMatrix;
use crate::score;
use diffnet_graph::NodeId;
use diffnet_simulate::{CountsWorkspace, NodeColumns};
use std::cmp::Ordering;

/// How the greedy expansion of a node's parent set accepts combinations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GreedyStrategy {
    /// Repeatedly add the combination whose union with the current parent
    /// set yields the highest local score, accepting only strict
    /// improvements (the §IV-A description). Default.
    #[default]
    BestImprovement,
    /// The literal Algorithm-1 rule: visit combinations in descending
    /// standalone-score order and union in each one that keeps the parent
    /// set under the Theorem-2 bound.
    ScoreOrdered,
    /// Exhaustive search over *all* subsets of the candidate set (subject
    /// to the Theorem-2 bound), returning the global maximizer of
    /// `g(v_i, F_i)`. Exponential in the candidate count — intended for
    /// small candidate sets and for verifying the greedy variants'
    /// optimality gap, not for production runs.
    Exhaustive,
}

/// Tunable parameters of the parent-set search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchParams {
    /// Greedy acceptance rule.
    pub strategy: GreedyStrategy,
    /// Largest candidate combination `W` enumerated into `C_i` (the paper
    /// enumerates every subset of `P_i` admissible under Theorem 2; the
    /// cap is the §IV-D complexity control `η`).
    pub max_combo_size: usize,
    /// Keep at most this many candidates per node (the highest-correlation
    /// ones) before enumeration — the `κ ≪ n` the paper's complexity
    /// analysis assumes (§IV-D).
    ///
    /// This cap doubles as the effective regularizer when the threshold
    /// clustering is permissive: Theorem 2's size bound self-saturates
    /// (its `φ` term grows with `2^{|F_i|}`) and the penalty term cannot
    /// stop cell-splitting once parent-status combinations have only one
    /// or two instances, so `|F_i|` is in practice limited by the number
    /// of available candidates. The default of 8 matches the Theorem-2
    /// bound at the empty parent set (`log₂ δ_i ≈ 8.3` for `β = 150`).
    pub max_candidates: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            strategy: GreedyStrategy::BestImprovement,
            max_combo_size: 2,
            max_candidates: 8,
        }
    }
}

/// A scored candidate combination `W ⊆ P_i`.
#[derive(Clone, Debug)]
pub struct Combo {
    /// Member nodes, sorted.
    pub nodes: Vec<NodeId>,
    /// Standalone local score `g(v_i, W)`.
    pub score: f64,
}

/// Aggregate counters from one parent search, accumulated as plain
/// integers on the hot path (no recorder calls per combination) and
/// ingested into a `diffnet_observe::Recorder` at phase boundaries.
///
/// Every field is a pure function of the node's inputs, so per-node stats
/// — and their sums across nodes — are identical at every thread count.
/// The workspace and reference search paths maintain them identically,
/// which the equivalence oracle test asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Local-score evaluations (combinations scored, incl. the empty set).
    pub evaluations: usize,
    /// Combinations discarded by the Theorem-2 size bound
    /// `|F| ≤ log₂(φ_F + δ)`, across enumeration and greedy expansion.
    pub bound_rejections: usize,
    /// Greedy expansion rounds: scan passes for
    /// [`GreedyStrategy::BestImprovement`], accepted unions for
    /// [`GreedyStrategy::ScoreOrdered`]; 0 for
    /// [`GreedyStrategy::Exhaustive`] (no greedy loop runs).
    pub greedy_rounds: usize,
}

impl SearchStats {
    /// Field-wise sum with another stats record.
    pub fn merge(&mut self, other: &SearchStats) {
        self.evaluations += other.evaluations;
        self.bound_rejections += other.bound_rejections;
        self.greedy_rounds += other.greedy_rounds;
    }
}

/// Per-node outcome of the parent search.
#[derive(Clone, Debug)]
pub struct NodeSearchResult {
    /// The selected parent set `F_i`, sorted.
    pub parents: Vec<NodeId>,
    /// Local score `g(v_i, F_i)` of the selection.
    pub score: f64,
    /// Candidate parents that survived pruning, in descending correlation
    /// order.
    pub candidates: Vec<NodeId>,
    /// Search-effort counters for this node.
    pub stats: SearchStats,
}

/// Candidate parents of `child`: all nodes whose correlation with `child`
/// strictly exceeds `tau`, in descending correlation order, truncated to
/// `max_candidates` (Algorithm 1 lines 10–12).
pub fn candidate_parents(
    corr: &CorrelationMatrix,
    child: NodeId,
    tau: f64,
    max_candidates: usize,
) -> Vec<NodeId> {
    // Descending correlation, ascending node id as the tiebreak — a total
    // order, so the top-`max_candidates` set is unique and partial
    // selection returns exactly what a full sort + truncate would.
    fn rank(a: &(f64, NodeId), b: &(f64, NodeId)) -> Ordering {
        b.0.partial_cmp(&a.0).expect("no NaNs").then(a.1.cmp(&b.1))
    }
    let n = corr.num_nodes() as u32;
    let mut cands: Vec<(f64, NodeId)> = (0..n)
        .filter(|&j| j != child)
        .map(|j| (corr.get(child, j), j))
        .filter(|&(v, _)| v > tau)
        .collect();
    // Select the top `max_candidates` in O(n), then sort only those —
    // instead of sorting all survivors just to discard most of them.
    if cands.len() > max_candidates {
        if max_candidates == 0 {
            cands.clear();
        } else {
            cands.select_nth_unstable_by(max_candidates, rank);
            cands.truncate(max_candidates);
        }
    }
    cands.sort_unstable_by(rank);
    cands.into_iter().map(|(_, j)| j).collect()
}

/// Enumerates and scores every combination `W ⊆ candidates` with
/// `1 ≤ |W| ≤ max_combo_size` that satisfies the Theorem-2 bound
/// `|W| ≤ log₂(φ_W + δ)` (Algorithm 1 lines 13–15).
pub fn enumerate_combos(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    max_combo_size: usize,
    delta: f64,
    stats: &mut SearchStats,
) -> Vec<Combo> {
    let mut ws = CountsWorkspace::new();
    enumerate_combos_with(
        &mut ws,
        cols,
        child,
        candidates,
        max_combo_size,
        delta,
        stats,
    )
}

/// [`enumerate_combos`] on a caller-provided workspace: every combination
/// is scored through the incremental counting kernel, reusing the
/// workspace's buffers across evaluations.
pub fn enumerate_combos_with(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    max_combo_size: usize,
    delta: f64,
    stats: &mut SearchStats,
) -> Vec<Combo> {
    ws.set_base(cols, &[]);
    let mut combos = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut sorted: Vec<NodeId> = Vec::new();
    enumerate_rec(
        ws,
        cols,
        child,
        candidates,
        0,
        max_combo_size.max(1),
        delta,
        &mut stack,
        &mut sorted,
        &mut combos,
        stats,
    );
    combos
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    start: usize,
    max_size: usize,
    delta: f64,
    stack: &mut Vec<NodeId>,
    sorted: &mut Vec<NodeId>,
    out: &mut Vec<Combo>,
    stats: &mut SearchStats,
) {
    for idx in start..candidates.len() {
        stack.push(candidates[idx]);
        sorted.clear();
        sorted.extend_from_slice(stack);
        sorted.sort_unstable();
        let counts = ws.refined_counts(cols, child, sorted);
        stats.evaluations += 1;
        if score::within_bound(sorted.len(), score::phi(counts), delta) {
            out.push(Combo {
                nodes: sorted.clone(),
                score: score::local_score(counts),
            });
        } else {
            stats.bound_rejections += 1;
        }
        if stack.len() < max_size {
            enumerate_rec(
                ws,
                cols,
                child,
                candidates,
                idx + 1,
                max_size,
                delta,
                stack,
                sorted,
                out,
                stats,
            );
        }
        stack.pop();
    }
}

/// Hard ceiling on a parent set's size, independent of Theorem 2's bound.
///
/// The Theorem-2 bound `|F| ≤ log₂(φ_F + δ)` self-saturates once
/// `2^{|F|}` exceeds the number of instantiated combinations (φ grows with
/// `2^{|F|}`), so it cannot stop runaway growth by itself. Beyond
/// `2^{|F|} ≥ β` every combination holds at most one process and further
/// parents cannot change any probability estimate, so 20 parents
/// (`2^20 ≫` any realistic β) is unreachable by a score improvement and
/// only guards against pathological inputs.
const MAX_PARENTS: usize = 20;

/// Sorted union of a parent set and a combination.
fn union(f: &[NodeId], w: &[NodeId]) -> Vec<NodeId> {
    let mut u: Vec<NodeId> = f.iter().chain(w).copied().collect();
    u.sort_unstable();
    u.dedup();
    u
}

/// Runs the full per-node parent search: enumeration followed by greedy
/// expansion (Algorithm 1 lines 13–20).
///
/// Convenience wrapper over [`find_parents_with`] that builds a fresh
/// [`CountsWorkspace`]; callers searching many nodes should hold one
/// workspace and call [`find_parents_with`] directly to reuse its buffers.
pub fn find_parents(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> NodeSearchResult {
    let mut ws = CountsWorkspace::new();
    find_parents_with(&mut ws, cols, child, candidates, params)
}

/// [`find_parents`] on a caller-provided counting workspace.
///
/// Every strategy scores `g(v_i, F ∪ W)` through
/// [`CountsWorkspace::refined_counts`]: the accepted parent set `F` is
/// instantiated once per greedy round and each candidate extension only
/// refines that cached partition, with zero allocations in the steady
/// state. Results are bit-identical to [`find_parents_reference`].
pub fn find_parents_with(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> NodeSearchResult {
    let beta = cols.num_processes() as u64;
    let n2 = cols.ones(child);
    let delta = score::delta(beta, beta - n2, n2);

    let mut stats = SearchStats::default();
    ws.set_base(cols, &[]);
    let empty_score = score::local_score(ws.refined_counts(cols, child, &[]));
    stats.evaluations += 1;

    let mut combos = enumerate_combos_with(
        ws,
        cols,
        child,
        candidates,
        params.max_combo_size,
        delta,
        &mut stats,
    );

    let (parents, final_score) = match params.strategy {
        GreedyStrategy::BestImprovement => {
            greedy_best_improvement(ws, cols, child, combos, empty_score, delta, &mut stats)
        }
        GreedyStrategy::ScoreOrdered => {
            combos.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaNs"));
            greedy_score_ordered(ws, cols, child, &combos, empty_score, delta, &mut stats)
        }
        GreedyStrategy::Exhaustive => {
            exhaustive_search(ws, cols, child, candidates, empty_score, delta, &mut stats)
        }
    };

    NodeSearchResult {
        parents,
        score: final_score,
        candidates: candidates.to_vec(),
        stats,
    }
}

/// The pre-workspace implementation of [`find_parents`], counting every
/// evaluation from scratch with [`NodeColumns::combo_counts`].
///
/// Kept as the equivalence oracle for the incremental path (results must
/// stay bit-identical) and as the baseline the benchmarks compare against.
pub fn find_parents_reference(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> NodeSearchResult {
    let beta = cols.num_processes() as u64;
    let n2 = cols.ones(child);
    let delta = score::delta(beta, beta - n2, n2);

    let mut stats = SearchStats::default();
    let empty_counts = cols.combo_counts(child, &[]);
    stats.evaluations += 1;
    let empty_score = score::local_score(&empty_counts);

    let mut combos = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    enumerate_rec_reference(
        cols,
        child,
        candidates,
        0,
        params.max_combo_size.max(1),
        delta,
        &mut stack,
        &mut combos,
        &mut stats,
    );

    let (parents, final_score) = match params.strategy {
        GreedyStrategy::BestImprovement => {
            greedy_best_improvement_reference(cols, child, combos, empty_score, delta, &mut stats)
        }
        GreedyStrategy::ScoreOrdered => {
            combos.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaNs"));
            greedy_score_ordered_reference(cols, child, &combos, empty_score, delta, &mut stats)
        }
        GreedyStrategy::Exhaustive => {
            exhaustive_search_reference(cols, child, candidates, empty_score, delta, &mut stats)
        }
    };

    NodeSearchResult {
        parents,
        score: final_score,
        candidates: candidates.to_vec(),
        stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec_reference(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    start: usize,
    max_size: usize,
    delta: f64,
    stack: &mut Vec<NodeId>,
    out: &mut Vec<Combo>,
    stats: &mut SearchStats,
) {
    for idx in start..candidates.len() {
        stack.push(candidates[idx]);
        let mut w: Vec<NodeId> = stack.clone();
        w.sort_unstable();
        let counts = cols.combo_counts(child, &w);
        stats.evaluations += 1;
        if score::within_bound(w.len(), score::phi(&counts), delta) {
            out.push(Combo {
                nodes: w,
                score: score::local_score(&counts),
            });
        } else {
            stats.bound_rejections += 1;
        }
        if stack.len() < max_size {
            enumerate_rec_reference(
                cols,
                child,
                candidates,
                idx + 1,
                max_size,
                delta,
                stack,
                out,
                stats,
            );
        }
        stack.pop();
    }
}

/// The part of `w` not already in the sorted set `f`, preserving `w`'s
/// (sorted) order — the extension the workspace refines along. Empty iff
/// `w ⊆ f`.
fn extension_into(f: &[NodeId], w: &[NodeId], extra: &mut Vec<NodeId>) {
    extra.clear();
    extra.extend(w.iter().filter(|p| f.binary_search(p).is_err()));
}

/// §IV-A greedy: each round, evaluate `g(v_i, F ∪ W)` for every remaining
/// admissible combination and take the best strict improvement.
///
/// The round's parent set `F` is instantiated in the workspace once; each
/// combination is scored by refining along its novel nodes only.
fn greedy_best_improvement(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    mut combos: Vec<Combo>,
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    const EPS: f64 = 1e-9;
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;
    let mut extra: Vec<NodeId> = Vec::new();

    while !combos.is_empty() {
        stats.greedy_rounds += 1;
        ws.set_base(cols, &f);
        let mut best: Option<(usize, f64)> = None;
        let mut keep = vec![true; combos.len()];
        for (idx, combo) in combos.iter().enumerate() {
            extension_into(&f, &combo.nodes, &mut extra);
            if extra.is_empty() {
                // W ⊆ F already: it can never change the score again.
                keep[idx] = false;
                continue;
            }
            if f.len() + extra.len() > MAX_PARENTS {
                continue;
            }
            let counts = ws.refined_counts(cols, child, &extra);
            stats.evaluations += 1;
            if !score::within_bound(f.len() + extra.len(), score::phi(counts), delta) {
                stats.bound_rejections += 1;
                continue;
            }
            let s = score::local_score(counts);
            if s > current + EPS && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((idx, s));
            }
        }
        match best {
            Some((idx, s)) => {
                f = union(&f, &combos[idx].nodes);
                current = s;
                keep[idx] = false;
                let mut it = keep.iter();
                combos.retain(|_| *it.next().expect("keep covers combos"));
            }
            None => break,
        }
    }
    (f, current)
}

/// The reference counterpart of [`greedy_best_improvement`], recounting
/// every union from scratch.
fn greedy_best_improvement_reference(
    cols: &NodeColumns,
    child: NodeId,
    mut combos: Vec<Combo>,
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    const EPS: f64 = 1e-9;
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;

    while !combos.is_empty() {
        stats.greedy_rounds += 1;
        let mut best: Option<(usize, Vec<NodeId>, f64)> = None;
        let mut keep = vec![true; combos.len()];
        for (idx, combo) in combos.iter().enumerate() {
            let u = union(&f, &combo.nodes);
            if u.len() == f.len() {
                keep[idx] = false;
                continue;
            }
            if u.len() > MAX_PARENTS {
                continue;
            }
            let counts = cols.combo_counts(child, &u);
            stats.evaluations += 1;
            if !score::within_bound(u.len(), score::phi(&counts), delta) {
                stats.bound_rejections += 1;
                continue;
            }
            let s = score::local_score(&counts);
            if s > current + EPS && best.as_ref().is_none_or(|&(_, _, bs)| s > bs) {
                best = Some((idx, u, s));
            }
        }
        match best {
            Some((idx, u, s)) => {
                f = u;
                current = s;
                keep[idx] = false;
                let mut it = keep.iter();
                combos.retain(|_| *it.next().expect("keep covers combos"));
            }
            None => break,
        }
    }
    (f, current)
}

/// Literal Algorithm-1 greedy: pop combinations in descending standalone
/// score; union in each one whose union satisfies the Theorem-2 bound.
fn greedy_score_ordered(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    combos_sorted: &[Combo],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;
    let mut extra: Vec<NodeId> = Vec::new();
    ws.set_base(cols, &f);
    for combo in combos_sorted {
        extension_into(&f, &combo.nodes, &mut extra);
        if extra.is_empty() || f.len() + extra.len() > MAX_PARENTS {
            continue;
        }
        let counts = ws.refined_counts(cols, child, &extra);
        stats.evaluations += 1;
        if score::within_bound(f.len() + extra.len(), score::phi(counts), delta) {
            stats.greedy_rounds += 1;
            let s = score::local_score(counts);
            f = union(&f, &combo.nodes);
            current = s;
            ws.set_base(cols, &f);
        } else {
            stats.bound_rejections += 1;
        }
    }
    (f, current)
}

/// The reference counterpart of [`greedy_score_ordered`].
fn greedy_score_ordered_reference(
    cols: &NodeColumns,
    child: NodeId,
    combos_sorted: &[Combo],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;
    for combo in combos_sorted {
        let u = union(&f, &combo.nodes);
        if u.len() == f.len() || u.len() > MAX_PARENTS {
            continue;
        }
        let counts = cols.combo_counts(child, &u);
        stats.evaluations += 1;
        if score::within_bound(u.len(), score::phi(&counts), delta) {
            stats.greedy_rounds += 1;
            f = u;
            current = score::local_score(&counts);
        } else {
            stats.bound_rejections += 1;
        }
    }
    (f, current)
}

/// Exhaustive maximization of the local score over all admissible subsets
/// of the candidate set.
///
/// Subsets larger than [`MAX_PARENTS`] or violating the Theorem-2 bound
/// are skipped. With `c` candidates this evaluates up to `2^c` subsets;
/// callers should keep `max_candidates` small (≤ ~16).
fn exhaustive_search(
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    let c = candidates.len();
    assert!(
        c < 26,
        "exhaustive search over {c} candidates is intractable"
    );
    ws.set_base(cols, &[]);
    let mut best: (Vec<NodeId>, f64) = (Vec::new(), empty_score);
    let mut subset: Vec<NodeId> = Vec::new();
    for mask in 1u32..(1u32 << c) {
        if (mask.count_ones() as usize) > MAX_PARENTS {
            continue;
        }
        subset.clear();
        subset.extend(
            (0..c)
                .filter(|&t| mask & (1 << t) != 0)
                .map(|t| candidates[t]),
        );
        subset.sort_unstable();
        let counts = ws.refined_counts(cols, child, &subset);
        stats.evaluations += 1;
        if !score::within_bound(subset.len(), score::phi(counts), delta) {
            stats.bound_rejections += 1;
            continue;
        }
        let s = score::local_score(counts);
        if s > best.1 {
            best = (subset.clone(), s);
        }
    }
    best
}

/// The reference counterpart of [`exhaustive_search`].
fn exhaustive_search_reference(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> (Vec<NodeId>, f64) {
    let c = candidates.len();
    assert!(
        c < 26,
        "exhaustive search over {c} candidates is intractable"
    );
    let mut best: (Vec<NodeId>, f64) = (Vec::new(), empty_score);
    for mask in 1u32..(1u32 << c) {
        if (mask.count_ones() as usize) > MAX_PARENTS {
            continue;
        }
        let mut subset: Vec<NodeId> = (0..c)
            .filter(|&t| mask & (1 << t) != 0)
            .map(|t| candidates[t])
            .collect();
        subset.sort_unstable();
        let counts = cols.combo_counts(child, &subset);
        stats.evaluations += 1;
        if !score::within_bound(subset.len(), score::phi(&counts), delta) {
            stats.bound_rejections += 1;
            continue;
        }
        let s = score::local_score(&counts);
        if s > best.1 {
            best = (subset, s);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imi::{CorrelationMatrix, CorrelationMeasure};
    use diffnet_simulate::StatusMatrix;

    /// A status matrix where node 2's infection is (mostly) the OR of
    /// nodes 0 and 1, and node 3 is independent noise.
    fn or_gate_matrix() -> StatusMatrix {
        let mut rows = Vec::new();
        // Deterministic pseudo-random pattern over 160 processes.
        let mut state = 0xABCDEFu64;
        let mut bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) & 1 == 1
        };
        for _ in 0..160 {
            let a = bit();
            let b = bit();
            let noise = bit() && bit() && bit(); // rare flip
            let c = (a || b) ^ noise;
            let d = bit();
            rows.push(vec![a, b, c, d]);
        }
        StatusMatrix::from_rows(&rows)
    }

    #[test]
    fn candidate_parents_ranked_and_thresholded() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let cands = candidate_parents(&corr, 2, 0.0, 16);
        // Parents 0 and 1 must rank above the noise node 3.
        assert!(cands.contains(&0) && cands.contains(&1), "cands {cands:?}");
        let pos3 = cands.iter().position(|&c| c == 3);
        for &p in &[0u32, 1] {
            let pp = cands.iter().position(|&c| c == p).expect("present");
            if let Some(p3) = pos3 {
                assert!(pp < p3, "true parent {p} ranked after noise");
            }
        }
    }

    #[test]
    fn candidate_parents_respects_cap() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let cands = candidate_parents(&corr, 2, -1.0, 2);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn enumerate_respects_size_cap() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let delta = score::delta(160, 160 - cols.ones(2), cols.ones(2));
        let mut stats = SearchStats::default();
        let combos = enumerate_combos(&cols, 2, &[0, 1, 3], 2, delta, &mut stats);
        assert!(combos.iter().all(|c| c.nodes.len() <= 2));
        // 3 singles + 3 pairs.
        assert_eq!(combos.len(), 6);
        assert!(stats.evaluations >= 6);
        assert_eq!(
            stats.evaluations,
            combos.len() + stats.bound_rejections,
            "every enumerated combo is either admitted or bound-rejected"
        );
    }

    #[test]
    fn find_parents_recovers_or_gate() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams::default();
        let res = find_parents(&cols, 2, &[0, 1, 3], &params);
        assert_eq!(
            res.parents,
            vec![0, 1],
            "should select exactly the OR inputs"
        );
        assert!(res.score > score::local_score(&cols.combo_counts(2, &[])));
    }

    #[test]
    fn find_parents_of_independent_node_is_empty() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams::default();
        let res = find_parents(&cols, 3, &[0, 1, 2], &params);
        assert!(
            res.parents.is_empty(),
            "independent node must keep an empty parent set, got {:?}",
            res.parents
        );
    }

    #[test]
    fn score_ordered_is_more_permissive() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let best = find_parents(&cols, 2, &[0, 1, 3], &SearchParams::default());
        let literal = find_parents(
            &cols,
            2,
            &[0, 1, 3],
            &SearchParams {
                strategy: GreedyStrategy::ScoreOrdered,
                ..Default::default()
            },
        );
        assert!(literal.parents.len() >= best.parents.len());
        for p in &best.parents {
            // not necessarily a subset in general, but for this clean case
            // the literal rule should also pick the true parents
            assert!(literal.parents.contains(p), "literal missed parent {p}");
        }
    }

    #[test]
    fn exhaustive_finds_the_or_gate_exactly() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams {
            strategy: GreedyStrategy::Exhaustive,
            ..Default::default()
        };
        let res = find_parents(&cols, 2, &[0, 1, 3], &params);
        assert_eq!(res.parents, vec![0, 1]);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_candidate_sets() {
        // The optimality check the Exhaustive strategy exists for: on this
        // clean workload the default greedy should attain the global
        // optimum of the local score.
        let m = or_gate_matrix();
        let cols = m.columns();
        for child in 0..4u32 {
            let candidates: Vec<NodeId> = (0..4u32).filter(|&c| c != child).collect();
            let greedy = find_parents(&cols, child, &candidates, &SearchParams::default());
            let exact = find_parents(
                &cols,
                child,
                &candidates,
                &SearchParams {
                    strategy: GreedyStrategy::Exhaustive,
                    ..Default::default()
                },
            );
            assert!(
                greedy.score >= exact.score - 1e-6,
                "node {child}: greedy {} vs exhaustive {}",
                greedy.score,
                exact.score
            );
        }
    }

    #[test]
    fn exhaustive_score_dominates_both_greedy_variants() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let candidates = [0u32, 1, 3];
        let exact = find_parents(
            &cols,
            2,
            &candidates,
            &SearchParams {
                strategy: GreedyStrategy::Exhaustive,
                ..Default::default()
            },
        );
        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
        ] {
            let g = find_parents(
                &cols,
                2,
                &candidates,
                &SearchParams {
                    strategy,
                    ..Default::default()
                },
            );
            assert!(
                exact.score >= g.score - 1e-9,
                "{strategy:?} beat exhaustive: {} vs {}",
                g.score,
                exact.score
            );
        }
    }

    #[test]
    fn empty_candidates_yield_empty_parents() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let res = find_parents(&cols, 2, &[], &SearchParams::default());
        assert!(res.parents.is_empty());
        assert_eq!(res.stats.evaluations, 1, "only the empty set is scored");
        assert_eq!(res.stats.bound_rejections, 0);
        assert_eq!(res.stats.greedy_rounds, 0, "nothing to expand");
    }

    #[test]
    fn workspace_path_matches_reference_for_all_strategies() {
        // The contract of the incremental counting engine: every strategy
        // must produce bit-identical results (parents, scores, and the
        // evaluation count) to the from-scratch reference implementation.
        let m = or_gate_matrix();
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
            GreedyStrategy::Exhaustive,
        ] {
            for child in 0..4u32 {
                let candidates: Vec<NodeId> = (0..4u32).filter(|&c| c != child).collect();
                for max_combo_size in [1, 2, 3] {
                    let params = SearchParams {
                        strategy,
                        max_combo_size,
                        ..Default::default()
                    };
                    let new = find_parents_with(&mut ws, &cols, child, &candidates, &params);
                    let old = find_parents_reference(&cols, child, &candidates, &params);
                    assert_eq!(new.parents, old.parents, "{strategy:?} child {child}");
                    assert_eq!(
                        new.score.to_bits(),
                        old.score.to_bits(),
                        "{strategy:?} child {child}: scores must be bit-identical"
                    );
                    assert_eq!(
                        new.stats, old.stats,
                        "{strategy:?} child {child}: all search counters must match"
                    );
                    assert_eq!(new.candidates, old.candidates);
                }
            }
        }
    }

    #[test]
    fn candidate_selection_matches_full_sort() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        for child in 0..4u32 {
            for cap in 0..5usize {
                // Oracle: full sort + truncate, the pre-selection behavior.
                let mut all: Vec<(f64, NodeId)> = (0..4u32)
                    .filter(|&j| j != child)
                    .map(|j| (corr.get(child, j), j))
                    .filter(|&(v, _)| v > -1.0)
                    .collect();
                all.sort_unstable_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("no NaNs").then(a.1.cmp(&b.1))
                });
                all.truncate(cap);
                let expect: Vec<NodeId> = all.into_iter().map(|(_, j)| j).collect();
                assert_eq!(
                    candidate_parents(&corr, child, -1.0, cap),
                    expect,
                    "child {child} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn union_helper() {
        assert_eq!(union(&[1, 3], &[2, 3]), vec![1, 2, 3]);
        assert_eq!(union(&[], &[5]), vec![5]);
        assert_eq!(union(&[4], &[]), vec![4]);
    }
}
