//! Parent-set search (paper §IV-A and Algorithm 1 lines 6–20).
//!
//! For each node, TENDS forms a candidate parent set from the
//! infection-MI pruning, enumerates small candidate combinations admissible
//! under the Theorem-2 size bound, and greedily expands the parent set.
//!
//! Algorithm 1 as printed pops combinations in descending standalone-score
//! order and adds *every* one that keeps the union under the size bound —
//! which would make the final parent set the whole candidate set whenever
//! the bound permits, leaving the scoring criterion no veto. The §IV-A
//! prose instead expands with "a node combination that increases the value
//! of the current `g(v_i, F_i)` the most". Both are implemented
//! ([`GreedyStrategy`]); the improvement-driven variant is the default and
//! the literal one is kept for the ablation bench.
//!
//! Every evaluated subset is memoized in a [`ScoreCache`] keyed on its
//! candidate-subset bitmask, so greedy rounds (and the exhaustive
//! strategy) that re-probe a subset already scored — round one re-scores
//! every enumerated combination verbatim — reuse the score and `φ` instead
//! of re-refining the workspace partition. Cached reuse is bit-identical
//! to recounting, which the reference-oracle test pins down.

use crate::imi::CorrelationMatrix;
use crate::score::{self, CachedScore, ScoreCache, ScoreCacheStats};
use diffnet_graph::NodeId;
use diffnet_simulate::{ComboSizeError, CountsWorkspace, NodeColumns, MAX_TABULATED_PARENTS};
use std::cmp::Ordering;
use std::fmt;

/// The counting surface the reference search drivers consume: everything a
/// per-node search needs is `β`, the child's ones count, and `N_ijk`
/// combination tables. [`NodeColumns`] implements it by word-parallel
/// bitset counting; [`JointTable`] implements it by *marginalizing* a
/// persisted joint contingency table — same integers, no column data —
/// which is what lets an append run replay unchanged nodes byte-identically
/// without re-reading history.
pub trait CountSource {
    /// Number of processes `β`.
    fn num_processes(&self) -> usize;
    /// Number of processes where `child` is infected.
    fn ones(&self, child: NodeId) -> u64;
    /// Counts `N_ijk` for `child` over the ordered `parents`
    /// (see [`NodeColumns::combo_counts`] for the layout contract).
    fn combo_counts(
        &self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<Vec<[u64; 2]>, ComboSizeError>;
}

impl CountSource for NodeColumns {
    fn num_processes(&self) -> usize {
        NodeColumns::num_processes(self)
    }

    fn ones(&self, child: NodeId) -> u64 {
        NodeColumns::ones(self, child)
    }

    fn combo_counts(
        &self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<Vec<[u64; 2]>, ComboSizeError> {
        NodeColumns::combo_counts(self, child, parents)
    }
}

/// A child's full joint contingency table over its (id-sorted) candidate
/// set: entry `J` counts the processes where the candidates' statuses form
/// combination `J` (candidate `t`'s status is bit `t`) split by the
/// child's status `[uninfected, infected]`.
///
/// Two properties make it the warm state of incremental re-estimation:
///
/// * **Any subset's counts marginalize out exactly.** For `W ⊆`
///   candidates, summing cells over the dropped bits yields the same
///   integers [`NodeColumns::combo_counts`] would count from the columns,
///   so every score evaluated from the table is the bit-identical float.
/// * **Tables add over processes.** Row-disjoint process sets contribute
///   independent counts, so `table(base ∪ appended) = table(base) +
///   table(appended)` cell-wise — an append folds in a table built from
///   the new columns alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointTable {
    child: NodeId,
    candidates: Vec<NodeId>,
    cells: Vec<[u64; 2]>,
}

impl JointTable {
    /// Builds the table from status columns. `candidates` may be in any
    /// order (the ranked list is fine); the table is keyed on the sorted
    /// copy.
    ///
    /// # Errors
    ///
    /// [`ComboSizeError`] if the candidate set is too large to tabulate.
    pub fn from_cols(
        cols: &NodeColumns,
        child: NodeId,
        candidates: &[NodeId],
    ) -> Result<JointTable, ComboSizeError> {
        let mut sorted = candidates.to_vec();
        sorted.sort_unstable();
        let cells = NodeColumns::combo_counts(cols, child, &sorted)?;
        Ok(JointTable {
            child,
            candidates: sorted,
            cells,
        })
    }

    /// Rebuilds a table from persisted parts. `candidates` must be sorted
    /// and `cells.len()` must be `2^|candidates|`.
    pub fn from_parts(
        child: NodeId,
        candidates: Vec<NodeId>,
        cells: Vec<[u64; 2]>,
    ) -> Result<JointTable, String> {
        if !candidates.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("node {child}: table candidates are not sorted"));
        }
        if cells.len() != 1usize << candidates.len() {
            return Err(format!(
                "node {child}: table has {} cells, {} candidates need {}",
                cells.len(),
                candidates.len(),
                1usize << candidates.len()
            ));
        }
        Ok(JointTable {
            child,
            candidates,
            cells,
        })
    }

    /// The child this table counts.
    pub fn child(&self) -> NodeId {
        self.child
    }

    /// The id-sorted candidate set the table is keyed on.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// The raw cells (combination-major, `[uninfected, infected]`).
    pub fn cells(&self) -> &[[u64; 2]] {
        &self.cells
    }

    /// Folds another table over the same child and candidate set into this
    /// one — the append step. Integer addition, exact at any order.
    ///
    /// # Panics
    ///
    /// Panics if the tables disagree on child or candidate set.
    pub fn merge(&mut self, other: &JointTable) {
        assert_eq!(self.child, other.child, "tables count different children");
        assert_eq!(
            self.candidates, other.candidates,
            "tables cover different candidate sets"
        );
        for (c, o) in self.cells.iter_mut().zip(other.cells.iter()) {
            c[0] += o[0];
            c[1] += o[1];
        }
    }
}

impl CountSource for JointTable {
    fn num_processes(&self) -> usize {
        self.cells.iter().map(|c| (c[0] + c[1]) as usize).sum()
    }

    fn ones(&self, child: NodeId) -> u64 {
        debug_assert_eq!(child, self.child, "table serves a single child");
        self.cells.iter().map(|c| c[1]).sum()
    }

    fn combo_counts(
        &self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<Vec<[u64; 2]>, ComboSizeError> {
        debug_assert_eq!(child, self.child, "table serves a single child");
        if parents.len() > MAX_TABULATED_PARENTS {
            return Err(ComboSizeError {
                parents: parents.len(),
            });
        }
        // Positions of the queried parents among the table's candidates.
        // Search subsets are always drawn from the candidate list, which
        // replay callers verify is unchanged before consulting the table.
        let pos: Vec<usize> = parents
            .iter()
            .map(|p| {
                self.candidates
                    .binary_search(p)
                    .expect("replayed subsets are drawn from the candidate set")
            })
            .collect();
        let mut out = vec![[0u64; 2]; 1usize << parents.len()];
        for (j, cell) in self.cells.iter().enumerate() {
            let mut k = 0usize;
            for (t, &p) in pos.iter().enumerate() {
                k |= ((j >> p) & 1) << t;
            }
            out[k][0] += cell[0];
            out[k][1] += cell[1];
        }
        Ok(out)
    }
}

/// How the greedy expansion of a node's parent set accepts combinations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GreedyStrategy {
    /// Repeatedly add the combination whose union with the current parent
    /// set yields the highest local score, accepting only strict
    /// improvements (the §IV-A description). Default.
    #[default]
    BestImprovement,
    /// The literal Algorithm-1 rule: visit combinations in descending
    /// standalone-score order and union in each one that keeps the parent
    /// set under the Theorem-2 bound.
    ScoreOrdered,
    /// Exhaustive search over *all* subsets of the candidate set (subject
    /// to the Theorem-2 bound), returning the global maximizer of
    /// `g(v_i, F_i)`. Exponential in the candidate count — intended for
    /// small candidate sets and for verifying the greedy variants'
    /// optimality gap, not for production runs.
    Exhaustive,
}

/// The parent search hit a configuration its counting kernels cannot
/// tabulate: some evaluated parent set (or, for
/// [`GreedyStrategy::Exhaustive`], the candidate set itself) exceeds
/// [`diffnet_simulate::MAX_TABULATED_PARENTS`].
///
/// Unreachable under [`SearchParams::default`]; hostile or degenerate
/// configurations (a huge `max_combo_size` over a huge candidate list)
/// surface here as a typed error instead of a process abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchError {
    /// The child node whose search failed.
    pub child: NodeId,
    /// The underlying kernel error.
    pub source: ComboSizeError,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parent search for node {}: {}", self.child, self.source)
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Tunable parameters of the parent-set search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchParams {
    /// Greedy acceptance rule.
    pub strategy: GreedyStrategy,
    /// Largest candidate combination `W` enumerated into `C_i` (the paper
    /// enumerates every subset of `P_i` admissible under Theorem 2; the
    /// cap is the §IV-D complexity control `η`).
    pub max_combo_size: usize,
    /// Keep at most this many candidates per node (the highest-correlation
    /// ones) before enumeration — the `κ ≪ n` the paper's complexity
    /// analysis assumes (§IV-D).
    ///
    /// This cap doubles as the effective regularizer when the threshold
    /// clustering is permissive: Theorem 2's size bound self-saturates
    /// (its `φ` term grows with `2^{|F_i|}`) and the penalty term cannot
    /// stop cell-splitting once parent-status combinations have only one
    /// or two instances, so `|F_i|` is in practice limited by the number
    /// of available candidates. The default of 8 matches the Theorem-2
    /// bound at the empty parent set (`log₂ δ_i ≈ 8.3` for `β = 150`).
    pub max_candidates: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            strategy: GreedyStrategy::BestImprovement,
            max_combo_size: 2,
            max_candidates: 8,
        }
    }
}

/// A scored candidate combination `W ⊆ P_i`.
#[derive(Clone, Debug)]
pub struct Combo {
    /// Member nodes, sorted.
    pub nodes: Vec<NodeId>,
    /// Standalone local score `g(v_i, W)`.
    pub score: f64,
}

/// Aggregate counters from one parent search, accumulated as plain
/// integers on the hot path (no recorder calls per combination) and
/// ingested into a `diffnet_observe::Recorder` at phase boundaries.
///
/// Every field is a pure function of the node's inputs, so per-node stats
/// — and their sums across nodes — are identical at every thread count.
/// The workspace and reference search paths maintain them identically,
/// which the equivalence oracle test asserts. (Score-cache hits count as
/// evaluations here; the hit/miss split lives in [`ScoreCacheStats`],
/// outside this struct, precisely so the oracle equality holds.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Local-score evaluations (combinations scored, incl. the empty set).
    pub evaluations: usize,
    /// Combinations discarded by the Theorem-2 size bound
    /// `|F| ≤ log₂(φ_F + δ)`, across enumeration and greedy expansion.
    pub bound_rejections: usize,
    /// Greedy expansion rounds: scan passes for
    /// [`GreedyStrategy::BestImprovement`], accepted unions for
    /// [`GreedyStrategy::ScoreOrdered`]; 0 for
    /// [`GreedyStrategy::Exhaustive`] (no greedy loop runs).
    pub greedy_rounds: usize,
}

impl SearchStats {
    /// Field-wise sum with another stats record.
    pub fn merge(&mut self, other: &SearchStats) {
        self.evaluations += other.evaluations;
        self.bound_rejections += other.bound_rejections;
        self.greedy_rounds += other.greedy_rounds;
    }
}

/// Per-worker scratch state for the parent search: the incremental
/// counting workspace plus the cross-round score cache. One instance
/// serves many nodes in sequence, retaining both structures' buffers.
#[derive(Clone, Debug, Default)]
pub struct SearchScratch {
    /// Incremental `N_ijk` counting engine.
    pub ws: CountsWorkspace,
    /// Cross-round `g(v_i, F ∪ W)` memo (reset per child).
    pub cache: ScoreCache,
}

impl SearchScratch {
    /// Fresh scratch state.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// Per-node outcome of the parent search.
#[derive(Clone, Debug)]
pub struct NodeSearchResult {
    /// The selected parent set `F_i`, sorted.
    pub parents: Vec<NodeId>,
    /// Local score `g(v_i, F_i)` of the selection.
    pub score: f64,
    /// Candidate parents that survived pruning, in descending correlation
    /// order.
    pub candidates: Vec<NodeId>,
    /// Search-effort counters for this node.
    pub stats: SearchStats,
    /// Score-cache hit/miss counters for this node (all zero on the
    /// cacheless reference path).
    pub cache_stats: ScoreCacheStats,
}

/// Candidate parents of `child`: all nodes whose correlation with `child`
/// strictly exceeds `tau`, in descending correlation order, truncated to
/// `max_candidates` (Algorithm 1 lines 10–12).
pub fn candidate_parents(
    corr: &CorrelationMatrix,
    child: NodeId,
    tau: f64,
    max_candidates: usize,
) -> Vec<NodeId> {
    // Descending correlation, ascending node id as the tiebreak — a total
    // order (total_cmp, so a NaN smuggled into the matrix cannot panic the
    // comparator), so the top-`max_candidates` set is unique and partial
    // selection returns exactly what a full sort + truncate would.
    fn rank(a: &(f64, NodeId), b: &(f64, NodeId)) -> Ordering {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
    }
    let n = corr.num_nodes() as u32;
    let mut cands: Vec<(f64, NodeId)> = (0..n)
        .filter(|&j| j != child)
        .map(|j| (corr.get(child, j), j))
        .filter(|&(v, _)| v > tau)
        .collect();
    // Select the top `max_candidates` in O(n), then sort only those —
    // instead of sorting all survivors just to discard most of them.
    if cands.len() > max_candidates {
        if max_candidates == 0 {
            cands.clear();
        } else {
            cands.select_nth_unstable_by(max_candidates, rank);
            cands.truncate(max_candidates);
        }
    }
    cands.sort_unstable_by(rank);
    cands.into_iter().map(|(_, j)| j).collect()
}

/// The subset bitmask of `nodes` over the candidate list: bit `t` set iff
/// `candidates[t] ∈ nodes`. Callers must ensure `nodes ⊆ candidates` and
/// `candidates.len() ≤ 64` (the cache is disabled otherwise).
fn subset_mask(nodes: &[NodeId], candidates: &[NodeId]) -> u64 {
    let mut mask = 0u64;
    for &v in nodes {
        let pos = candidates
            .iter()
            .position(|&c| c == v)
            .expect("scored subsets are drawn from the candidate list");
        mask |= 1u64 << pos;
    }
    mask
}

/// Scores one subset through the cache: a hit reuses the memoized
/// `(score, φ)` pair; a miss refines the workspace partition along
/// `extra` (the subset minus the workspace's current base) and memoizes
/// the result. `key` is `None` when caching is disabled (more than 64
/// candidates). Bit-identical to always recounting.
fn eval_cached(
    cache: &mut ScoreCache,
    ws: &mut CountsWorkspace,
    cols: &NodeColumns,
    child: NodeId,
    extra: &[NodeId],
    key: Option<u64>,
) -> Result<CachedScore, ComboSizeError> {
    if let Some(k) = key {
        if let Some(cached) = cache.get(k) {
            return Ok(cached);
        }
    }
    let counts = ws.refined_counts(cols, child, extra)?;
    let value = CachedScore {
        score: score::local_score(counts),
        phi: score::phi(counts),
    };
    if let Some(k) = key {
        cache.insert(k, value);
    }
    Ok(value)
}

/// Enumerates and scores every combination `W ⊆ candidates` with
/// `1 ≤ |W| ≤ max_combo_size` that satisfies the Theorem-2 bound
/// `|W| ≤ log₂(φ_W + δ)` (Algorithm 1 lines 13–15).
///
/// # Errors
///
/// Returns [`ComboSizeError`] if `max_combo_size` admits a combination too
/// large to tabulate (more than
/// [`diffnet_simulate::MAX_TABULATED_PARENTS`] nodes).
pub fn enumerate_combos(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    max_combo_size: usize,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<Vec<Combo>, ComboSizeError> {
    let mut scratch = SearchScratch::new();
    enumerate_combos_with(
        &mut scratch,
        cols,
        child,
        candidates,
        max_combo_size,
        delta,
        stats,
    )
}

/// [`enumerate_combos`] on caller-provided scratch state: every
/// combination is scored through the incremental counting kernel (reusing
/// the workspace's buffers across evaluations) and memoized in the score
/// cache for the greedy rounds that follow.
pub fn enumerate_combos_with(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    max_combo_size: usize,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<Vec<Combo>, ComboSizeError> {
    scratch.ws.set_base(cols, &[])?;
    let cache_on = candidates.len() <= 64;
    let mut combos = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut sorted: Vec<NodeId> = Vec::new();
    enumerate_rec(
        scratch,
        cols,
        child,
        candidates,
        cache_on,
        0,
        max_combo_size.max(1),
        delta,
        &mut stack,
        &mut sorted,
        &mut combos,
        stats,
    )?;
    Ok(combos)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    cache_on: bool,
    start: usize,
    max_size: usize,
    delta: f64,
    stack: &mut Vec<NodeId>,
    sorted: &mut Vec<NodeId>,
    out: &mut Vec<Combo>,
    stats: &mut SearchStats,
) -> Result<(), ComboSizeError> {
    for idx in start..candidates.len() {
        stack.push(candidates[idx]);
        sorted.clear();
        sorted.extend_from_slice(stack);
        sorted.sort_unstable();
        let key = cache_on.then(|| subset_mask(sorted, candidates));
        let eval = eval_cached(
            &mut scratch.cache,
            &mut scratch.ws,
            cols,
            child,
            sorted,
            key,
        )?;
        stats.evaluations += 1;
        if score::within_bound(sorted.len(), eval.phi, delta) {
            out.push(Combo {
                nodes: sorted.clone(),
                score: eval.score,
            });
        } else {
            stats.bound_rejections += 1;
        }
        if stack.len() < max_size {
            enumerate_rec(
                scratch,
                cols,
                child,
                candidates,
                cache_on,
                idx + 1,
                max_size,
                delta,
                stack,
                sorted,
                out,
                stats,
            )?;
        }
        stack.pop();
    }
    Ok(())
}

/// Hard ceiling on a parent set's size, independent of Theorem 2's bound.
///
/// The Theorem-2 bound `|F| ≤ log₂(φ_F + δ)` self-saturates once
/// `2^{|F|}` exceeds the number of instantiated combinations (φ grows with
/// `2^{|F|}`), so it cannot stop runaway growth by itself. Beyond
/// `2^{|F|} ≥ β` every combination holds at most one process and further
/// parents cannot change any probability estimate, so 20 parents
/// (`2^20 ≫` any realistic β) is unreachable by a score improvement and
/// only guards against pathological inputs.
const MAX_PARENTS: usize = 20;

/// Largest candidate set [`GreedyStrategy::Exhaustive`] will sweep: the
/// subset loop is `2^c` iterations.
const MAX_EXHAUSTIVE_CANDIDATES: usize = 25;

/// Sorted union of a parent set and a combination.
fn union(f: &[NodeId], w: &[NodeId]) -> Vec<NodeId> {
    let mut u: Vec<NodeId> = f.iter().chain(w).copied().collect();
    u.sort_unstable();
    u.dedup();
    u
}

/// Runs the full per-node parent search: enumeration followed by greedy
/// expansion (Algorithm 1 lines 13–20).
///
/// Convenience wrapper over [`find_parents_with`] that builds a fresh
/// [`SearchScratch`]; callers searching many nodes should hold one scratch
/// and call [`find_parents_with`] directly to reuse its buffers.
///
/// # Errors
///
/// Returns [`SearchError`] when the configuration asks the counting
/// kernels to tabulate a parent set beyond
/// [`diffnet_simulate::MAX_TABULATED_PARENTS`] — unreachable with
/// [`SearchParams::default`], reachable with hostile parameters.
pub fn find_parents(
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> Result<NodeSearchResult, SearchError> {
    let mut scratch = SearchScratch::new();
    find_parents_with(&mut scratch, cols, child, candidates, params)
}

/// [`find_parents`] on caller-provided scratch state.
///
/// Every strategy scores `g(v_i, F ∪ W)` through the score cache backed by
/// [`CountsWorkspace::refined_counts`]: the accepted parent set `F` is
/// instantiated once per greedy round, each candidate extension refines
/// that cached partition — unless the subset was already scored this
/// search, in which case the memoized `(score, φ)` pair is reused and the
/// refinement skipped. Results are bit-identical to
/// [`find_parents_reference`], including all [`SearchStats`] counters.
pub fn find_parents_with(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> Result<NodeSearchResult, SearchError> {
    let wrap = |source: ComboSizeError| SearchError { child, source };
    let beta = cols.num_processes() as u64;
    let n2 = cols.ones(child);
    let delta = score::delta(beta, beta - n2, n2);
    let cache_on = candidates.len() <= 64;

    let mut stats = SearchStats::default();
    scratch.cache.reset();
    scratch.ws.set_base(cols, &[]).map_err(wrap)?;
    let empty = eval_cached(
        &mut scratch.cache,
        &mut scratch.ws,
        cols,
        child,
        &[],
        cache_on.then_some(0),
    )
    .map_err(wrap)?;
    let empty_score = empty.score;
    stats.evaluations += 1;

    let mut combos = enumerate_combos_with(
        scratch,
        cols,
        child,
        candidates,
        params.max_combo_size,
        delta,
        &mut stats,
    )
    .map_err(wrap)?;

    let (parents, final_score) = match params.strategy {
        GreedyStrategy::BestImprovement => greedy_best_improvement(
            scratch,
            cols,
            child,
            candidates,
            combos,
            empty_score,
            delta,
            &mut stats,
        )
        .map_err(wrap)?,
        GreedyStrategy::ScoreOrdered => {
            combos.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaNs"));
            greedy_score_ordered(
                scratch,
                cols,
                child,
                candidates,
                &combos,
                empty_score,
                delta,
                &mut stats,
            )
            .map_err(wrap)?
        }
        GreedyStrategy::Exhaustive => exhaustive_search(
            scratch,
            cols,
            child,
            candidates,
            empty_score,
            delta,
            &mut stats,
        )
        .map_err(wrap)?,
    };

    Ok(NodeSearchResult {
        parents,
        score: final_score,
        candidates: candidates.to_vec(),
        stats,
        cache_stats: scratch.cache.stats(),
    })
}

/// The pre-workspace implementation of [`find_parents`], counting every
/// evaluation from scratch through a [`CountSource`] and no score cache.
///
/// Kept as the equivalence oracle for the incremental path (results must
/// stay bit-identical) and as the baseline the benchmarks compare against.
/// Generic over the count source so the same driver that oracles the
/// workspace path also *replays* a persisted [`JointTable`] during
/// incremental re-estimation: `parents`, `score`, and all [`SearchStats`]
/// counters are pure functions of the counts, so a table that marginalizes
/// to the columns' integers reproduces the search bit-for-bit
/// (`cache_stats` stay zero on this cacheless path).
pub fn find_parents_reference<C: CountSource + ?Sized>(
    cols: &C,
    child: NodeId,
    candidates: &[NodeId],
    params: &SearchParams,
) -> Result<NodeSearchResult, SearchError> {
    let wrap = |source: ComboSizeError| SearchError { child, source };
    let beta = cols.num_processes() as u64;
    let n2 = cols.ones(child);
    let delta = score::delta(beta, beta - n2, n2);

    let mut stats = SearchStats::default();
    let empty_counts = cols.combo_counts(child, &[]).map_err(wrap)?;
    stats.evaluations += 1;
    let empty_score = score::local_score(&empty_counts);

    let mut combos = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    enumerate_rec_reference(
        cols,
        child,
        candidates,
        0,
        params.max_combo_size.max(1),
        delta,
        &mut stack,
        &mut combos,
        &mut stats,
    )
    .map_err(wrap)?;

    let (parents, final_score) = match params.strategy {
        GreedyStrategy::BestImprovement => {
            greedy_best_improvement_reference(cols, child, combos, empty_score, delta, &mut stats)
                .map_err(wrap)?
        }
        GreedyStrategy::ScoreOrdered => {
            combos.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaNs"));
            greedy_score_ordered_reference(cols, child, &combos, empty_score, delta, &mut stats)
                .map_err(wrap)?
        }
        GreedyStrategy::Exhaustive => {
            exhaustive_search_reference(cols, child, candidates, empty_score, delta, &mut stats)
                .map_err(wrap)?
        }
    };

    Ok(NodeSearchResult {
        parents,
        score: final_score,
        candidates: candidates.to_vec(),
        stats,
        cache_stats: ScoreCacheStats::default(),
    })
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec_reference<C: CountSource + ?Sized>(
    cols: &C,
    child: NodeId,
    candidates: &[NodeId],
    start: usize,
    max_size: usize,
    delta: f64,
    stack: &mut Vec<NodeId>,
    out: &mut Vec<Combo>,
    stats: &mut SearchStats,
) -> Result<(), ComboSizeError> {
    for idx in start..candidates.len() {
        stack.push(candidates[idx]);
        let mut w: Vec<NodeId> = stack.clone();
        w.sort_unstable();
        let counts = cols.combo_counts(child, &w)?;
        stats.evaluations += 1;
        if score::within_bound(w.len(), score::phi(&counts), delta) {
            out.push(Combo {
                nodes: w,
                score: score::local_score(&counts),
            });
        } else {
            stats.bound_rejections += 1;
        }
        if stack.len() < max_size {
            enumerate_rec_reference(
                cols,
                child,
                candidates,
                idx + 1,
                max_size,
                delta,
                stack,
                out,
                stats,
            )?;
        }
        stack.pop();
    }
    Ok(())
}

/// The part of `w` not already in the sorted set `f`, preserving `w`'s
/// (sorted) order — the extension the workspace refines along. Empty iff
/// `w ⊆ f`.
fn extension_into(f: &[NodeId], w: &[NodeId], extra: &mut Vec<NodeId>) {
    extra.clear();
    extra.extend(w.iter().filter(|p| f.binary_search(p).is_err()));
}

/// How a combination's evaluation is obtained within one batched greedy
/// round (see [`greedy_best_improvement`]).
enum RoundEval {
    /// Scored already: a cache hit, or a multi-node extension evaluated
    /// through the ordinary incremental path during classification.
    Ready(CachedScore),
    /// A novel single-node extension: entry `t` of the round's batched
    /// workspace pass.
    Batched(usize),
    /// Same cache key as an extension already in the batch; resolved from
    /// the cache after the flush, so the hit/miss split matches the
    /// sequential order (first occurrence misses, later ones hit).
    Dup(u64),
}

/// §IV-A greedy: each round, evaluate `g(v_i, F ∪ W)` for every remaining
/// admissible combination and take the best strict improvement.
///
/// The round's parent set `F` is instantiated in the workspace once and
/// combinations are scored in two passes. Pass one classifies each
/// combination in order: unions already memoized come straight from the
/// score cache, multi-node extensions refine the workspace immediately,
/// and every novel single-node extension — the overwhelmingly common case,
/// since `W \ F` shrinks as `F` grows — is queued. The queue is then
/// flushed through [`CountsWorkspace::refined_counts_single_batch`], which
/// streams the cached base partition **once** for the whole batch instead
/// of copy-refine-tabulating per combination. Pass two replays the
/// sequential acceptance logic in combination order on the collected
/// evaluations.
///
/// Scores, `SearchStats`, score-cache hit/miss totals, and workspace
/// refinement counts are all bit-identical to the sequential path (and so
/// to [`find_parents_reference`]) — the reference-oracle test pins this.
#[allow(clippy::too_many_arguments)]
fn greedy_best_improvement(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    mut combos: Vec<Combo>,
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    const EPS: f64 = 1e-9;
    let SearchScratch { ws, cache } = scratch;
    let cache_on = candidates.len() <= 64;
    let mut f: Vec<NodeId> = Vec::new();
    let mut mask_f = 0u64;
    let mut current = empty_score;
    let mut extra: Vec<NodeId> = Vec::new();

    while !combos.is_empty() {
        stats.greedy_rounds += 1;
        ws.set_base(cols, &f)?;
        let mut best: Option<(usize, f64)> = None;
        let mut keep = vec![true; combos.len()];

        // Pass 1: classify. `pending` records (combo index, |F ∪ W|, how
        // to obtain the evaluation).
        let mut pending: Vec<(usize, usize, RoundEval)> = Vec::new();
        let mut batch_nodes: Vec<NodeId> = Vec::new();
        let mut batch_keys: Vec<Option<u64>> = Vec::new();
        for (idx, combo) in combos.iter().enumerate() {
            extension_into(&f, &combo.nodes, &mut extra);
            if extra.is_empty() {
                // W ⊆ F already: it can never change the score again.
                keep[idx] = false;
                continue;
            }
            if f.len() + extra.len() > MAX_PARENTS {
                continue;
            }
            let key = cache_on.then(|| mask_f | subset_mask(&extra, candidates));
            let state = match key {
                Some(k) => {
                    if let Some(cached) = cache.get(k) {
                        RoundEval::Ready(cached)
                    } else if extra.len() == 1 {
                        if batch_keys.contains(&Some(k)) {
                            RoundEval::Dup(k)
                        } else {
                            batch_nodes.push(extra[0]);
                            batch_keys.push(Some(k));
                            RoundEval::Batched(batch_nodes.len() - 1)
                        }
                    } else {
                        let counts = ws.refined_counts(cols, child, &extra)?;
                        let value = CachedScore {
                            score: score::local_score(counts),
                            phi: score::phi(counts),
                        };
                        cache.insert(k, value);
                        RoundEval::Ready(value)
                    }
                }
                None if extra.len() == 1 => {
                    // Cache off: batch every single, duplicates included —
                    // the sequential path would recount each one too.
                    batch_nodes.push(extra[0]);
                    batch_keys.push(None);
                    RoundEval::Batched(batch_nodes.len() - 1)
                }
                None => {
                    let counts = ws.refined_counts(cols, child, &extra)?;
                    RoundEval::Ready(CachedScore {
                        score: score::local_score(counts),
                        phi: score::phi(counts),
                    })
                }
            };
            pending.push((idx, f.len() + extra.len(), state));
        }

        // Flush: one streaming pass over the base partition scores every
        // queued single-node extension.
        let mut batch_evals: Vec<CachedScore> = Vec::with_capacity(batch_nodes.len());
        ws.refined_counts_single_batch(cols, child, &batch_nodes, |t, counts| {
            let value = CachedScore {
                score: score::local_score(counts),
                phi: score::phi(counts),
            };
            if let Some(k) = batch_keys[t] {
                cache.insert(k, value);
            }
            batch_evals.push(value);
        });

        // Pass 2: the sequential acceptance logic, in combination order.
        for (idx, union_len, state) in pending {
            let eval = match state {
                RoundEval::Ready(value) => value,
                RoundEval::Batched(t) => batch_evals[t],
                RoundEval::Dup(k) => cache.get(k).expect("batched twin was inserted at flush"),
            };
            stats.evaluations += 1;
            if !score::within_bound(union_len, eval.phi, delta) {
                stats.bound_rejections += 1;
                continue;
            }
            if eval.score > current + EPS && best.is_none_or(|(_, bs)| eval.score > bs) {
                best = Some((idx, eval.score));
            }
        }

        match best {
            Some((idx, s)) => {
                if cache_on {
                    mask_f |= subset_mask(&combos[idx].nodes, candidates);
                }
                f = union(&f, &combos[idx].nodes);
                current = s;
                keep[idx] = false;
                let mut it = keep.iter();
                combos.retain(|_| *it.next().expect("keep covers combos"));
            }
            None => break,
        }
    }
    Ok((f, current))
}

/// The reference counterpart of [`greedy_best_improvement`], recounting
/// every union from scratch.
fn greedy_best_improvement_reference<C: CountSource + ?Sized>(
    cols: &C,
    child: NodeId,
    mut combos: Vec<Combo>,
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    const EPS: f64 = 1e-9;
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;

    while !combos.is_empty() {
        stats.greedy_rounds += 1;
        let mut best: Option<(usize, Vec<NodeId>, f64)> = None;
        let mut keep = vec![true; combos.len()];
        for (idx, combo) in combos.iter().enumerate() {
            let u = union(&f, &combo.nodes);
            if u.len() == f.len() {
                keep[idx] = false;
                continue;
            }
            if u.len() > MAX_PARENTS {
                continue;
            }
            let counts = cols.combo_counts(child, &u)?;
            stats.evaluations += 1;
            if !score::within_bound(u.len(), score::phi(&counts), delta) {
                stats.bound_rejections += 1;
                continue;
            }
            let s = score::local_score(&counts);
            if s > current + EPS && best.as_ref().is_none_or(|&(_, _, bs)| s > bs) {
                best = Some((idx, u, s));
            }
        }
        match best {
            Some((idx, u, s)) => {
                f = u;
                current = s;
                keep[idx] = false;
                let mut it = keep.iter();
                combos.retain(|_| *it.next().expect("keep covers combos"));
            }
            None => break,
        }
    }
    Ok((f, current))
}

/// Literal Algorithm-1 greedy: pop combinations in descending standalone
/// score; union in each one whose union satisfies the Theorem-2 bound.
#[allow(clippy::too_many_arguments)]
fn greedy_score_ordered(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    combos_sorted: &[Combo],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    let cache_on = candidates.len() <= 64;
    let mut f: Vec<NodeId> = Vec::new();
    let mut mask_f = 0u64;
    let mut current = empty_score;
    let mut extra: Vec<NodeId> = Vec::new();
    scratch.ws.set_base(cols, &f)?;
    for combo in combos_sorted {
        extension_into(&f, &combo.nodes, &mut extra);
        if extra.is_empty() || f.len() + extra.len() > MAX_PARENTS {
            continue;
        }
        let key = cache_on.then(|| mask_f | subset_mask(&extra, candidates));
        let eval = eval_cached(
            &mut scratch.cache,
            &mut scratch.ws,
            cols,
            child,
            &extra,
            key,
        )?;
        stats.evaluations += 1;
        if score::within_bound(f.len() + extra.len(), eval.phi, delta) {
            stats.greedy_rounds += 1;
            if cache_on {
                mask_f |= subset_mask(&combo.nodes, candidates);
            }
            f = union(&f, &combo.nodes);
            current = eval.score;
            scratch.ws.set_base(cols, &f)?;
        } else {
            stats.bound_rejections += 1;
        }
    }
    Ok((f, current))
}

/// The reference counterpart of [`greedy_score_ordered`].
fn greedy_score_ordered_reference<C: CountSource + ?Sized>(
    cols: &C,
    child: NodeId,
    combos_sorted: &[Combo],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    let mut f: Vec<NodeId> = Vec::new();
    let mut current = empty_score;
    for combo in combos_sorted {
        let u = union(&f, &combo.nodes);
        if u.len() == f.len() || u.len() > MAX_PARENTS {
            continue;
        }
        let counts = cols.combo_counts(child, &u)?;
        stats.evaluations += 1;
        if score::within_bound(u.len(), score::phi(&counts), delta) {
            stats.greedy_rounds += 1;
            f = u;
            current = score::local_score(&counts);
        } else {
            stats.bound_rejections += 1;
        }
    }
    Ok((f, current))
}

/// Exhaustive maximization of the local score over all admissible subsets
/// of the candidate set.
///
/// Subsets larger than [`MAX_PARENTS`] or violating the Theorem-2 bound
/// are skipped. With `c` candidates this evaluates up to `2^c` subsets;
/// candidate sets beyond [`MAX_EXHAUSTIVE_CANDIDATES`] are rejected as a
/// typed error. Subsets already scored during enumeration (every `W` with
/// `|W| ≤ max_combo_size`) come straight from the score cache.
fn exhaustive_search(
    scratch: &mut SearchScratch,
    cols: &NodeColumns,
    child: NodeId,
    candidates: &[NodeId],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    let c = candidates.len();
    if c > MAX_EXHAUSTIVE_CANDIDATES {
        return Err(ComboSizeError { parents: c });
    }
    scratch.ws.set_base(cols, &[])?;
    let mut best: (Vec<NodeId>, f64) = (Vec::new(), empty_score);
    let mut subset: Vec<NodeId> = Vec::new();
    for mask in 1u32..(1u32 << c) {
        if (mask.count_ones() as usize) > MAX_PARENTS {
            continue;
        }
        subset.clear();
        subset.extend(
            (0..c)
                .filter(|&t| mask & (1 << t) != 0)
                .map(|t| candidates[t]),
        );
        subset.sort_unstable();
        // The loop mask is exactly the candidate-subset bitmask the cache
        // keys on (bit `t` ⇔ `candidates[t]`).
        let eval = eval_cached(
            &mut scratch.cache,
            &mut scratch.ws,
            cols,
            child,
            &subset,
            Some(mask as u64),
        )?;
        stats.evaluations += 1;
        if !score::within_bound(subset.len(), eval.phi, delta) {
            stats.bound_rejections += 1;
            continue;
        }
        if eval.score > best.1 {
            best = (subset.clone(), eval.score);
        }
    }
    Ok(best)
}

/// The reference counterpart of [`exhaustive_search`].
fn exhaustive_search_reference<C: CountSource + ?Sized>(
    cols: &C,
    child: NodeId,
    candidates: &[NodeId],
    empty_score: f64,
    delta: f64,
    stats: &mut SearchStats,
) -> Result<(Vec<NodeId>, f64), ComboSizeError> {
    let c = candidates.len();
    if c > MAX_EXHAUSTIVE_CANDIDATES {
        return Err(ComboSizeError { parents: c });
    }
    let mut best: (Vec<NodeId>, f64) = (Vec::new(), empty_score);
    for mask in 1u32..(1u32 << c) {
        if (mask.count_ones() as usize) > MAX_PARENTS {
            continue;
        }
        let mut subset: Vec<NodeId> = (0..c)
            .filter(|&t| mask & (1 << t) != 0)
            .map(|t| candidates[t])
            .collect();
        subset.sort_unstable();
        let counts = cols.combo_counts(child, &subset)?;
        stats.evaluations += 1;
        if !score::within_bound(subset.len(), score::phi(&counts), delta) {
            stats.bound_rejections += 1;
            continue;
        }
        let s = score::local_score(&counts);
        if s > best.1 {
            best = (subset, s);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imi::{CorrelationMatrix, CorrelationMeasure};
    use diffnet_simulate::StatusMatrix;

    /// A status matrix where node 2's infection is (mostly) the OR of
    /// nodes 0 and 1, and node 3 is independent noise.
    fn or_gate_matrix() -> StatusMatrix {
        let mut rows = Vec::new();
        // Deterministic pseudo-random pattern over 160 processes.
        let mut state = 0xABCDEFu64;
        let mut bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) & 1 == 1
        };
        for _ in 0..160 {
            let a = bit();
            let b = bit();
            let noise = bit() && bit() && bit(); // rare flip
            let c = (a || b) ^ noise;
            let d = bit();
            rows.push(vec![a, b, c, d]);
        }
        StatusMatrix::from_rows(&rows)
    }

    #[test]
    fn candidate_parents_ranked_and_thresholded() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let cands = candidate_parents(&corr, 2, 0.0, 16);
        // Parents 0 and 1 must rank above the noise node 3.
        assert!(cands.contains(&0) && cands.contains(&1), "cands {cands:?}");
        let pos3 = cands.iter().position(|&c| c == 3);
        for &p in &[0u32, 1] {
            let pp = cands.iter().position(|&c| c == p).expect("present");
            if let Some(p3) = pos3 {
                assert!(pp < p3, "true parent {p} ranked after noise");
            }
        }
    }

    #[test]
    fn candidate_parents_respects_cap() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let cands = candidate_parents(&corr, 2, -1.0, 2);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn enumerate_respects_size_cap() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let delta = score::delta(160, 160 - cols.ones(2), cols.ones(2));
        let mut stats = SearchStats::default();
        let combos = enumerate_combos(&cols, 2, &[0, 1, 3], 2, delta, &mut stats).expect("fits");
        assert!(combos.iter().all(|c| c.nodes.len() <= 2));
        // 3 singles + 3 pairs.
        assert_eq!(combos.len(), 6);
        assert!(stats.evaluations >= 6);
        assert_eq!(
            stats.evaluations,
            combos.len() + stats.bound_rejections,
            "every enumerated combo is either admitted or bound-rejected"
        );
    }

    #[test]
    fn find_parents_recovers_or_gate() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams::default();
        let res = find_parents(&cols, 2, &[0, 1, 3], &params).expect("search fits");
        assert_eq!(
            res.parents,
            vec![0, 1],
            "should select exactly the OR inputs"
        );
        assert!(res.score > score::local_score(&cols.combo_counts(2, &[]).expect("small")));
    }

    #[test]
    fn find_parents_of_independent_node_is_empty() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams::default();
        let res = find_parents(&cols, 3, &[0, 1, 2], &params).expect("search fits");
        assert!(
            res.parents.is_empty(),
            "independent node must keep an empty parent set, got {:?}",
            res.parents
        );
    }

    #[test]
    fn score_ordered_is_more_permissive() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let best = find_parents(&cols, 2, &[0, 1, 3], &SearchParams::default()).expect("fits");
        let literal = find_parents(
            &cols,
            2,
            &[0, 1, 3],
            &SearchParams {
                strategy: GreedyStrategy::ScoreOrdered,
                ..Default::default()
            },
        )
        .expect("fits");
        assert!(literal.parents.len() >= best.parents.len());
        for p in &best.parents {
            // not necessarily a subset in general, but for this clean case
            // the literal rule should also pick the true parents
            assert!(literal.parents.contains(p), "literal missed parent {p}");
        }
    }

    #[test]
    fn exhaustive_finds_the_or_gate_exactly() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let params = SearchParams {
            strategy: GreedyStrategy::Exhaustive,
            ..Default::default()
        };
        let res = find_parents(&cols, 2, &[0, 1, 3], &params).expect("search fits");
        assert_eq!(res.parents, vec![0, 1]);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_candidate_sets() {
        // The optimality check the Exhaustive strategy exists for: on this
        // clean workload the default greedy should attain the global
        // optimum of the local score.
        let m = or_gate_matrix();
        let cols = m.columns();
        for child in 0..4u32 {
            let candidates: Vec<NodeId> = (0..4u32).filter(|&c| c != child).collect();
            let greedy =
                find_parents(&cols, child, &candidates, &SearchParams::default()).expect("fits");
            let exact = find_parents(
                &cols,
                child,
                &candidates,
                &SearchParams {
                    strategy: GreedyStrategy::Exhaustive,
                    ..Default::default()
                },
            )
            .expect("fits");
            assert!(
                greedy.score >= exact.score - 1e-6,
                "node {child}: greedy {} vs exhaustive {}",
                greedy.score,
                exact.score
            );
        }
    }

    #[test]
    fn exhaustive_score_dominates_both_greedy_variants() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let candidates = [0u32, 1, 3];
        let exact = find_parents(
            &cols,
            2,
            &candidates,
            &SearchParams {
                strategy: GreedyStrategy::Exhaustive,
                ..Default::default()
            },
        )
        .expect("fits");
        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
        ] {
            let g = find_parents(
                &cols,
                2,
                &candidates,
                &SearchParams {
                    strategy,
                    ..Default::default()
                },
            )
            .expect("fits");
            assert!(
                exact.score >= g.score - 1e-9,
                "{strategy:?} beat exhaustive: {} vs {}",
                g.score,
                exact.score
            );
        }
    }

    #[test]
    fn empty_candidates_yield_empty_parents() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let res = find_parents(&cols, 2, &[], &SearchParams::default()).expect("fits");
        assert!(res.parents.is_empty());
        assert_eq!(res.stats.evaluations, 1, "only the empty set is scored");
        assert_eq!(res.stats.bound_rejections, 0);
        assert_eq!(res.stats.greedy_rounds, 0, "nothing to expand");
    }

    #[test]
    fn workspace_path_matches_reference_for_all_strategies() {
        // The contract of the incremental counting engine and the score
        // cache: every strategy must produce bit-identical results
        // (parents, scores, and every SearchStats counter) to the
        // from-scratch, cacheless reference implementation.
        let m = or_gate_matrix();
        let cols = m.columns();
        let mut scratch = SearchScratch::new();
        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
            GreedyStrategy::Exhaustive,
        ] {
            for child in 0..4u32 {
                let candidates: Vec<NodeId> = (0..4u32).filter(|&c| c != child).collect();
                for max_combo_size in [1, 2, 3] {
                    let params = SearchParams {
                        strategy,
                        max_combo_size,
                        ..Default::default()
                    };
                    let new = find_parents_with(&mut scratch, &cols, child, &candidates, &params)
                        .expect("fits");
                    let old =
                        find_parents_reference(&cols, child, &candidates, &params).expect("fits");
                    assert_eq!(new.parents, old.parents, "{strategy:?} child {child}");
                    assert_eq!(
                        new.score.to_bits(),
                        old.score.to_bits(),
                        "{strategy:?} child {child}: scores must be bit-identical"
                    );
                    assert_eq!(
                        new.stats, old.stats,
                        "{strategy:?} child {child}: all search counters must match"
                    );
                    assert_eq!(new.candidates, old.candidates);
                    assert_eq!(
                        old.cache_stats,
                        ScoreCacheStats::default(),
                        "reference path must not touch a cache"
                    );
                }
            }
        }
    }

    #[test]
    fn score_cache_hits_on_greedy_rounds() {
        // Round one of the greedy re-scores every enumerated combination
        // verbatim, so any search that expands at least once must hit.
        let m = or_gate_matrix();
        let cols = m.columns();
        let res = find_parents(&cols, 2, &[0, 1, 3], &SearchParams::default()).expect("fits");
        assert!(!res.parents.is_empty(), "precondition: expansion happened");
        assert!(
            res.cache_stats.hits > 0,
            "greedy round one must reuse enumeration scores, stats {:?}",
            res.cache_stats
        );
        assert!(res.cache_stats.misses > 0, "distinct subsets must miss");
        // Every evaluation is exactly one hit or one miss.
        assert_eq!(
            res.cache_stats.hits + res.cache_stats.misses,
            res.stats.evaluations as u64
        );
    }

    #[test]
    fn exhaustive_hits_cache_for_enumerated_combos() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let res = find_parents(
            &cols,
            2,
            &[0, 1, 3],
            &SearchParams {
                strategy: GreedyStrategy::Exhaustive,
                ..Default::default()
            },
        )
        .expect("fits");
        // Enumeration scored all 6 subsets of size ≤ 2; the exhaustive
        // sweep re-visits them.
        assert!(res.cache_stats.hits >= 6, "stats {:?}", res.cache_stats);
    }

    #[test]
    fn hostile_combo_size_is_a_typed_error_not_a_panic() {
        let m = StatusMatrix::new(4, 40);
        let cols = m.columns();
        let candidates: Vec<NodeId> = (0..30).collect();
        // Enumeration path: a max_combo_size that admits 26-node subsets.
        let err = find_parents(
            &cols,
            39,
            &candidates,
            &SearchParams {
                max_combo_size: 30,
                max_candidates: 30,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.child, 39);
        assert_eq!(err.source.parents, 26);
        assert!(err.to_string().contains("node 39"));
        // Reference path agrees.
        let ref_err = find_parents_reference(
            &cols,
            39,
            &candidates,
            &SearchParams {
                max_combo_size: 30,
                max_candidates: 30,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(ref_err, err);
        // Exhaustive path: the candidate set itself is too large.
        let ex_err = find_parents(
            &cols,
            39,
            &candidates,
            &SearchParams {
                strategy: GreedyStrategy::Exhaustive,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(ex_err.source.parents, 30);
    }

    #[test]
    fn candidate_selection_matches_full_sort() {
        let m = or_gate_matrix();
        let corr = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        for child in 0..4u32 {
            for cap in 0..5usize {
                // Oracle: full sort + truncate, the pre-selection behavior.
                let mut all: Vec<(f64, NodeId)> = (0..4u32)
                    .filter(|&j| j != child)
                    .map(|j| (corr.get(child, j), j))
                    .filter(|&(v, _)| v > -1.0)
                    .collect();
                all.sort_unstable_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("no NaNs").then(a.1.cmp(&b.1))
                });
                all.truncate(cap);
                let expect: Vec<NodeId> = all.into_iter().map(|(_, j)| j).collect();
                assert_eq!(
                    candidate_parents(&corr, child, -1.0, cap),
                    expect,
                    "child {child} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn union_helper() {
        assert_eq!(union(&[1, 3], &[2, 3]), vec![1, 2, 3]);
        assert_eq!(union(&[], &[5]), vec![5]);
        assert_eq!(union(&[4], &[]), vec![4]);
    }

    #[test]
    fn joint_table_marginalizes_to_direct_counts() {
        let m = or_gate_matrix();
        let cols = m.columns();
        let table = JointTable::from_cols(&cols, 2, &[3, 0, 1]).expect("fits");
        assert_eq!(table.candidates(), &[0, 1, 3], "keyed on the sorted set");
        assert_eq!(CountSource::num_processes(&table), 160);
        assert_eq!(CountSource::ones(&table, 2), cols.ones(2));
        // Every subset of the candidate set marginalizes to the integers
        // the column kernel counts, including the empty set.
        let subsets: &[&[NodeId]] = &[&[], &[0], &[1], &[3], &[0, 1], &[0, 3], &[1, 3], &[0, 1, 3]];
        for &s in subsets {
            assert_eq!(
                CountSource::combo_counts(&table, 2, s).unwrap(),
                cols.combo_counts(2, s).unwrap(),
                "subset {s:?}"
            );
        }
    }

    #[test]
    fn merged_joint_tables_replay_the_combined_search_bit_identically() {
        // Split the OR-gate processes into base and appended halves; the
        // merged per-half tables must drive the reference search to the
        // same result as the workspace search over the combined columns.
        let m = or_gate_matrix();
        let all: Vec<Vec<bool>> = (0..160)
            .map(|l| (0..4).map(|v| m.get(l, v)).collect())
            .collect();
        let base = StatusMatrix::from_rows(&all[..111]);
        let appended = StatusMatrix::from_rows(&all[111..]);
        let (base_cols, app_cols, cols) = (base.columns(), appended.columns(), m.columns());

        // A deliberately non-sorted ranked candidate list: replay must
        // respect ranked order for greedy tie-breaking.
        let ranked: Vec<NodeId> = vec![1, 0, 3];
        let mut table = JointTable::from_cols(&base_cols, 2, &ranked).expect("fits");
        table.merge(&JointTable::from_cols(&app_cols, 2, &ranked).expect("fits"));
        assert_eq!(
            table,
            JointTable::from_cols(&cols, 2, &ranked).expect("fits")
        );

        for strategy in [
            GreedyStrategy::BestImprovement,
            GreedyStrategy::ScoreOrdered,
            GreedyStrategy::Exhaustive,
        ] {
            let params = SearchParams {
                strategy,
                ..SearchParams::default()
            };
            let mut scratch = SearchScratch::new();
            let ws = find_parents_with(&mut scratch, &cols, 2, &ranked, &params).unwrap();
            let replay = find_parents_reference(&table, 2, &ranked, &params).unwrap();
            assert_eq!(replay.parents, ws.parents, "{strategy:?}");
            assert_eq!(
                replay.score.to_bits(),
                ws.score.to_bits(),
                "{strategy:?} score must be bit-identical"
            );
            assert_eq!(replay.stats, ws.stats, "{strategy:?}");
            assert_eq!(replay.candidates, ws.candidates);
        }
    }

    #[test]
    fn joint_table_from_parts_validates_shape() {
        assert!(JointTable::from_parts(2, vec![0, 1], vec![[1, 0]; 4]).is_ok());
        assert!(
            JointTable::from_parts(2, vec![1, 0], vec![[1, 0]; 4]).is_err(),
            "unsorted candidates"
        );
        assert!(
            JointTable::from_parts(2, vec![0, 1], vec![[1, 0]; 3]).is_err(),
            "wrong cell count"
        );
    }

    #[test]
    fn subset_mask_uses_candidate_positions() {
        let candidates = [7u32, 3, 9, 1];
        assert_eq!(subset_mask(&[], &candidates), 0);
        assert_eq!(subset_mask(&[7], &candidates), 0b0001);
        assert_eq!(subset_mask(&[1, 9], &candidates), 0b1100);
        assert_eq!(subset_mask(&[3, 7, 1, 9], &candidates), 0b1111);
    }
}
