//! Versioned on-disk checkpoints for long reconstructions.
//!
//! A checkpoint persists the per-node parent-search results completed so
//! far, so an interrupted `Tends` run can resume without redoing them. The
//! file is the deterministic JSON dialect of `diffnet-observe`:
//!
//! ```json
//! {
//!   "format": "diffnet-checkpoint",
//!   "version": 1,
//!   "fingerprint": "9f86d081884c7d65",
//!   "nodes": {
//!     "0": {"parents": [3], "score_bits": "c01199999999999a", ...},
//!     "2": {...}
//!   }
//! }
//! ```
//!
//! Three properties make resume *bit-identical* to an uninterrupted run:
//!
//! * each node's search result is a pure function of its id (given the
//!   status columns, τ and candidate sets), so skipping completed nodes
//!   cannot change the remaining ones;
//! * scores are stored as the hex of their IEEE-754 bits (`score_bits`),
//!   not as decimal text, so restoring cannot round;
//! * the per-node effort counters (evaluations, cache hits, workspace
//!   refinements, …) are stored alongside the parents, so summed
//!   run-report counters include the work the *original* run did.
//!
//! The `fingerprint` hashes everything the stored results depend on —
//! matrix dimensions, τ, the search configuration, and every candidate
//! list. Resuming against different inputs or config is a typed
//! [`CheckpointError::Mismatch`], not silent corruption. `version` gates
//! the schema itself; unknown versions are refused.

use crate::score::ScoreCacheStats;
use crate::search::{NodeSearchResult, SearchStats};
use diffnet_graph::NodeId;
use diffnet_observe::{Json, ParseError};
use diffnet_simulate::WorkspaceStats;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Schema identifier in the `format` field.
pub const FORMAT: &str = "diffnet-checkpoint";
/// Current schema version.
pub const VERSION: u64 = 1;

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not valid JSON; carries the byte offset of the damage.
    Parse(ParseError),
    /// Valid JSON that is not a checkpoint we can use (wrong format tag,
    /// unknown version, missing or ill-typed field).
    Format(String),
    /// The checkpoint was written for different inputs or configuration.
    Mismatch {
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found} does not match this run ({expected}): \
                 it was written for different inputs or configuration"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ParseError> for CheckpointError {
    fn from(e: ParseError) -> Self {
        CheckpointError::Parse(e)
    }
}

/// One completed node's search outcome, as persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointEntry {
    /// The selected parent set, sorted.
    pub parents: Vec<NodeId>,
    /// Local score of the selection (restored bit-exactly).
    pub score: f64,
    /// Search-effort counters of the original search.
    pub stats: SearchStats,
    /// Score-cache counters of the original search.
    pub cache_stats: ScoreCacheStats,
    /// Counting-workspace activity the original search performed.
    pub ws: WorkspaceStats,
}

impl CheckpointEntry {
    /// Builds an entry from a finished node search and the workspace
    /// activity it performed.
    pub fn from_result(res: &NodeSearchResult, ws: WorkspaceStats) -> CheckpointEntry {
        CheckpointEntry {
            parents: res.parents.clone(),
            score: res.score,
            stats: res.stats,
            cache_stats: res.cache_stats,
            ws,
        }
    }

    /// Reconstitutes the [`NodeSearchResult`] this entry was taken from.
    /// `candidates` is recomputed by the resuming run (it is covered by
    /// the fingerprint, so it matches what the original search saw).
    pub fn into_result(self, candidates: Vec<NodeId>) -> NodeSearchResult {
        NodeSearchResult {
            parents: self.parents,
            score: self.score,
            candidates,
            stats: self.stats,
            cache_stats: self.cache_stats,
        }
    }
}

/// An in-memory checkpoint: the completed nodes plus the fingerprint of
/// the run they belong to.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing run (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Completed nodes, keyed by id.
    pub entries: BTreeMap<NodeId, CheckpointEntry>,
}

impl Checkpoint {
    /// An empty checkpoint for the given run fingerprint.
    pub fn new(fingerprint: u64) -> Checkpoint {
        Checkpoint {
            fingerprint,
            entries: BTreeMap::new(),
        }
    }

    /// Serializes to the versioned JSON schema (nodes in ascending id
    /// order, scores as IEEE-754 bit strings).
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("format", FORMAT);
        root.push("version", VERSION);
        root.push("fingerprint", format!("{:016x}", self.fingerprint));
        let mut nodes = Json::object();
        for (&id, e) in &self.entries {
            let mut entry = Json::object();
            entry.push(
                "parents",
                Json::Arr(
                    e.parents
                        .iter()
                        .map(|&p| Json::from(u64::from(p)))
                        .collect(),
                ),
            );
            entry.push("score_bits", format!("{:016x}", e.score.to_bits()));
            entry.push("evaluations", e.stats.evaluations);
            entry.push("bound_rejections", e.stats.bound_rejections);
            entry.push("greedy_rounds", e.stats.greedy_rounds);
            entry.push("cache_hits", e.cache_stats.hits);
            entry.push("cache_misses", e.cache_stats.misses);
            entry.push("ws_refinements", e.ws.refinements);
            entry.push("ws_rebases", e.ws.rebases);
            nodes.push(id.to_string(), entry);
        }
        root.push("nodes", nodes);
        root
    }

    /// Parses the JSON schema back. Fails with a typed error on a wrong
    /// format tag, an unknown version, or any missing/ill-typed field.
    pub fn from_json(root: &Json) -> Result<Checkpoint, CheckpointError> {
        let format = root
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Format("missing \"format\" tag".into()))?;
        if format != FORMAT {
            return Err(CheckpointError::Format(format!(
                "format {format:?}, expected {FORMAT:?}"
            )));
        }
        let version = root
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| CheckpointError::Format("missing \"version\"".into()))?;
        if version != VERSION as f64 {
            return Err(CheckpointError::Format(format!(
                "unknown version {version}, this build reads version {VERSION}"
            )));
        }
        let fingerprint = root
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| CheckpointError::Format("missing or bad \"fingerprint\"".into()))?;

        let mut entries = BTreeMap::new();
        let nodes = root
            .get("nodes")
            .and_then(Json::as_obj)
            .ok_or_else(|| CheckpointError::Format("missing \"nodes\" object".into()))?;
        for (key, value) in nodes {
            let id: NodeId = key
                .parse()
                .map_err(|_| CheckpointError::Format(format!("bad node id {key:?}")))?;
            entries.insert(id, parse_entry(key, value)?);
        }
        Ok(Checkpoint {
            fingerprint,
            entries,
        })
    }

    /// Writes the checkpoint atomically (temp sibling + rename), so a
    /// crash mid-write leaves the previous checkpoint intact.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let text = self.to_json().to_pretty();
        diffnet_graph::io::save_atomic(path, |w| w.write_all(text.as_bytes()))?;
        Ok(())
    }

    /// Loads and validates a checkpoint file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        let root = diffnet_observe::parse_json(&text)?;
        Checkpoint::from_json(&root)
    }
}

fn entry_u64(node: &str, value: &Json, field: &str) -> Result<u64, CheckpointError> {
    value
        .get(field)
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| {
            CheckpointError::Format(format!("node {node}: missing or bad field {field:?}"))
        })
}

fn parse_entry(node: &str, value: &Json) -> Result<CheckpointEntry, CheckpointError> {
    let parents = value
        .get("parents")
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Format(format!("node {node}: missing \"parents\"")))?
        .iter()
        .map(|p| {
            p.as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as NodeId)
                .ok_or_else(|| CheckpointError::Format(format!("node {node}: bad parent id")))
        })
        .collect::<Result<Vec<NodeId>, _>>()?;
    let score = value
        .get("score_bits")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| {
            CheckpointError::Format(format!("node {node}: missing or bad \"score_bits\""))
        })?;
    Ok(CheckpointEntry {
        parents,
        score,
        stats: SearchStats {
            evaluations: entry_u64(node, value, "evaluations")? as usize,
            bound_rejections: entry_u64(node, value, "bound_rejections")? as usize,
            greedy_rounds: entry_u64(node, value, "greedy_rounds")? as usize,
        },
        cache_stats: ScoreCacheStats {
            hits: entry_u64(node, value, "cache_hits")?,
            misses: entry_u64(node, value, "cache_misses")?,
        },
        ws: WorkspaceStats {
            refinements: entry_u64(node, value, "ws_refinements")?,
            rebases: entry_u64(node, value, "ws_rebases")?,
        },
    })
}

/// FNV-1a hash of everything the stored per-node results depend on: the
/// status-matrix dimensions, the applied τ (bit-exact), a signature of the
/// search-relevant configuration, and every candidate list. Two runs share
/// a fingerprint iff their per-node searches are interchangeable.
pub fn fingerprint(
    num_processes: usize,
    num_nodes: usize,
    tau: f64,
    config_signature: &str,
    candidates: &[Vec<NodeId>],
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&VERSION.to_le_bytes());
    eat(&(num_processes as u64).to_le_bytes());
    eat(&(num_nodes as u64).to_le_bytes());
    eat(&tau.to_bits().to_le_bytes());
    eat(config_signature.as_bytes());
    for cands in candidates {
        eat(&(cands.len() as u64).to_le_bytes());
        for &c in cands {
            eat(&u64::from(c).to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(0xdead_beef_0042_cafe);
        ck.entries.insert(
            0,
            CheckpointEntry {
                parents: vec![2, 5],
                score: -12.625,
                stats: SearchStats {
                    evaluations: 10,
                    bound_rejections: 3,
                    greedy_rounds: 2,
                },
                cache_stats: ScoreCacheStats { hits: 4, misses: 6 },
                ws: WorkspaceStats {
                    refinements: 6,
                    rebases: 1,
                },
            },
        );
        ck.entries.insert(
            7,
            CheckpointEntry {
                parents: vec![],
                // A score whose decimal rendering would round.
                score: f64::from_bits(0xbfe5_5555_5555_5555),
                stats: SearchStats::default(),
                cache_stats: ScoreCacheStats::default(),
                ws: WorkspaceStats::default(),
            },
        );
        ck
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let ck = sample();
        let json = ck.to_json();
        let back = Checkpoint::from_json(&json).expect("parse back");
        assert_eq!(back, ck);
        let b0 = back.entries[&7].score.to_bits();
        assert_eq!(b0, 0xbfe5_5555_5555_5555, "score must restore bit-exactly");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ck.json");
        let ck = sample();
        ck.save(&path).expect("save");
        assert_eq!(Checkpoint::load(&path).expect("load"), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_parse_error_with_offset() {
        let text = sample().to_json().to_pretty();
        let cut = &text[..text.len() / 2];
        let root = diffnet_observe::parse_json(cut);
        let err = root.expect_err("must not parse");
        let wrapped = CheckpointError::from(err);
        assert!(
            wrapped.to_string().contains("byte"),
            "offset missing from {wrapped}"
        );
    }

    #[test]
    fn wrong_format_and_version_are_rejected() {
        let mut root = sample().to_json();
        root.remove("format");
        root.push("format", "something-else");
        assert!(matches!(
            Checkpoint::from_json(&root),
            Err(CheckpointError::Format(_))
        ));

        let mut root = sample().to_json();
        root.remove("version");
        root.push("version", 999u64);
        let err = Checkpoint::from_json(&root).expect_err("unknown version");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn missing_fields_are_typed_errors() {
        let mut root = sample().to_json();
        root.remove("nodes");
        assert!(matches!(
            Checkpoint::from_json(&root),
            Err(CheckpointError::Format(_))
        ));

        let text = sample().to_json().to_pretty().replace("score_bits", "sb");
        let root = diffnet_observe::parse_json(&text).expect("valid json");
        let err = Checkpoint::from_json(&root).expect_err("missing score");
        assert!(err.to_string().contains("score_bits"), "{err}");
    }

    #[test]
    fn fingerprint_tracks_inputs() {
        let cands = vec![vec![1, 2], vec![0]];
        let base = fingerprint(100, 10, 0.25, "cfg", &cands);
        assert_eq!(base, fingerprint(100, 10, 0.25, "cfg", &cands));
        assert_ne!(base, fingerprint(101, 10, 0.25, "cfg", &cands));
        assert_ne!(base, fingerprint(100, 10, 0.26, "cfg", &cands));
        assert_ne!(base, fingerprint(100, 10, 0.25, "cfg2", &cands));
        assert_ne!(base, fingerprint(100, 10, 0.25, "cfg", &[vec![1], vec![0]]));
    }
}
