//! Versioned on-disk checkpoints for long reconstructions.
//!
//! A checkpoint persists the per-node parent-search results completed so
//! far, so an interrupted `Tends` run can resume without redoing them —
//! and, since v2, the *sufficient statistics* an appended batch of
//! cascades needs to re-estimate incrementally. The file is a JSONL delta
//! log in the deterministic JSON dialect of `diffnet-observe`:
//!
//! ```text
//! {"format":"diffnet-checkpoint","version":3,"fingerprint":"9f86…","revision":1,"stats":{…}}
//! {"node":0,"parents":[3],"score_bits":"c011…","candidates":[3,7],"table":"12 3 0 55",…}
//! {"node":2,…}
//! ```
//!
//! Line 1 is the **header**: format tag, schema version, run fingerprint,
//! the sufficient-statistics revision, and (optionally) the pairwise
//! sufficient statistics themselves ([`PairStats`]: `β`, per-column ones
//! counts, upper-triangle `n11` counts — serialized as space-separated
//! decimal strings — plus their FNV-1a `digest`, re-verified on every
//! load so edited statistics surface as a typed
//! [`CheckpointError::Mismatch`] instead of silently shifting the MI
//! pipeline an append replays from). Every further line is one completed
//! node.
//!
//! The log shape is what makes checkpointing cheap: the header is written
//! once, atomically (temp sibling + rename), and each flush *appends* the
//! newly finished nodes instead of rewriting the world. A crash can only
//! tear the final appended line, so [`Checkpoint::load`] tolerates a parse
//! failure on the last non-empty line (the torn tail is dropped); a torn
//! *header* still fails with a typed [`CheckpointError::Parse`]. Duplicate
//! node lines are legal and resolve last-wins, so a delta log compacts to
//! the same checkpoint [`Checkpoint::save`] would write fresh.
//!
//! Three properties make resume *bit-identical* to an uninterrupted run:
//!
//! * each node's search result is a pure function of its id (given the
//!   status columns, τ and candidate sets), so skipping completed nodes
//!   cannot change the remaining ones;
//! * scores are stored as the hex of their IEEE-754 bits (`score_bits`),
//!   not as decimal text, so restoring cannot round;
//! * the per-node effort counters (evaluations, cache hits, workspace
//!   refinements, …) are stored alongside the parents, so summed
//!   run-report counters include the work the *original* run did.
//!
//! For incremental re-estimation each entry also carries the node's ranked
//! candidate list and (size permitting) its full joint contingency
//! `table` over the id-sorted candidates. Joint tables are additive over
//! processes, so an append run folds in the new columns' table and replays
//! the search arithmetic from exact combined integers — byte-identical to
//! a fresh combined run — without touching historical columns.
//!
//! The `fingerprint` hashes everything the stored results depend on —
//! matrix dimensions, τ, the search configuration, the statistics
//! revision, and every candidate list. Resuming against different inputs,
//! config, or a stale pre-append revision is a typed
//! [`CheckpointError::Mismatch`], not silent corruption. `version` gates
//! the schema itself; unknown versions are refused.

use crate::imi::PairStats;
use crate::score::ScoreCacheStats;
use crate::search::{NodeSearchResult, SearchStats};
use diffnet_graph::NodeId;
use diffnet_observe::{Json, ParseError};
use diffnet_simulate::WorkspaceStats;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Schema identifier in the `format` field.
pub const FORMAT: &str = "diffnet-checkpoint";
/// Current schema version.
pub const VERSION: u64 = 3;

/// Largest candidate-set size whose joint table is persisted. A table has
/// `2^(c+1)` `u64` cells, so 10 candidates cap an entry at 16 KiB — past
/// that the node is simply re-searched on append instead of replayed.
pub const MAX_TABLE_CANDIDATES: usize = 10;

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not valid JSON; carries the byte offset of the damage.
    Parse(ParseError),
    /// Valid JSON that is not a checkpoint we can use (wrong format tag,
    /// unknown version, missing or ill-typed field).
    Format(String),
    /// The checkpoint was written for different inputs or configuration.
    Mismatch {
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found} does not match this run ({expected}): \
                 it was written for different inputs or configuration, or its \
                 contents were edited since"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ParseError> for CheckpointError {
    fn from(e: ParseError) -> Self {
        CheckpointError::Parse(e)
    }
}

/// One completed node's search outcome, as persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointEntry {
    /// The selected parent set, sorted.
    pub parents: Vec<NodeId>,
    /// Local score of the selection (restored bit-exactly).
    pub score: f64,
    /// The ranked candidate list the search ran over. An append run
    /// replays this entry only if its freshly computed list is identical.
    pub candidates: Vec<NodeId>,
    /// Joint contingency table of the child over the *id-sorted*
    /// candidates (`2^c` combinations × `[uninfected, infected]`), when
    /// the candidate set is within [`MAX_TABLE_CANDIDATES`]. The additive
    /// warm state incremental re-estimation marginalizes from.
    pub table: Option<Vec<[u64; 2]>>,
    /// Search-effort counters of the original search.
    pub stats: SearchStats,
    /// Score-cache counters of the original search.
    pub cache_stats: ScoreCacheStats,
    /// Counting-workspace activity the original search performed.
    pub ws: WorkspaceStats,
}

impl CheckpointEntry {
    /// Builds an entry from a finished node search, the workspace activity
    /// it performed, and the node's joint candidate table (if captured).
    pub fn from_result(
        res: &NodeSearchResult,
        ws: WorkspaceStats,
        table: Option<Vec<[u64; 2]>>,
    ) -> CheckpointEntry {
        CheckpointEntry {
            parents: res.parents.clone(),
            score: res.score,
            candidates: res.candidates.clone(),
            table,
            stats: res.stats,
            cache_stats: res.cache_stats,
            ws,
        }
    }

    /// Reconstitutes the [`NodeSearchResult`] this entry was taken from.
    pub fn into_result(self) -> NodeSearchResult {
        NodeSearchResult {
            parents: self.parents,
            score: self.score,
            candidates: self.candidates,
            stats: self.stats,
            cache_stats: self.cache_stats,
        }
    }
}

/// An in-memory checkpoint: the completed nodes plus the fingerprint and
/// sufficient statistics of the run they belong to.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing run (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Sufficient-statistics revision: how many append batches have been
    /// folded into `stats` (0 for a never-appended run). Serve bumps a
    /// job's revision per applied batch and the fingerprint covers it, so
    /// a resume against a stale pre-append checkpoint is a typed mismatch.
    pub revision: u64,
    /// Pairwise sufficient statistics of the producing matrix, when the
    /// run captured them (dense instrumented runs do; streamed runs
    /// don't).
    pub stats: Option<PairStats>,
    /// Completed nodes, keyed by id.
    pub entries: BTreeMap<NodeId, CheckpointEntry>,
}

impl Checkpoint {
    /// An empty checkpoint for the given run fingerprint and revision.
    pub fn new(fingerprint: u64, revision: u64) -> Checkpoint {
        Checkpoint {
            fingerprint,
            revision,
            stats: None,
            entries: BTreeMap::new(),
        }
    }

    /// The header line: format, version, fingerprint, revision, and the
    /// sufficient statistics. Always a single line of JSON.
    ///
    /// Emitted by hand, byte-for-byte what the generic
    /// [`Json::to_compact`] tree would produce (a test pins this): the
    /// statistics strings run to megabytes at `n(n−1)/2` scale and the
    /// tree construction dominated save time.
    pub fn header_line(&self) -> String {
        let mut out = String::with_capacity(
            64 + self
                .stats
                .as_ref()
                .map_or(0, |s| 8 * (s.ones().len() + s.n11().len())),
        );
        out.push_str("{\"format\":\"");
        out.push_str(FORMAT);
        out.push_str("\",\"version\":");
        push_u64(&mut out, VERSION);
        out.push_str(",\"fingerprint\":\"");
        push_hex16(&mut out, self.fingerprint);
        out.push_str("\",\"revision\":");
        push_u64(&mut out, self.revision);
        if let Some(stats) = &self.stats {
            out.push_str(",\"stats\":{\"beta\":");
            push_u64(&mut out, stats.num_processes());
            out.push_str(",\"ones\":\"");
            push_u64s(&mut out, stats.ones());
            out.push_str("\",\"n11\":\"");
            push_u64s(&mut out, stats.n11());
            out.push_str("\",\"digest\":\"");
            push_hex16(&mut out, stats.digest());
            out.push_str("\"}");
        }
        out.push('}');
        out
    }

    /// One node's entry line (scores as IEEE-754 bit strings, tables as
    /// space-separated decimal counts). Always a single line of JSON —
    /// the unit the async delta writer appends. Hand-emitted like
    /// [`header_line`](Self::header_line), and pinned byte-for-byte to
    /// the generic JSON form by a test.
    pub fn entry_line(id: NodeId, e: &CheckpointEntry) -> String {
        let table_cells = e.table.as_ref().map_or(0, |t| 2 * t.len());
        let mut out = String::with_capacity(256 + 8 * table_cells);
        out.push_str("{\"node\":");
        push_u64(&mut out, u64::from(id));
        out.push_str(",\"parents\":[");
        push_ids(&mut out, &e.parents);
        out.push_str("],\"score_bits\":\"");
        push_hex16(&mut out, e.score.to_bits());
        out.push_str("\",\"candidates\":[");
        push_ids(&mut out, &e.candidates);
        out.push(']');
        if let Some(table) = &e.table {
            out.push_str(",\"table\":\"");
            for (i, cell) in table.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                push_u64(&mut out, cell[0]);
                out.push(' ');
                push_u64(&mut out, cell[1]);
            }
            out.push('"');
        }
        out.push_str(",\"evaluations\":");
        push_u64(&mut out, e.stats.evaluations as u64);
        out.push_str(",\"bound_rejections\":");
        push_u64(&mut out, e.stats.bound_rejections as u64);
        out.push_str(",\"greedy_rounds\":");
        push_u64(&mut out, e.stats.greedy_rounds as u64);
        out.push_str(",\"cache_hits\":");
        push_u64(&mut out, e.cache_stats.hits);
        out.push_str(",\"cache_misses\":");
        push_u64(&mut out, e.cache_stats.misses);
        out.push_str(",\"ws_refinements\":");
        push_u64(&mut out, e.ws.refinements);
        out.push_str(",\"ws_rebases\":");
        push_u64(&mut out, e.ws.rebases);
        out.push('}');
        out
    }

    /// The full compacted serialization: header line followed by every
    /// entry in ascending node order.
    pub fn to_text(&self) -> String {
        let mut out = self.header_line();
        out.push('\n');
        for (&id, e) in &self.entries {
            out.push_str(&Self::entry_line(id, e));
            out.push('\n');
        }
        out
    }

    /// Parses the serialized form back (exposed for tests and tools; the
    /// production path is [`load`](Self::load)). `tolerate_torn_tail`
    /// drops a final line that fails to parse — the signature of a crash
    /// mid-append — instead of failing the load.
    pub fn from_text(text: &str, tolerate_torn_tail: bool) -> Result<Checkpoint, CheckpointError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .peekable();
        let header_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Format("empty checkpoint file".into()))?;
        // A torn header is unrecoverable: it is written atomically, so
        // damage here means real corruption, not a crashed append.
        let header = diffnet_observe::parse_json(header_line)?;
        let mut ck = parse_header(&header)?;
        while let Some(line) = lines.next() {
            let is_last = lines.peek().is_none();
            let value = match diffnet_observe::parse_json(line) {
                Ok(v) => v,
                Err(_) if is_last && tolerate_torn_tail => break,
                Err(e) => return Err(e.into()),
            };
            let (id, entry) = parse_entry(&value)?;
            // Last-wins: a delta log may re-record a node; the newest
            // append is authoritative.
            ck.entries.insert(id, entry);
        }
        Ok(ck)
    }

    /// Writes the compacted checkpoint atomically (temp sibling + rename),
    /// so a crash mid-write leaves the previous checkpoint intact.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let text = self.to_text();
        diffnet_graph::io::save_atomic(path, |w| w.write_all(text.as_bytes()))?;
        Ok(())
    }

    /// Loads and validates a checkpoint file, compacting any delta log:
    /// duplicate node records resolve last-wins and a torn final line
    /// (crash mid-append) is dropped.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::from_text(&text, true)
    }
}

/// Appends `v` in decimal — digits straight into the buffer; a
/// per-value `to_string` allocation at bulk scale dominates saves.
/// Checkpoint numbers are overwhelmingly process counts (≤ β) and node
/// ids, so one- and two-digit values get a branch-only fast path.
fn push_u64(out: &mut String, v: u64) {
    if v < 10 {
        out.push((b'0' + v as u8) as char);
        return;
    }
    if v < 100 {
        let pair = [b'0' + (v / 10) as u8, b'0' + (v % 10) as u8];
        out.push_str(std::str::from_utf8(&pair).expect("ascii"));
        return;
    }
    if v < 1000 {
        let trio = [
            b'0' + (v / 100) as u8,
            b'0' + (v / 10 % 10) as u8,
            b'0' + (v % 10) as u8,
        ];
        out.push_str(std::str::from_utf8(&trio).expect("ascii"));
        return;
    }
    let mut digits = [0u8; 20];
    let mut pos = digits.len();
    let mut v = v;
    loop {
        pos -= 1;
        digits[pos] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Only ASCII digits.
    out.push_str(std::str::from_utf8(&digits[pos..]).expect("ascii"));
}

/// Appends `v` as 16 zero-padded lowercase hex digits.
fn push_hex16(out: &mut String, v: u64) {
    let mut digits = [0u8; 16];
    for (i, d) in digits.iter_mut().enumerate() {
        let nibble = ((v >> (60 - 4 * i)) & 0xf) as u8;
        *d = if nibble < 10 {
            b'0' + nibble
        } else {
            b'a' + nibble - 10
        };
    }
    out.push_str(std::str::from_utf8(&digits).expect("ascii"));
}

/// Appends node ids as comma-separated decimals (JSON array body).
fn push_ids(out: &mut String, ids: &[NodeId]) {
    for (i, &id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, u64::from(id));
    }
}

/// Appends bulk `u64` counts as a space-separated decimal run — an order
/// of magnitude denser to parse than a JSON array at `n(n−1)/2` scale.
/// Digits go through a manual cursor over one preallocated byte buffer:
/// at half a million counts the per-value capacity checks and `push_str`
/// calls of the scalar path dominate the serialization cost.
fn push_u64s(out: &mut String, values: &[u64]) {
    // Worst case 20 digits + separator per value.
    let mut buf = vec![0u8; values.len() * 21];
    let mut pos = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf[pos] = b' ';
            pos += 1;
        }
        if v < 10 {
            buf[pos] = b'0' + v as u8;
            pos += 1;
        } else if v < 100 {
            buf[pos] = b'0' + (v / 10) as u8;
            buf[pos + 1] = b'0' + (v % 10) as u8;
            pos += 2;
        } else if v < 1000 {
            buf[pos] = b'0' + (v / 100) as u8;
            buf[pos + 1] = b'0' + (v / 10 % 10) as u8;
            buf[pos + 2] = b'0' + (v % 10) as u8;
            pos += 3;
        } else {
            let mut digits = [0u8; 20];
            let mut end = digits.len();
            let mut v = v;
            loop {
                end -= 1;
                digits[end] = b'0' + (v % 10) as u8;
                v /= 10;
                if v == 0 {
                    break;
                }
            }
            let len = digits.len() - end;
            buf[pos..pos + len].copy_from_slice(&digits[end..]);
            pos += len;
        }
    }
    // Only ASCII digits and spaces.
    out.push_str(std::str::from_utf8(&buf[..pos]).expect("ascii"));
}

/// Inverse of [`push_u64s`]: a single pass over the raw bytes, since
/// `str::parse` per token is measurable at half a million counts.
fn parse_u64s(text: &str, what: &str) -> Result<Vec<u64>, CheckpointError> {
    let mut out = Vec::with_capacity(text.len() / 2 + 1);
    let mut cur: u64 = 0;
    let mut in_token = false;
    for (i, &b) in text.as_bytes().iter().enumerate() {
        match b {
            b'0'..=b'9' => {
                cur = cur
                    .checked_mul(10)
                    .and_then(|c| c.checked_add(u64::from(b - b'0')))
                    .ok_or_else(|| {
                        CheckpointError::Format(format!("{what} count overflows at byte {i}"))
                    })?;
                in_token = true;
            }
            b' ' | b'\t' | b'\n' | b'\r' => {
                if in_token {
                    out.push(cur);
                    cur = 0;
                    in_token = false;
                }
            }
            _ => {
                return Err(CheckpointError::Format(format!(
                    "bad {what} count: unexpected byte {:?}",
                    char::from(b)
                )));
            }
        }
    }
    if in_token {
        out.push(cur);
    }
    Ok(out)
}

fn parse_header(root: &Json) -> Result<Checkpoint, CheckpointError> {
    let format = root
        .get("format")
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Format("missing \"format\" tag".into()))?;
    if format != FORMAT {
        return Err(CheckpointError::Format(format!(
            "format {format:?}, expected {FORMAT:?}"
        )));
    }
    let version = root
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| CheckpointError::Format("missing \"version\"".into()))?;
    if version != VERSION as f64 {
        return Err(CheckpointError::Format(format!(
            "unknown version {version}, this build reads version {VERSION}"
        )));
    }
    let fingerprint = root
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| CheckpointError::Format("missing or bad \"fingerprint\"".into()))?;
    let revision = root
        .get("revision")
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| CheckpointError::Format("missing or bad \"revision\"".into()))?;
    let stats = match root.get("stats") {
        None => None,
        Some(s) => {
            let beta = s
                .get("beta")
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| CheckpointError::Format("stats: missing or bad \"beta\"".into()))?;
            let ones = s
                .get("ones")
                .and_then(Json::as_str)
                .ok_or_else(|| CheckpointError::Format("stats: missing \"ones\"".into()))?;
            let n11 = s
                .get("n11")
                .and_then(Json::as_str)
                .ok_or_else(|| CheckpointError::Format("stats: missing \"n11\"".into()))?;
            let digest = s
                .get("digest")
                .and_then(Json::as_str)
                .and_then(|d| u64::from_str_radix(d, 16).ok())
                .ok_or_else(|| {
                    CheckpointError::Format("stats: missing or bad \"digest\"".into())
                })?;
            let stats =
                PairStats::from_parts(beta, parse_u64s(ones, "ones")?, parse_u64s(n11, "n11")?)
                    .map_err(CheckpointError::Format)?;
            // Consistent-but-different counts would silently shift the MI
            // pipeline an append replays from, so the digest written by
            // the producing run is re-verified on every load.
            if stats.digest() != digest {
                return Err(CheckpointError::Mismatch {
                    expected: format!("{:016x}", stats.digest()),
                    found: format!("{digest:016x}"),
                });
            }
            Some(stats)
        }
    };
    Ok(Checkpoint {
        fingerprint,
        revision,
        stats,
        entries: BTreeMap::new(),
    })
}

fn entry_u64(value: &Json, field: &str) -> Result<u64, CheckpointError> {
    value
        .get(field)
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| CheckpointError::Format(format!("entry: missing or bad field {field:?}")))
}

fn parse_id_list(value: &Json, field: &str) -> Result<Vec<NodeId>, CheckpointError> {
    value
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Format(format!("entry: missing {field:?}")))?
        .iter()
        .map(|p| {
            p.as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as NodeId)
                .ok_or_else(|| CheckpointError::Format(format!("entry: bad id in {field:?}")))
        })
        .collect()
}

fn parse_entry(value: &Json) -> Result<(NodeId, CheckpointEntry), CheckpointError> {
    let id = entry_u64(value, "node")? as NodeId;
    let parents = parse_id_list(value, "parents")?;
    let candidates = parse_id_list(value, "candidates")?;
    let score = value
        .get("score_bits")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| {
            CheckpointError::Format(format!("node {id}: missing or bad \"score_bits\""))
        })?;
    let table = match value.get("table") {
        None => None,
        Some(t) => {
            let flat = parse_u64s(
                t.as_str()
                    .ok_or_else(|| CheckpointError::Format(format!("node {id}: bad \"table\"")))?,
                "table",
            )?;
            let want = 2 * (1usize << candidates.len());
            if flat.len() != want {
                return Err(CheckpointError::Format(format!(
                    "node {id}: table has {} counts, {} candidates need {want}",
                    flat.len(),
                    candidates.len()
                )));
            }
            Some(flat.chunks_exact(2).map(|c| [c[0], c[1]]).collect())
        }
    };
    Ok((
        id,
        CheckpointEntry {
            parents,
            score,
            candidates,
            table,
            stats: SearchStats {
                evaluations: entry_u64(value, "evaluations")? as usize,
                bound_rejections: entry_u64(value, "bound_rejections")? as usize,
                greedy_rounds: entry_u64(value, "greedy_rounds")? as usize,
            },
            cache_stats: ScoreCacheStats {
                hits: entry_u64(value, "cache_hits")?,
                misses: entry_u64(value, "cache_misses")?,
            },
            ws: WorkspaceStats {
                refinements: entry_u64(value, "ws_refinements")?,
                rebases: entry_u64(value, "ws_rebases")?,
            },
        },
    ))
}

/// FNV-1a hash of everything the stored per-node results depend on: the
/// status-matrix dimensions, the applied τ (bit-exact), a signature of the
/// search-relevant configuration, the sufficient-statistics revision, and
/// every candidate list. Two runs share a fingerprint iff their per-node
/// searches are interchangeable — in particular, a pre-append checkpoint
/// (older revision) never matches the post-append run even when τ and the
/// candidate sets happen to survive the append unchanged.
pub fn fingerprint(
    num_processes: usize,
    num_nodes: usize,
    tau: f64,
    config_signature: &str,
    revision: u64,
    candidates: &[Vec<NodeId>],
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&VERSION.to_le_bytes());
    eat(&(num_processes as u64).to_le_bytes());
    eat(&(num_nodes as u64).to_le_bytes());
    eat(&tau.to_bits().to_le_bytes());
    eat(config_signature.as_bytes());
    eat(&revision.to_le_bytes());
    for cands in candidates {
        eat(&(cands.len() as u64).to_le_bytes());
        for &c in cands {
            eat(&u64::from(c).to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(0xdead_beef_0042_cafe, 3);
        ck.stats = Some(PairStats::from_parts(10, vec![4, 0, 10], vec![0, 4, 0]).unwrap());
        ck.entries.insert(
            0,
            CheckpointEntry {
                parents: vec![2, 5],
                score: -12.625,
                candidates: vec![5, 2],
                table: Some(vec![[3, 1], [0, 2], [1, 1], [0, 2]]),
                stats: SearchStats {
                    evaluations: 10,
                    bound_rejections: 3,
                    greedy_rounds: 2,
                },
                cache_stats: ScoreCacheStats { hits: 4, misses: 6 },
                ws: WorkspaceStats {
                    refinements: 6,
                    rebases: 1,
                },
            },
        );
        ck.entries.insert(
            7,
            CheckpointEntry {
                parents: vec![],
                // A score whose decimal rendering would round.
                score: f64::from_bits(0xbfe5_5555_5555_5555),
                candidates: vec![],
                table: None,
                stats: SearchStats::default(),
                cache_stats: ScoreCacheStats::default(),
                ws: WorkspaceStats::default(),
            },
        );
        ck
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let ck = sample();
        let back = Checkpoint::from_text(&ck.to_text(), false).expect("parse back");
        assert_eq!(back, ck);
        let b0 = back.entries[&7].score.to_bits();
        assert_eq!(b0, 0xbfe5_5555_5555_5555, "score must restore bit-exactly");
        assert_eq!(back.revision, 3);
        assert_eq!(
            back.entries[&0].table.as_deref(),
            Some(&[[3, 1], [0, 2], [1, 1], [0, 2]][..])
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ck.json");
        let ck = sample();
        ck.save(&path).expect("save");
        assert_eq!(Checkpoint::load(&path).expect("load"), ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_is_a_parse_error_with_offset() {
        let text = sample().to_text();
        let cut = &text[..sample().header_line().len() / 2];
        let err = Checkpoint::from_text(cut, true).expect_err("must not parse");
        assert!(matches!(err, CheckpointError::Parse(_)), "{err:?}");
        assert!(
            err.to_string().contains("byte"),
            "offset missing from {err}"
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_delta_entries_dedup_last_wins() {
        let ck = sample();
        let mut text = ck.to_text();
        // A delta append re-records node 0 with a different parent set…
        let mut newer = ck.entries[&0].clone();
        newer.parents = vec![5];
        text.push_str(&Checkpoint::entry_line(0, &newer));
        text.push('\n');
        // …then the process dies mid-way through the next record.
        let torn = Checkpoint::entry_line(7, &ck.entries[&7]);
        text.push_str(&torn[..torn.len() / 2]);

        let back = Checkpoint::from_text(&text, true).expect("torn tail is tolerated");
        assert_eq!(back.entries[&0].parents, vec![5], "last record wins");
        assert_eq!(back.entries.len(), 2);
        // Without tolerance the same text is a parse error.
        assert!(matches!(
            Checkpoint::from_text(&text, false),
            Err(CheckpointError::Parse(_))
        ));
        // A torn line in the *middle* is never tolerated.
        let mid_torn = format!(
            "{}\n{}\n{}\n",
            ck.header_line(),
            &torn[..torn.len() / 2],
            Checkpoint::entry_line(0, &ck.entries[&0]),
        );
        assert!(matches!(
            Checkpoint::from_text(&mid_torn, true),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn wrong_format_and_version_are_rejected() {
        let text = sample()
            .to_text()
            .replace("diffnet-checkpoint", "something-else");
        assert!(matches!(
            Checkpoint::from_text(&text, false),
            Err(CheckpointError::Format(_))
        ));

        let text = sample()
            .to_text()
            .replace("\"version\":3", "\"version\":999");
        let err = Checkpoint::from_text(&text, false).expect_err("unknown version");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn missing_fields_are_typed_errors() {
        let text = sample().to_text().replace("score_bits", "sb");
        let err = Checkpoint::from_text(&text, false).expect_err("missing score");
        assert!(err.to_string().contains("score_bits"), "{err}");

        let text = sample().to_text().replace("\"revision\":3,", "");
        let err = Checkpoint::from_text(&text, false).expect_err("missing revision");
        assert!(err.to_string().contains("revision"), "{err}");

        // A table whose size disagrees with the candidate count is typed.
        let text = sample().to_text().replace("3 1 0 2 1 1 0 2", "3 1");
        let err = Checkpoint::from_text(&text, false).expect_err("short table");
        assert!(err.to_string().contains("table"), "{err}");
    }

    #[test]
    fn stats_survive_the_header_round_trip() {
        let ck = sample();
        let back = Checkpoint::from_text(&ck.to_text(), false).unwrap();
        let stats = back.stats.expect("stats restored");
        assert_eq!(stats.num_processes(), 10);
        assert_eq!(stats.ones(), &[4, 0, 10]);
        assert_eq!(stats.n11(), &[0, 4, 0]);
        // A header without stats is still a valid checkpoint.
        let mut bare = sample();
        bare.stats = None;
        let back = Checkpoint::from_text(&bare.to_text(), false).unwrap();
        assert!(back.stats.is_none());
    }

    #[test]
    fn hand_emitted_lines_match_the_generic_json_form() {
        // The hand-rolled writers exist purely for speed; the bytes must
        // stay exactly what building a Json tree and compacting it gives.
        let ck = sample();
        let stats = ck.stats.as_ref().unwrap();
        let mut root = Json::object();
        root.push("format", FORMAT);
        root.push("version", VERSION);
        root.push("fingerprint", format!("{:016x}", ck.fingerprint));
        root.push("revision", ck.revision);
        let mut s = Json::object();
        s.push("beta", stats.num_processes());
        s.push("ones", "4 0 10");
        s.push("n11", "0 4 0");
        s.push("digest", format!("{:016x}", stats.digest()));
        root.push("stats", s);
        assert_eq!(ck.header_line(), root.to_compact());

        for (&id, e) in &ck.entries {
            let mut entry = Json::object();
            entry.push("node", u64::from(id));
            entry.push(
                "parents",
                Json::Arr(
                    e.parents
                        .iter()
                        .map(|&p| Json::from(u64::from(p)))
                        .collect(),
                ),
            );
            entry.push("score_bits", format!("{:016x}", e.score.to_bits()));
            entry.push(
                "candidates",
                Json::Arr(
                    e.candidates
                        .iter()
                        .map(|&c| Json::from(u64::from(c)))
                        .collect(),
                ),
            );
            if let Some(table) = &e.table {
                let flat: Vec<String> = table
                    .iter()
                    .flat_map(|c| [c[0].to_string(), c[1].to_string()])
                    .collect();
                entry.push("table", flat.join(" "));
            }
            entry.push("evaluations", e.stats.evaluations);
            entry.push("bound_rejections", e.stats.bound_rejections);
            entry.push("greedy_rounds", e.stats.greedy_rounds);
            entry.push("cache_hits", e.cache_stats.hits);
            entry.push("cache_misses", e.cache_stats.misses);
            entry.push("ws_refinements", e.ws.refinements);
            entry.push("ws_rebases", e.ws.rebases);
            assert_eq!(Checkpoint::entry_line(id, e), entry.to_compact());
        }
    }

    #[test]
    fn edited_stats_fail_the_digest_check_on_load() {
        // A consistent-but-different statistic (β bumped by one keeps all
        // derived pair counts non-negative here) must not parse silently.
        let pristine = sample().to_text();
        let tampered = pristine.replacen("\"beta\":10", "\"beta\":11", 1);
        assert_ne!(tampered, pristine, "edit must hit the statistics");
        let err = Checkpoint::from_text(&tampered, false).expect_err("tampered stats");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");

        // So must a header whose digest field itself was stripped.
        let ck = sample();
        let digest = format!(
            ",\"digest\":\"{:016x}\"",
            ck.stats.as_ref().unwrap().digest()
        );
        let stripped = pristine.replacen(&digest, "", 1);
        assert_ne!(stripped, pristine, "edit must hit the digest");
        let err = Checkpoint::from_text(&stripped, false).expect_err("missing digest");
        assert!(err.to_string().contains("digest"), "{err}");
    }

    #[test]
    fn fingerprint_tracks_inputs_including_revision() {
        let cands = vec![vec![1, 2], vec![0]];
        let base = fingerprint(100, 10, 0.25, "cfg", 0, &cands);
        assert_eq!(base, fingerprint(100, 10, 0.25, "cfg", 0, &cands));
        assert_ne!(base, fingerprint(101, 10, 0.25, "cfg", 0, &cands));
        assert_ne!(base, fingerprint(100, 10, 0.26, "cfg", 0, &cands));
        assert_ne!(base, fingerprint(100, 10, 0.25, "cfg2", 0, &cands));
        assert_ne!(
            base,
            fingerprint(100, 10, 0.25, "cfg", 0, &[vec![1], vec![0]])
        );
        // The stale pre-append guard: a bumped revision alone changes it.
        assert_ne!(base, fingerprint(100, 10, 0.25, "cfg", 1, &cands));
    }
}
