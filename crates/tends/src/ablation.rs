//! Ablation variants of TENDS used by the benchmark suite.

use crate::imi::CorrelationMatrix;
use crate::kmeans::pinned_two_means;
use crate::{TendsConfig, ThresholdMode};
use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_simulate::StatusMatrix;

/// "TENDS minus the scoring criterion": connect every node pair whose
/// pairwise correlation exceeds the pruning threshold, in both directions,
/// with no parent-set scoring at all.
///
/// This isolates the contribution of the decomposable scoring criterion
/// (§IV-A): the pruning stage alone already encodes "correlated pairs are
/// likely edges", so any accuracy gap between this baseline and full TENDS
/// is attributable to the likelihood/penalty scoring and greedy search.
pub fn correlation_threshold_baseline(statuses: &StatusMatrix, config: &TendsConfig) -> DiGraph {
    let n = statuses.num_nodes();
    let cols = statuses.columns();
    let corr = CorrelationMatrix::compute_parallel(&cols, config.correlation, config.threads);
    let kmeans = pinned_two_means(&corr.upper_triangle());
    let tau = match config.threshold {
        ThresholdMode::Auto => kmeans.tau,
        ThresholdMode::Fixed(t) => t,
        ThresholdMode::ScaledAuto(s) => kmeans.tau * s,
    };

    let mut b = GraphBuilder::new(n);
    for i in 0..n as NodeId {
        for j in (i + 1)..n as NodeId {
            if corr.get(i, j) > tau {
                b.add_reciprocal(i, j);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tends;
    use diffnet_metrics::EdgeSetComparison;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (DiGraph, StatusMatrix) {
        // A reciprocal ladder with some long-range rungs.
        let mut b = GraphBuilder::new(16);
        for i in 0..15u32 {
            b.add_reciprocal(i, i + 1);
        }
        b.add_reciprocal(0, 8);
        b.add_reciprocal(4, 12);
        let truth = b.build();
        let mut rng = StdRng::seed_from_u64(13);
        let probs = EdgeProbs::constant(&truth, 0.4);
        let obs = IndependentCascade::new(&truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: 400,
            },
            &mut rng,
        );
        (truth, obs.statuses)
    }

    #[test]
    fn baseline_produces_symmetric_graph() {
        let (_, statuses) = workload();
        let g = correlation_threshold_baseline(&statuses, &TendsConfig::default());
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn scoring_beats_pruning_alone() {
        let (truth, statuses) = workload();
        let naive = correlation_threshold_baseline(&statuses, &TendsConfig::default());
        let full = Tends::new()
            .reconstruct(&statuses)
            .expect("search fits")
            .graph;
        let f_naive = EdgeSetComparison::against_truth(&truth, &naive).f_score();
        let f_full = EdgeSetComparison::against_truth(&truth, &full).f_score();
        assert!(
            f_full >= f_naive,
            "scoring criterion must not hurt: full {f_full} vs naive {f_naive}"
        );
    }

    #[test]
    fn fixed_threshold_respected() {
        let (_, statuses) = workload();
        let cfg = TendsConfig {
            threshold: ThresholdMode::Fixed(100.0),
            ..Default::default()
        };
        let g = correlation_threshold_baseline(&statuses, &cfg);
        assert_eq!(g.edge_count(), 0);
    }
}
