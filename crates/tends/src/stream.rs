//! Out-of-core streamed IMI: bounded sparse candidate accumulation and
//! node-range sharding, without the dense `n × n` correlation matrix.
//!
//! The dense pipeline materializes [`crate::CorrelationMatrix`] — `8·n²`
//! bytes, 80 GB at `n = 100,000` — even though everything downstream of
//! the τ threshold only ever consumes per-node candidate *sets* of at
//! most `max_candidates` entries. This module replaces the matrix with
//! three memory-bounded pieces:
//!
//! 1. **τ from a deterministic systematic pair sample** ([`sample_tau`]):
//!    every `stride`-th pair of the canonical upper-triangle rank order is
//!    scored with the per-pair [`NodeColumns::pair_counts`] oracle (bit-
//!    identical to the tiled SIMD kernel) and fed to the same pinned
//!    2-means as the dense path. The sample cap is a pure function of the
//!    pair count and the memory budget — never the thread count, SIMD
//!    tier, or shard — so every streamed run at one budget computes the
//!    same τ, and small inputs (`stride == 1`) reproduce the dense τ
//!    bit-for-bit.
//! 2. **A bounded sparse accumulator** ([`SparseCandidates`]): tile
//!    outputs fold straight into per-node top-`k` lists of above-τ
//!    partners, ordered exactly like `candidate_parents` (value
//!    descending, node id ascending tie-break). Top-k selection is a
//!    semilattice — `topk(topk(A) ∪ topk(B)) = topk(A ∪ B)` — so
//!    per-worker partial accumulators merge to the same result regardless
//!    of how tiles were scheduled, keeping candidates thread- and
//!    tile-invariant. Every above-τ sighting is counted, so truncation is
//!    reported (`candidate_evictions`), never silent.
//! 3. **Node-range shards** ([`Shard`], [`plan_shards`]): a shard owns a
//!    contiguous node range and folds only the tile blocks that touch it,
//!    bounding accumulator memory to the shard's nodes. Shards of one
//!    logical reconstruction merge by edge union — each child node's
//!    parents are computed by exactly one shard.
//!
//! The tile schedule is byte-for-byte the one
//! [`crate::CorrelationMatrix::compute_observed`] uses (same
//! [`NodeColumns::pair_tile_size`] tiles, same exact-pair-count claim
//! weights, same emission order), so the streamed path inherits the dense
//! path's SIMD kernel and its bit-identity guarantees; the dense path
//! stays available as the equivalence oracle.

use crate::imi::{CorrelationMeasure, Log2Table, MiCells};
use crate::kmeans::{pinned_two_means, PinnedKmeans};
use crate::parallel;
use diffnet_graph::NodeId;
use diffnet_simulate::NodeColumns;
use std::cmp::Ordering;
use std::ops::Range;

/// A contiguous node range `start..end` owned by one worker or job of a
/// sharded reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shard {
    /// First node id in the shard (inclusive).
    pub start: NodeId,
    /// One past the last node id in the shard (exclusive).
    pub end: NodeId,
}

impl Shard {
    /// The full-range shard `0..n` — an unsharded streamed run.
    pub fn full(n: usize) -> Shard {
        Shard {
            start: 0,
            end: n as NodeId,
        }
    }

    /// Number of nodes in the shard.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the shard holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether node `i` belongs to this shard.
    #[inline]
    pub fn contains(&self, i: NodeId) -> bool {
        self.start <= i && i < self.end
    }

    /// The shard as an index range.
    pub fn as_range(&self) -> Range<usize> {
        self.start as usize..self.end as usize
    }

    fn touches(&self, r: &Range<usize>) -> bool {
        r.start < self.end as usize && r.end > self.start as usize
    }
}

/// Splits `0..n` into `count` contiguous node-range shards via the same
/// [`parallel::cost_chunks`] planner the worker pools use.
///
/// Per-node candidate work is uniform (every node meets exactly `n − 1`
/// pairs), so the costs are uniform and the planner degenerates to an
/// even split — but going through `cost_chunks` keeps the shard map a
/// pure function shared with the scheduler, and leaves one seam to plug
/// in a smarter cost model. Deterministic; trailing shards may be empty
/// when `count > n`.
pub fn plan_shards(n: usize, count: usize) -> Vec<Shard> {
    let costs = vec![1u64; n];
    parallel::cost_chunks(&costs, count.max(1))
        .into_iter()
        .map(|r| Shard {
            start: r.start as NodeId,
            end: r.end as NodeId,
        })
        .collect()
}

/// Same candidate order as `candidate_parents`: value descending, node id
/// ascending on ties. A total order (via `total_cmp`), which is what
/// makes bounded top-k selection exact and merge-order-independent.
fn rank(a: &(f64, NodeId), b: &(f64, NodeId)) -> Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Keeps the top `max` entries of `list` under [`rank`].
fn prune(list: &mut Vec<(f64, NodeId)>, max: usize) {
    if list.len() > max {
        if max == 0 {
            list.clear();
        } else {
            list.select_nth_unstable_by(max, rank);
            list.truncate(max);
        }
    }
}

/// Bounded per-node candidate lists for one node-range shard: the
/// streamed replacement for the dense correlation matrix.
///
/// Holds, per shard node, at most `2·max_candidates + 16` `(value,
/// partner)` entries at any time (amortized pruning), plus one above-τ
/// sighting counter. Inserts must already be above τ — thresholding
/// happens at the tile fold so sub-τ pairs never allocate anything.
#[derive(Clone, Debug)]
pub struct SparseCandidates {
    shard: Shard,
    max_candidates: usize,
    entries: Vec<Vec<(f64, NodeId)>>,
    above_tau_seen: Vec<u64>,
}

impl SparseCandidates {
    /// An empty accumulator for `shard`, keeping at most `max_candidates`
    /// partners per node.
    pub fn new(shard: Shard, max_candidates: usize) -> SparseCandidates {
        let len = shard.len();
        SparseCandidates {
            shard,
            max_candidates,
            entries: vec![Vec::new(); len],
            above_tau_seen: vec![0; len],
        }
    }

    /// Records that `node` saw above-τ correlation `value` with
    /// `partner`. Callers guarantee `value > τ` and
    /// `shard.contains(node)`.
    #[inline]
    pub fn insert(&mut self, node: NodeId, value: f64, partner: NodeId) {
        debug_assert!(self.shard.contains(node));
        let slot = (node - self.shard.start) as usize;
        self.above_tau_seen[slot] += 1;
        if self.max_candidates == 0 {
            return;
        }
        let list = &mut self.entries[slot];
        list.push((value, partner));
        // Amortized bound: prune back to max once the list doubles, so
        // each node's list stays O(max_candidates) no matter how many
        // above-τ partners stream past.
        if list.len() >= 2 * self.max_candidates + 16 {
            prune(list, self.max_candidates);
        }
    }

    /// Folds another partial accumulator (same shard, same bound) into
    /// this one. Top-k of a union is grouping-independent, so any merge
    /// tree yields the same lists.
    pub fn merge(&mut self, other: SparseCandidates) {
        assert_eq!(self.shard, other.shard, "accumulator shard mismatch");
        assert_eq!(self.max_candidates, other.max_candidates);
        for (slot, (mut list, seen)) in other
            .entries
            .into_iter()
            .zip(other.above_tau_seen)
            .enumerate()
        {
            self.above_tau_seen[slot] += seen;
            let dst = &mut self.entries[slot];
            dst.append(&mut list);
            prune(dst, self.max_candidates);
        }
    }

    /// Finalizes into per-node candidate id lists (indexed by
    /// `node − shard.start`), sorted exactly like `candidate_parents`,
    /// plus the total number of above-τ candidates evicted by the top-k
    /// bound — the count that must be surfaced, not silently dropped.
    pub fn finish(mut self) -> (Vec<Vec<NodeId>>, u64) {
        let mut evictions = 0u64;
        let lists = self
            .entries
            .iter_mut()
            .zip(&self.above_tau_seen)
            .map(|(list, &seen)| {
                prune(list, self.max_candidates);
                list.sort_unstable_by(rank);
                evictions += seen - list.len() as u64;
                list.iter().map(|&(_, id)| id).collect()
            })
            .collect();
        (lists, evictions)
    }
}

/// Outcome of [`sample_tau`]: the pinned 2-means fit over the systematic
/// pair sample, plus the sample geometry for run reports.
#[derive(Clone, Debug)]
pub struct TauSample {
    /// The 2-means fit (τ = `kmeans.tau`, before any threshold scaling).
    pub kmeans: PinnedKmeans,
    /// Pairs actually scored.
    pub sampled_pairs: u64,
    /// Rank stride between sampled pairs (1 ⇒ exhaustive ⇒ τ is
    /// bit-identical to the dense path).
    pub stride: u64,
    /// Total pairs in the upper triangle.
    pub total_pairs: u64,
}

/// Sample cap for τ estimation: a pure function of the pair count and
/// the memory budget ONLY. Folding in threads, SIMD tier, or shard
/// geometry here would make τ — and therefore every downstream candidate
/// set — depend on them, breaking the bit-identity contract. Sharded and
/// unsharded runs must be given the same budget to agree on τ.
pub fn tau_sample_cap(total_pairs: u64, memory_budget: Option<u64>) -> u64 {
    const MIN_CAP: u64 = 1 << 16;
    const MAX_CAP: u64 = 1 << 21;
    // ~128 budget bytes per sampled pair: 8 for the f64 plus headroom for
    // the sort the 2-means performs.
    let cap = (memory_budget.unwrap_or(u64::MAX) / 128).clamp(MIN_CAP, MAX_CAP);
    cap.min(total_pairs).max(1)
}

/// Rank of pair `(i, j)`, `i < j`, in row-major upper-triangle order:
/// `base(i) = i·(n−1) − i·(i−1)/2 = i·(2n − i − 1)/2` pairs precede
/// row `i` (the factored form never underflows at `i = 0`).
fn rank_base(i: u64, n: u64) -> u64 {
    i * (2 * n - i - 1) / 2
}

/// Inverts a canonical upper-triangle rank back to its pair `(i, j)`.
fn pair_at(rank: u64, n: u64) -> (NodeId, NodeId) {
    debug_assert!(n >= 2 && rank < n * (n - 1) / 2);
    // Largest i with base(i) <= rank; base is strictly increasing on
    // 0..n-1 and base(n-1) is the total pair count.
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if rank_base(mid, n) <= rank {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let i = lo;
    let j = i + 1 + (rank - rank_base(i, n));
    (i as NodeId, j as NodeId)
}

#[inline]
fn pair_value(
    cols: &NodeColumns,
    i: NodeId,
    j: NodeId,
    measure: CorrelationMeasure,
    lut: &Log2Table,
) -> f64 {
    let cells = MiCells::from_counts_with(&cols.pair_counts(i, j), lut);
    match measure {
        CorrelationMeasure::Imi => cells.imi(),
        CorrelationMeasure::Mi => cells.mi(),
    }
}

/// Estimates τ from a deterministic systematic sample of the pair
/// population: every `stride`-th pair of the canonical rank order, scored
/// with the per-pair oracle kernel and fed to the same
/// [`pinned_two_means`] as the dense path.
///
/// Positional sampling (not reservoir) keeps the sampled multiset a pure
/// function of `(n, budget)`: the 2-means sorts internally, so the same
/// multiset yields the same τ bits at every thread count, SIMD tier, and
/// shard. When the cap covers all pairs (`stride == 1`, any small n) the
/// sample IS the dense upper triangle and τ matches the dense path
/// bit-for-bit.
pub fn sample_tau(
    cols: &NodeColumns,
    measure: CorrelationMeasure,
    memory_budget: Option<u64>,
    threads: usize,
) -> TauSample {
    let n = cols.num_nodes() as u64;
    let total = n * n.saturating_sub(1) / 2;
    if total == 0 {
        return TauSample {
            kmeans: pinned_two_means(&[]),
            sampled_pairs: 0,
            stride: 1,
            total_pairs: 0,
        };
    }
    let cap = tau_sample_cap(total, memory_budget);
    let stride = total.div_ceil(cap);
    let count = total.div_ceil(stride);
    let lut = Log2Table::new(cols.num_processes() as u64);
    let values = parallel::run_indexed(
        count as usize,
        4096,
        threads,
        || (),
        |(), s| {
            let (i, j) = pair_at(s as u64 * stride, n);
            pair_value(cols, i, j, measure, &lut)
        },
    );
    TauSample {
        kmeans: pinned_two_means(&values),
        sampled_pairs: count,
        stride,
        total_pairs: total,
    }
}

/// Outcome of [`fold_candidates`].
#[derive(Clone, Debug)]
pub struct FoldOutcome {
    /// Per-node candidate parent lists, indexed by `node − shard.start`,
    /// in `candidate_parents` order.
    pub candidates: Vec<Vec<NodeId>>,
    /// Pairs above τ with at least one endpoint in the shard (equals the
    /// dense path's global count when the shard is `0..n`).
    pub pairs_above_tau: u64,
    /// Above-τ candidates evicted by the top-k bound.
    pub candidate_evictions: u64,
    /// Tile blocks scanned by this shard.
    pub tiles: u64,
    /// Pairs scanned across those blocks.
    pub scanned_pairs: u64,
    /// Chunk claims per pool worker (runtime diagnostics only).
    pub chunks_per_worker: Vec<u64>,
}

/// Streams the upper triangle tile-by-tile through the SIMD pair kernel
/// and folds every above-τ pair straight into bounded per-node candidate
/// lists for `shard` — the dense matrix never exists.
///
/// Uses exactly the tile schedule of
/// [`crate::CorrelationMatrix::compute_observed`] (same tile size, same
/// exact-pair-count claim weights), restricted to blocks whose row or
/// column range touches the shard; every pair is scored by the same
/// kernel in the same order, so for the full shard the surviving
/// candidate sets are bit-identical to thresholding the dense matrix.
/// Each pool worker folds into its own partial [`SparseCandidates`]
/// (memory: `threads · shard.len() · O(max_candidates)` entries), merged
/// after the scan — deterministic because bounded top-k is
/// grouping-independent.
pub fn fold_candidates(
    cols: &NodeColumns,
    measure: CorrelationMeasure,
    tau: f64,
    max_candidates: usize,
    shard: Shard,
    threads: usize,
) -> FoldOutcome {
    let n = cols.num_nodes();
    debug_assert!(shard.end as usize <= n && shard.start <= shard.end);
    let ones = cols.ones_counts();
    let tile = cols.pair_tile_size();
    let num_tiles = n.div_ceil(tile);
    let mut blocks: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    let mut costs: Vec<u64> = Vec::new();
    for bi in 0..num_tiles {
        let rows = bi * tile..((bi + 1) * tile).min(n);
        for bj in bi..num_tiles {
            let jcols = bj * tile..((bj + 1) * tile).min(n);
            let pairs: u64 = rows
                .clone()
                .map(|i| jcols.end.saturating_sub(jcols.start.max(i + 1)) as u64)
                .sum();
            // A pair (i, j) lands in the block whose rows contain i and
            // whose jcols contain j, so scanning every block that touches
            // the shard on either axis covers all the shard's pairs.
            if pairs > 0 && (shard.touches(&rows) || shard.touches(&jcols)) {
                blocks.push((rows.clone(), jcols));
                costs.push(pairs);
            }
        }
    }
    let scanned_pairs: u64 = costs.iter().sum();
    let lut = Log2Table::new(cols.num_processes() as u64);
    let (above_counts, pool) = parallel::run_weighted_stats(
        &costs,
        4,
        threads,
        || SparseCandidates::new(shard, max_candidates),
        |acc, b| {
            let (rows, jcols) = &blocks[b];
            let mut above = 0u64;
            cols.pair_counts_block(rows.clone(), jcols.clone(), &ones, &mut |i, j, pc| {
                let cells = MiCells::from_counts_with(&pc, &lut);
                let v = match measure {
                    CorrelationMeasure::Imi => cells.imi(),
                    CorrelationMeasure::Mi => cells.mi(),
                };
                if v > tau {
                    let in_i = shard.contains(i);
                    let in_j = shard.contains(j);
                    if in_i || in_j {
                        above += 1;
                    }
                    if in_i {
                        acc.insert(i, v, j);
                    }
                    if in_j {
                        acc.insert(j, v, i);
                    }
                }
            });
            above
        },
    );
    let mut states = pool.states.into_iter();
    let mut acc = states
        .next()
        .unwrap_or_else(|| SparseCandidates::new(shard, max_candidates));
    for partial in states {
        acc.merge(partial);
    }
    let (candidates, candidate_evictions) = acc.finish();
    FoldOutcome {
        candidates,
        pairs_above_tau: above_counts.iter().sum(),
        candidate_evictions,
        tiles: blocks.len() as u64,
        scanned_pairs,
        chunks_per_worker: pool.chunks_per_worker,
    }
}

/// Estimated peak heap bytes of a streamed reconstruction, for budget
/// validation at the CLI/daemon boundary (the library itself never
/// rejects a budget — it just sizes the τ sample with it).
///
/// Sum of the resident pieces: the column bitsets
/// (`n · ⌈β/64⌉ · 8`), the per-worker sparse accumulators
/// (`threads · shard_len · (2·max_candidates + 16) · 16` bytes of
/// `(f64, NodeId)` entries plus one counter per node), the τ sample
/// buffer (`cap · 8`, doubled for the 2-means sort copy), and per-worker
/// tile scratch. Deliberately a loose over-estimate — sized so staying
/// under it keeps actual peak RSS under the budget with room for the
/// allocator.
pub fn estimate_streamed_bytes(
    n: usize,
    beta: usize,
    shard_len: usize,
    threads: usize,
    max_candidates: usize,
    memory_budget: Option<u64>,
) -> u64 {
    let columns = (n as u64) * (beta.div_ceil(64).max(1) as u64) * 8;
    let workers = threads.max(1) as u64;
    let per_node = (2 * max_candidates + 16) as u64 * 16 + 8 + 24;
    let accumulators = workers * shard_len as u64 * per_node;
    let total_pairs = (n as u64) * (n as u64).saturating_sub(1) / 2;
    let sample = 2 * 8 * tau_sample_cap(total_pairs.max(1), memory_budget);
    let scratch = workers * 64 * 1024;
    columns + accumulators + sample + scratch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shards_covers_range_without_overlap() {
        for (n, count) in [(10usize, 3usize), (7, 1), (5, 8), (0, 2), (100, 7)] {
            let shards = plan_shards(n, count);
            let mut next = 0;
            for s in &shards {
                assert_eq!(s.start as usize, next);
                assert!(s.end >= s.start);
                next = s.end as usize;
            }
            assert_eq!(next, n, "shards must cover 0..{n}");
        }
    }

    #[test]
    fn pair_rank_inversion_is_exact() {
        for n in [2u64, 3, 5, 17, 100] {
            let total = n * (n - 1) / 2;
            let mut expect = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    expect.push((i as NodeId, j as NodeId));
                }
            }
            for r in 0..total {
                assert_eq!(pair_at(r, n), expect[r as usize], "rank {r} of n={n}");
            }
        }
    }

    #[test]
    fn tau_sample_cap_ignores_everything_but_pairs_and_budget() {
        assert_eq!(tau_sample_cap(100, None), 100);
        assert_eq!(tau_sample_cap(1 << 30, None), 1 << 21);
        assert_eq!(tau_sample_cap(1 << 30, Some(128 << 16)), 1 << 16);
        // Tiny budgets still sample at least the floor.
        assert_eq!(tau_sample_cap(1 << 30, Some(1)), 1 << 16);
    }

    #[test]
    fn sparse_candidates_match_sorted_truncation() {
        let shard = Shard { start: 2, end: 5 };
        let mut acc = SparseCandidates::new(shard, 2);
        // Node 3 sees four above-τ partners; only the top 2 survive.
        acc.insert(3, 0.5, 9);
        acc.insert(3, 0.9, 1);
        acc.insert(3, 0.7, 4);
        acc.insert(3, 0.9, 0); // tie with partner 1 → lower id wins order
        acc.insert(2, 0.1, 7);
        let (lists, evictions) = acc.finish();
        assert_eq!(lists[0], vec![7]); // node 2
        assert_eq!(lists[1], vec![0, 1]); // node 3: ties sorted by id
        assert_eq!(lists[2], Vec::<NodeId>::new()); // node 4 untouched
        assert_eq!(evictions, 2);
    }

    #[test]
    fn sparse_candidates_merge_is_grouping_independent() {
        let shard = Shard { start: 0, end: 1 };
        let pairs: Vec<(f64, NodeId)> = (1..40).map(|k| (1.0 / k as f64, k as NodeId)).collect();
        let build = |items: &[(f64, NodeId)]| {
            let mut acc = SparseCandidates::new(shard, 4);
            for &(v, p) in items {
                acc.insert(0, v, p);
            }
            acc
        };
        let whole = build(&pairs).finish();
        for split in [1usize, 7, 20, 38] {
            let mut left = build(&pairs[..split]);
            left.merge(build(&pairs[split..]));
            assert_eq!(left.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn zero_max_candidates_still_counts_evictions() {
        let mut acc = SparseCandidates::new(Shard { start: 0, end: 2 }, 0);
        acc.insert(0, 0.4, 1);
        acc.insert(1, 0.4, 0);
        let (lists, evictions) = acc.finish();
        assert!(lists.iter().all(Vec::is_empty));
        assert_eq!(evictions, 2);
    }

    #[test]
    fn estimate_includes_every_component() {
        let est = estimate_streamed_bytes(1000, 150, 1000, 4, 8, Some(1 << 30));
        assert!(est > 1000 * 3 * 8, "columns term missing: {est}");
        let sharded = estimate_streamed_bytes(1000, 150, 100, 4, 8, Some(1 << 30));
        assert!(sharded < est, "smaller shard must shrink the estimate");
    }
}
