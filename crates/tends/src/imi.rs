//! Infection mutual information (paper §IV-B, Eqs. 24–25).
//!
//! Plain mutual information cannot distinguish positively correlated
//! infections ("u infected ⇒ v likely infected", the signature of an
//! influence relationship) from negatively correlated ones. The paper
//! therefore scores each pair with the *infection MI*
//!
//! ```text
//! IMI(X_i, X_j) = mi(1,1) + mi(0,0) − |mi(1,0)| − |mi(0,1)|
//! ```
//!
//! where `mi(a,b) = P̂(X_i=a, X_j=b) · log₂ (P̂(a,b) / (P̂(a)·P̂(b)))` is one
//! cell of the MI sum. Concordant cells reward, discordant cells penalize.

use diffnet_simulate::{NodeColumns, PairCounts};

/// One cell of the mutual-information sum:
/// `p_ab · log₂(p_ab / (p_a · p_b))`, with `0 log 0 = 0`.
///
/// Can be negative (when the joint is rarer than independence predicts).
#[inline]
pub fn mi_cell(p_ab: f64, p_a: f64, p_b: f64) -> f64 {
    if p_ab <= 0.0 || p_a <= 0.0 || p_b <= 0.0 {
        0.0
    } else {
        p_ab * (p_ab / (p_a * p_b)).log2()
    }
}

/// The four MI cells of a pair, estimated from joint counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiCells {
    /// `mi(X_i = 1, X_j = 1)`.
    pub c11: f64,
    /// `mi(X_i = 1, X_j = 0)`.
    pub c10: f64,
    /// `mi(X_i = 0, X_j = 1)`.
    pub c01: f64,
    /// `mi(X_i = 0, X_j = 0)`.
    pub c00: f64,
}

impl MiCells {
    /// Estimates the cells from pair counts over `β` processes.
    ///
    /// All-zero counts (`β = 0`) give all-zero cells.
    pub fn from_counts(pc: &PairCounts) -> MiCells {
        let beta = pc.total();
        if beta == 0 {
            return MiCells {
                c11: 0.0,
                c10: 0.0,
                c01: 0.0,
                c00: 0.0,
            };
        }
        let b = beta as f64;
        let p11 = pc.n11 as f64 / b;
        let p10 = pc.n10 as f64 / b;
        let p01 = pc.n01 as f64 / b;
        let p00 = pc.n00 as f64 / b;
        let pi1 = p11 + p10;
        let pi0 = 1.0 - pi1;
        let pj1 = p11 + p01;
        let pj0 = 1.0 - pj1;
        MiCells {
            c11: mi_cell(p11, pi1, pj1),
            c10: mi_cell(p10, pi1, pj0),
            c01: mi_cell(p01, pi0, pj1),
            c00: mi_cell(p00, pi0, pj0),
        }
    }

    /// Traditional mutual information: the sum of all four cells (Eq. 24).
    /// Non-negative up to floating-point noise.
    pub fn mi(&self) -> f64 {
        self.c11 + self.c10 + self.c01 + self.c00
    }

    /// Infection MI (Eq. 25): concordant cells minus the magnitudes of
    /// discordant cells. Negative when infections are anti-correlated,
    /// near 0 when independent, positive when positively correlated.
    pub fn imi(&self) -> f64 {
        self.c11 + self.c00 - self.c10.abs() - self.c01.abs()
    }
}

/// Infection MI of a node pair directly from joint counts.
pub fn imi(pc: &PairCounts) -> f64 {
    MiCells::from_counts(pc).imi()
}

/// Traditional MI of a node pair directly from joint counts.
pub fn mi(pc: &PairCounts) -> f64 {
    MiCells::from_counts(pc).mi()
}

/// Which pairwise correlation measure drives candidate pruning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CorrelationMeasure {
    /// Infection MI (Eq. 25) — the paper's measure.
    #[default]
    Imi,
    /// Traditional MI (Eq. 24) — kept for the paper's Fig. 10–11 ablation.
    Mi,
}

/// Symmetric matrix of pairwise correlation values over all node pairs.
///
/// The diagonal is unused and fixed at 0.
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    n: usize,
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Computes all pairwise values from the column view of a status
    /// matrix with the chosen measure. `O(n²)` pair counts, each a few
    /// popcounts per 64 processes. Single-threaded; see
    /// [`compute_parallel`](Self::compute_parallel).
    pub fn compute(cols: &NodeColumns, measure: CorrelationMeasure) -> Self {
        Self::compute_parallel(cols, measure, 1)
    }

    /// Parallel variant of [`compute`](Self::compute): rows of the upper
    /// triangle are claimed by `threads` workers (0 = all cores) in small
    /// chunks, since row `i` costs `n − i − 1` cells and static splitting
    /// would leave late workers idle. Each cell is a pure function of its
    /// pair, so the result is bit-identical for every thread count.
    pub fn compute_parallel(
        cols: &NodeColumns,
        measure: CorrelationMeasure,
        threads: usize,
    ) -> Self {
        Self::compute_observed(
            cols,
            measure,
            threads,
            diffnet_observe::Recorder::disabled(),
        )
    }

    /// [`compute_parallel`](Self::compute_parallel) that also reports pool
    /// utilization: per-worker chunk claims land in the recorder under the
    /// `correlation_matrix` region. The matrix itself is bit-identical to
    /// the unobserved variant at every thread count.
    ///
    /// The pair loop is the cache-blocked
    /// [`NodeColumns::pair_counts_block`] kernel: the upper triangle is cut
    /// into T×T tiles (T = [`NodeColumns::pair_tile_size`], lane-aligned
    /// and chosen so a tile pair's columns stay L1-resident), `n11` is one
    /// SIMD AND+popcount stream per pair with the other three cells derived
    /// from the per-column ones counts — computed once up front and shared
    /// by every tile — and constant columns short-circuit the word walk
    /// entirely. Tiles are scheduled cost-aware — each tile's claim weight
    /// is its exact pair count — so the dense diagonal tiles don't
    /// serialize the pool. Per-tile results are *positional* (`Vec<f64>` in
    /// the kernel's deterministic row-major emission order, a third of the
    /// memory of `(i, j, value)` triples) and land in per-tile slots,
    /// keeping the matrix bit-identical at every thread count.
    pub fn compute_observed(
        cols: &NodeColumns,
        measure: CorrelationMeasure,
        threads: usize,
        rec: &diffnet_observe::Recorder,
    ) -> Self {
        let n = cols.num_nodes();
        let ones = cols.ones_counts();
        let tile = cols.pair_tile_size();
        let num_tiles = n.div_ceil(tile);
        let mut blocks: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
        let mut costs: Vec<u64> = Vec::new();
        for bi in 0..num_tiles {
            let rows = bi * tile..((bi + 1) * tile).min(n);
            for bj in bi..num_tiles {
                let jcols = bj * tile..((bj + 1) * tile).min(n);
                // Exact pair count of the block (diagonal blocks are
                // triangular) — the block's scheduling weight.
                let pairs: u64 = rows
                    .clone()
                    .map(|i| jcols.end.saturating_sub(jcols.start.max(i + 1)) as u64)
                    .sum();
                if pairs > 0 {
                    blocks.push((rows.clone(), jcols));
                    costs.push(pairs);
                }
            }
        }
        let (tiles, pool) = crate::parallel::run_weighted_stats(
            &costs,
            4,
            threads,
            || (),
            |_, b| {
                let (rows, jcols) = &blocks[b];
                let mut out: Vec<f64> = Vec::with_capacity(costs[b] as usize);
                cols.pair_counts_block(rows.clone(), jcols.clone(), &ones, &mut |_, _, pc| {
                    let cells = MiCells::from_counts(&pc);
                    out.push(match measure {
                        CorrelationMeasure::Imi => cells.imi(),
                        CorrelationMeasure::Mi => cells.mi(),
                    });
                });
                out
            },
        );
        if rec.is_enabled() {
            rec.worker_chunks("correlation_matrix", &pool.chunks_per_worker);
            rec.add("correlation_pairs", (n * n.saturating_sub(1) / 2) as u64);
            rec.add("correlation_tiles", blocks.len() as u64);
        }
        let mut values = vec![0.0; n * n];
        for (b, block) in tiles.into_iter().enumerate() {
            // Re-derive each value's pair by walking the block exactly the
            // way `pair_counts_block` emits: row-major over `i`, then
            // `j > i` within the column tile.
            let (rows, jcols) = &blocks[b];
            let mut vals = block.into_iter();
            for i in rows.clone() {
                for j in jcols.start.max(i + 1)..jcols.end {
                    let v = vals.next().expect("one value per block pair");
                    values[i * n + j] = v;
                    values[j * n + i] = v;
                }
            }
            debug_assert!(vals.next().is_none(), "block emitted extra pairs");
        }
        CorrelationMatrix { n, values }
    }

    /// The pre-tiling implementation: one [`NodeColumns::pair_counts`]
    /// column walk per pair, single-threaded. Kept as the equivalence
    /// oracle for the tiled kernel (results must stay bit-identical) and
    /// as the baseline the benchmarks compare against.
    pub fn compute_reference(cols: &NodeColumns, measure: CorrelationMeasure) -> Self {
        let n = cols.num_nodes();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let cells = MiCells::from_counts(&cols.pair_counts(i as u32, j as u32));
                let v = match measure {
                    CorrelationMeasure::Imi => cells.imi(),
                    CorrelationMeasure::Mi => cells.mi(),
                };
                values[i * n + j] = v;
                values[j * n + i] = v;
            }
        }
        CorrelationMatrix { n, values }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The value for pair `(i, j)`; 0 on the diagonal.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.values[i as usize * self.n + j as usize]
    }

    /// All strictly-upper-triangle values (each unordered pair once), the
    /// input to threshold selection.
    pub fn upper_triangle(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * (self.n.saturating_sub(1)) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                out.push(self.values[i * self.n + j]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::StatusMatrix;

    fn counts(n11: u64, n10: u64, n01: u64, n00: u64) -> PairCounts {
        PairCounts { n11, n10, n01, n00 }
    }

    #[test]
    fn independent_variables_have_zero_mi_and_imi() {
        // Perfectly factorized joint: p(a,b) = p(a)p(b).
        let pc = counts(25, 25, 25, 25);
        assert!(mi(&pc).abs() < 1e-12);
        assert!(imi(&pc).abs() < 1e-12);
    }

    #[test]
    fn perfectly_positively_correlated() {
        let pc = counts(50, 0, 0, 50);
        assert!((mi(&pc) - 1.0).abs() < 1e-12, "1 bit of MI");
        assert!((imi(&pc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_negatively_correlated() {
        let pc = counts(0, 50, 50, 0);
        // Traditional MI cannot tell the difference...
        assert!((mi(&pc) - 1.0).abs() < 1e-12);
        // ...but infection MI goes negative.
        assert!(imi(&pc) < -0.9);
    }

    #[test]
    fn positive_correlation_gives_positive_imi() {
        let pc = counts(40, 10, 10, 40);
        assert!(imi(&pc) > 0.1);
        assert!(mi(&pc) > 0.0);
    }

    #[test]
    fn imi_is_symmetric_in_roles() {
        let pc_ij = counts(30, 20, 10, 40);
        let pc_ji = counts(30, 10, 20, 40);
        assert!((imi(&pc_ij) - imi(&pc_ji)).abs() < 1e-12);
    }

    #[test]
    fn zero_beta_is_all_zero() {
        let pc = counts(0, 0, 0, 0);
        assert_eq!(mi(&pc), 0.0);
        assert_eq!(imi(&pc), 0.0);
    }

    #[test]
    fn constant_variable_yields_zero() {
        // X_j always infected: no information about anything.
        let pc = counts(30, 0, 70, 0);
        assert!(mi(&pc).abs() < 1e-12);
        assert!(imi(&pc).abs() < 1e-12);
    }

    #[test]
    fn mi_cell_zero_probability_convention() {
        assert_eq!(mi_cell(0.0, 0.5, 0.5), 0.0);
        assert_eq!(mi_cell(0.2, 0.0, 0.5), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = StatusMatrix::from_rows(&[
            vec![true, true, false],
            vec![true, false, false],
            vec![false, true, true],
            vec![true, true, true],
        ]);
        let cm = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        assert_eq!(cm.num_nodes(), 3);
        for i in 0..3u32 {
            assert_eq!(cm.get(i, i), 0.0);
            for j in 0..3u32 {
                assert_eq!(cm.get(i, j), cm.get(j, i));
            }
        }
        assert_eq!(cm.upper_triangle().len(), 3);
    }

    #[test]
    fn parallel_compute_is_bit_identical_across_thread_counts() {
        // 40 nodes, 96 processes of deterministic pseudo-random statuses.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let rows: Vec<Vec<bool>> = (0..96).map(|_| (0..40).map(|_| bit()).collect()).collect();
        let cols = StatusMatrix::from_rows(&rows).columns();
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let oracle = CorrelationMatrix::compute_reference(&cols, measure);
            for threads in [1usize, 4, 0] {
                let par = CorrelationMatrix::compute_parallel(&cols, measure, threads);
                for i in 0..40u32 {
                    for j in 0..40u32 {
                        assert_eq!(
                            oracle.get(i, j).to_bits(),
                            par.get(i, j).to_bits(),
                            "({i},{j}) differs from reference at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    /// A pseudo-random status matrix with planted constant columns: node 0
    /// never infected, node 1 always infected.
    fn matrix_with_degenerate_columns(beta: usize, n: usize) -> StatusMatrix {
        let mut state = 0xFEED_F00D_DEAD_BEEFu64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let rows: Vec<Vec<bool>> = (0..beta)
            .map(|_| {
                (0..n)
                    .map(|v| match v {
                        0 => false,
                        1 => true,
                        _ => bit(),
                    })
                    .collect()
            })
            .collect();
        StatusMatrix::from_rows(&rows)
    }

    #[test]
    fn multi_tile_matrix_matches_reference_bit_identically() {
        // β = 2051 (not a multiple of 64) gives pair_tile_size 48, so 100
        // nodes span multiple tiles and exercise diagonal + off-diagonal
        // blocks, tail words, and the degenerate-column short-circuit.
        let cols = matrix_with_degenerate_columns(2051, 100).columns();
        assert!(
            cols.pair_tile_size() < 100,
            "test must cover the multi-tile path (tile {})",
            cols.pair_tile_size()
        );
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let oracle = CorrelationMatrix::compute_reference(&cols, measure);
            for threads in [1usize, 3] {
                let tiled = CorrelationMatrix::compute_parallel(&cols, measure, threads);
                for i in 0..100u32 {
                    for j in 0..100u32 {
                        assert_eq!(
                            oracle.get(i, j).to_bits(),
                            tiled.get(i, j).to_bits(),
                            "({i},{j}) differs at {threads} threads, {measure:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_columns_carry_zero_information() {
        // Constant columns have P̂(X=a) = 0 for one status: every mi cell
        // involving them hits the 0·log0 = 0 convention, so both measures
        // are 0 against every other node (up to `1 − o/β` vs `(β−o)/β`
        // rounding noise) — through the short-circuit path, without
        // touching the column words.
        let cols = matrix_with_degenerate_columns(97, 8).columns();
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let m = CorrelationMatrix::compute(&cols, measure);
            for j in 0..8u32 {
                assert!(m.get(0, j).abs() < 1e-12, "never-infected node vs {j}");
                assert!(m.get(1, j).abs() < 1e-12, "always-infected node vs {j}");
            }
        }
        // The never/always pair in both orientations, straight from counts:
        // all four joints are degenerate.
        let pc = cols.pair_counts(0, 1);
        assert_eq!((pc.n11, pc.n10, pc.n00), (0, 0, 0));
        assert_eq!(pc.n01, 97);
        assert_eq!(imi(&pc), 0.0);
        assert_eq!(mi(&pc), 0.0);
    }

    #[test]
    fn matrix_measures_differ_on_anticorrelated_pairs() {
        // Nodes 0 and 1 perfectly anti-correlated.
        let rows: Vec<Vec<bool>> = (0..40).map(|l| vec![l % 2 == 0, l % 2 == 1]).collect();
        let m = StatusMatrix::from_rows(&rows);
        let imi_m = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let mi_m = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Mi);
        assert!(imi_m.get(0, 1) < -0.5, "IMI flags anti-correlation");
        assert!(mi_m.get(0, 1) > 0.5, "plain MI mistakes it for correlation");
    }
}
